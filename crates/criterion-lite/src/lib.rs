//! A minimal, self-contained micro-benchmark harness.
//!
//! The build environment for this workspace is fully offline, so the real
//! `criterion` crate cannot be fetched. This crate mirrors the slice of
//! its API the bench targets use — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`/`bench_with_input`, `Bencher::iter`,
//! `Throughput` and `BenchmarkId` — on top of a plain wall-clock sampler.
//!
//! Each benchmark is calibrated so one sample runs for at least
//! `CRITERION_SAMPLE_MS` milliseconds (default 20), then `sample_size`
//! samples are taken (default 12, env override `CRITERION_SAMPLES`) and
//! the per-iteration median, minimum and mean are reported. When
//! `CRITERION_JSON` names a file, one JSON line per benchmark is appended
//! to it, which is how the repo's before/after tables are produced (see
//! `scripts/bench-smoke.sh`).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation (recorded, reported as elements/s).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, timing batches of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes long enough to
        // time reliably.
        let target = sample_duration();
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= target || iters >= (1 << 30) {
                self.iters_per_sample = iters;
                self.samples
                    .push(elapsed.as_nanos() as f64 / iters as f64);
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                100
            } else {
                (target.as_nanos() / elapsed.as_nanos().max(1) + 1).min(100) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        for _ in 1..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn sample_duration() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20u64);
    Duration::from_millis(ms)
}

fn default_samples() -> usize {
    configured_samples(12)
}

fn configured_samples(requested: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(requested)
        .max(1)
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, |b| f(b));
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (`--bench` is ignored; a bare
    /// string argument filters benchmarks by substring).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .into_iter()
            .find(|a| !a.starts_with('-') && !a.is_empty());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: default_samples(),
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = default_samples();
        self.run_one(&id.name, None, samples, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: configured_samples(sample_size),
        };
        f(&mut b);
        if b.samples.is_empty() {
            return;
        }
        let mut sorted = b.samples.clone();
        sorted.sort_by(|a, c| a.total_cmp(c));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean: f64 = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(e)) if median > 0.0 => {
                format!("  ({:.1} Melem/s)", e as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(by)) if median > 0.0 => {
                format!("  ({:.1} MB/s)", by as f64 * 1e3 / median)
            }
            _ => String::new(),
        };
        println!(
            "bench {name:<48} median {median:>12.1} ns/iter  min {min:>12.1}  mean {mean:>12.1}{rate}"
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"{name}\", \"median_ns\": {median:.1}, \"min_ns\": {min:.1}, \"mean_ns\": {mean:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                    sorted.len(),
                    b.iters_per_sample,
                );
            }
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.run_one("selftest", Some(Throughput::Elements(1)), 3, |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.run_one("selftest", None, 2, |_b| ran = true);
        assert!(!ran);
    }
}
