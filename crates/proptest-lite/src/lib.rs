//! A minimal, self-contained property-testing harness.
//!
//! The build environment for this workspace is fully offline, so the real
//! `proptest` crate cannot be fetched. This crate exposes the narrow slice
//! of its API the test suites actually use — range and `any` strategies,
//! tuple and `vec` composition, `proptest!`, `prop_assert!` /
//! `prop_assert_eq!` and `ProptestConfig::with_cases` — backed by a
//! deterministic splitmix64/xoshiro generator. There is no shrinking: a
//! failing case reports its case index and seed so it can be replayed.
//!
//! Case count can be scaled globally with the `PROPTEST_CASES` environment
//! variable (useful to keep CI latency bounded).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic generator driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Bitmask rejection: unbiased and deterministic.
        let mask = u64::MAX >> (n - 1).leading_zeros().min(63);
        loop {
            let v = self.next_u64() & mask;
            if v < n {
                return v;
            }
        }
    }
}

/// A value generator. The subset of `proptest::strategy::Strategy` that the
/// workspace needs: generation only, no shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
arb_tuple!(A);
arb_tuple!(A, B);
arb_tuple!(A, B, C);
arb_tuple!(A, B, C, D);
arb_tuple!(A, B, C, D, E);

/// Strategy producing any value of `T`, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u64) - (self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!(A: 0, B: 1);
strategy_tuple!(A: 0, B: 1, C: 2);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Optional-value strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time, else `Some`
    /// of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runner configuration (`with_cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Effective case count: the configured count, overridable via the
/// `PROPTEST_CASES` environment variable.
pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(cfg.cases),
        Err(_) => cfg.cases,
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
/// Error type carried by `prop_assert!` failures: the failure message.
pub type TestCaseError = String;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items, each expanded to a `#[test]` running the body over
/// generated cases. A failure panics with the case index and seed.
#[macro_export]
macro_rules! proptest {
    (@cfg($cfg:expr)) => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        // Upstream proptest style: the `#[test]` attribute is written by
        // the caller and passes through with the other metas.
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let cases = $crate::effective_cases(&cfg);
            // Stable per-test seed: the test path hashes the same on every
            // run, so failures replay.
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let seed = base ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {case}/{cases} (seed {seed:#x}):\n{msg}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts inside `proptest!` bodies, reporting instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Equality assert inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assert inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
}

/// FNV-1a — stable test-name hashing for replayable seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..20).generate(&mut rng);
            assert!((3..20).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(any::<u32>(), 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (any::<u32>(), 0u64..9, 1u16..5);
        let a: Vec<_> = {
            let mut rng = TestRng::new(7);
            (0..50).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(7);
            (0..50).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, v in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
