//! The §3.2 cost models: links, cross points and VLSI area for each
//! architecture, normalised to *k-permutation* capability.
//!
//! The paper's counting conventions differ slightly between architectures
//! (directed vs. undirected links, exact vs. order-of-magnitude area); the
//! per-architecture documentation below records which convention each
//! formula uses, and [`crate::structural`] cross-checks the link counts
//! against constructed instances under those conventions.

use std::fmt;

/// The architectures §3.2 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Architecture {
    /// The ring-based reconfigurable multiple bus network with `k` buses.
    Rmb,
    /// The plain binary hypercube (full permutation capability not
    /// guaranteed; listed for reference as in §3.1).
    Hypercube,
    /// The Enhanced Hypercube: one duplicated link dimension, degree
    /// `log N + 1`, arbitrary-permutation capable.
    Ehc,
    /// The Generalized Folding Cube scaled down to k-permutation
    /// capability (§3.2's `2^d`-node, degree-`d` construction).
    GfcScaled,
    /// The minimum fat tree supporting a k-permutation (Fig. 11).
    FatTree,
    /// The 2-D mesh, expanded by `√k` per dimension for k-permutation
    /// wiring.
    Mesh,
}

impl Architecture {
    /// All architectures, in the paper's presentation order.
    pub const ALL: [Architecture; 6] = [
        Architecture::Rmb,
        Architecture::Hypercube,
        Architecture::Ehc,
        Architecture::GfcScaled,
        Architecture::FatTree,
        Architecture::Mesh,
    ];
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Architecture::Rmb => "RMB",
            Architecture::Hypercube => "hypercube",
            Architecture::Ehc => "EHC",
            Architecture::GfcScaled => "GFC(k-scaled)",
            Architecture::FatTree => "fat-tree",
            Architecture::Mesh => "mesh",
        };
        f.write_str(s)
    }
}

/// The three §3.2 metrics for one architecture at one `(N, k)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Number of links (wires between switching elements).
    pub links: f64,
    /// Number of cross points (wire intersections inside switches).
    pub crosspoints: f64,
    /// VLSI layout area, in units of one unit-length wire square.
    pub area: f64,
}

/// Evaluates the §3.2 cost model for `arch` at `n` nodes supporting a
/// `k`-permutation.
///
/// Formulas (and their conventions) follow the paper:
///
/// * **RMB** — links `N·k` (unidirectional segments, all unit length),
///   cross points `3·N·k` (each output port reaches 3 inputs), area
///   `O(N·k)` with constant 1.
/// * **Hypercube** — links `N·log N` (the paper's directed count), cross
///   points `N·(log N)²`, area `Θ(N²)`.
/// * **EHC** — degree `log N + 1`: links `N·(log N + 1)`, cross points
///   `N·(log N + 1)²`, area `Θ(N²)`.
/// * **GFC (k-scaled)** — the paper's bound `(N/k)·log(N/k)` links, with
///   EHC-like switch complexity on `N/k` nodes; area `Θ((N/k)²)`.
/// * **Fat tree** — links `N·log k + N − 2k`, cross points `6k²·(N/k − 1)
///   + 6k²·(N/k)` ("more than 6" per node; we take the constant 6 for
///   both internal and leaf nodes), area `12·N·k`.
/// * **Mesh** — links `2N`, cross points `16N` (4×4 crossbars), area
///   `N·k` after the `√k` expansion per dimension.
///
/// # Panics
///
/// Panics if `n < 2` or `k` is zero or `k > n`.
pub fn cost(arch: Architecture, n: u32, k: u16) -> Cost {
    assert!(n >= 2, "need at least two nodes");
    assert!(k >= 1, "need at least one bus / permutation lane");
    assert!(u32::from(k) <= n, "a k-permutation needs k <= N");
    let nf = f64::from(n);
    let kf = f64::from(k);
    let logn = nf.log2();
    match arch {
        Architecture::Rmb => Cost {
            links: nf * kf,
            crosspoints: 3.0 * nf * kf,
            area: nf * kf,
        },
        Architecture::Hypercube => Cost {
            links: nf * logn,
            crosspoints: nf * logn * logn,
            area: nf * nf,
        },
        Architecture::Ehc => Cost {
            links: nf * (logn + 1.0),
            crosspoints: nf * (logn + 1.0) * (logn + 1.0),
            area: nf * nf,
        },
        Architecture::GfcScaled => {
            let m = (nf / kf).max(2.0);
            let logm = m.log2();
            Cost {
                links: m * logm,
                crosspoints: m * (logm + 1.0) * (logm + 1.0),
                area: m * m,
            }
        }
        Architecture::FatTree => Cost {
            links: nf * kf.log2() + nf - 2.0 * kf,
            crosspoints: 6.0 * kf * kf * (nf / kf - 1.0) + 6.0 * kf * kf * (nf / kf),
            area: 12.0 * nf * kf,
        },
        Architecture::Mesh => Cost {
            links: 2.0 * nf,
            crosspoints: 16.0 * nf,
            area: nf * kf,
        },
    }
}

/// One row of the §3.2 comparison table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Node count.
    pub n: u32,
    /// Permutation capability.
    pub k: u16,
    /// Architecture.
    pub arch: Architecture,
    /// Evaluated cost.
    pub cost: Cost,
}

/// Evaluates every architecture over a grid of `(N, k)` points, in the
/// paper's presentation order.
pub fn comparison_grid(ns: &[u32], ks: &[u16]) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for &n in ns {
        for &k in ks {
            if u32::from(k) > n {
                continue;
            }
            for arch in Architecture::ALL {
                rows.push(ComparisonRow {
                    n,
                    k,
                    arch,
                    cost: cost(arch, n, k),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmb_formulas_match_paper() {
        let c = cost(Architecture::Rmb, 64, 8);
        assert_eq!(c.links, 512.0);
        assert_eq!(c.crosspoints, 1536.0);
        assert_eq!(c.area, 512.0);
    }

    #[test]
    fn ehc_formulas_match_paper() {
        // N = 64: degree log N + 1 = 7.
        let c = cost(Architecture::Ehc, 64, 8);
        assert_eq!(c.links, 64.0 * 7.0);
        assert_eq!(c.crosspoints, 64.0 * 49.0);
        assert_eq!(c.area, 4096.0);
    }

    #[test]
    fn fat_tree_formulas_match_paper() {
        // N = 64, k = 8: links = 64*3 + 64 - 16 = 240.
        let c = cost(Architecture::FatTree, 64, 8);
        assert_eq!(c.links, 240.0);
        // Cross points: 6*64*(8-1) + 6*64*8 = 2688 + 3072.
        assert_eq!(c.crosspoints, 6.0 * 64.0 * 7.0 + 6.0 * 64.0 * 8.0);
        assert_eq!(c.area, 12.0 * 64.0 * 8.0);
    }

    #[test]
    fn mesh_formulas_match_paper() {
        let c = cost(Architecture::Mesh, 64, 4);
        assert_eq!(c.links, 128.0);
        assert_eq!(c.crosspoints, 1024.0);
        assert_eq!(c.area, 256.0);
    }

    #[test]
    fn paper_conclusion_rmb_beats_hypercube_and_fat_tree_on_area() {
        // §3.2's qualitative conclusion, checked across a sweep: the RMB's
        // area is below the EHC's for large N and below the fat tree's
        // everywhere (constant 1 vs 12).
        for n in [64u32, 256, 1024, 4096] {
            for k in [4u16, 8, 16] {
                let rmb = cost(Architecture::Rmb, n, k);
                let ehc = cost(Architecture::Ehc, n, k);
                let ft = cost(Architecture::FatTree, n, k);
                assert!(rmb.area < ehc.area, "N={n} k={k}");
                assert!(rmb.area < ft.area, "N={n} k={k}");
                assert!(rmb.crosspoints < ft.crosspoints, "N={n} k={k}");
            }
        }
    }

    #[test]
    fn paper_conclusion_rmb_has_more_links_than_fat_tree() {
        // §3.2: "The RMB has more links than a hypercube or a fat tree to
        // support k-permutation" — for k >= log N territory.
        for n in [256u32, 1024] {
            let k = 16;
            let rmb = cost(Architecture::Rmb, n, k);
            let ft = cost(Architecture::FatTree, n, k);
            assert!(rmb.links > ft.links, "N={n}");
        }
    }

    #[test]
    fn mesh_and_rmb_area_comparable() {
        // §3.2: mesh expanded for k wires has area O(Nk), same as RMB.
        let rmb = cost(Architecture::Rmb, 256, 8);
        let mesh = cost(Architecture::Mesh, 256, 8);
        assert_eq!(rmb.area, mesh.area);
    }

    #[test]
    fn grid_covers_all_architectures() {
        let rows = comparison_grid(&[16, 64], &[2, 4]);
        assert_eq!(rows.len(), 2 * 2 * Architecture::ALL.len());
        // Grid skips infeasible k > N combinations.
        let rows = comparison_grid(&[2], &[4]);
        assert!(rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "k <= N")]
    fn cost_rejects_k_above_n() {
        let _ = cost(Architecture::Rmb, 4, 8);
    }
}
