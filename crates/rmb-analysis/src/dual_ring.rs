//! The two-ring organisation the paper sketches in §2.1: "for efficiency
//! reasons, one may like to organize the communication as two parallel
//! uni-directional rings".
//!
//! Each message is routed on whichever ring gives it the shorter path
//! (clockwise on the primary ring, or clockwise on the *reversed* ring,
//! which is counter-clockwise in primary coordinates). The two rings run
//! independently, each with `k` buses; total wiring is `2·N·k` segments.

use rmb_baselines::{Network, RoutingOutcome};
use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// Two opposite unidirectional RMB rings behind the common [`Network`]
/// interface.
///
/// # Examples
///
/// ```
/// use rmb_analysis::DualRmbRing;
/// use rmb_baselines::Network;
/// use rmb_types::{MessageSpec, NodeId, RmbConfig};
///
/// let mut dual = DualRmbRing::new(RmbConfig::new(16, 2)?);
/// // 0 -> 15 is 15 hops clockwise but 1 hop on the reverse ring.
/// let out = dual.route_messages(
///     &[MessageSpec::new(NodeId::new(0), NodeId::new(15), 4)],
///     10_000,
/// );
/// assert_eq!(out.delivered.len(), 1);
/// assert!(out.delivered[0].latency() < 20);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DualRmbRing {
    cfg: RmbConfig,
}

impl DualRmbRing {
    /// Creates the dual-ring adapter; each ring uses the full `cfg`.
    pub fn new(cfg: RmbConfig) -> Self {
        DualRmbRing { cfg }
    }

    /// Mirrors a node id into reverse-ring coordinates.
    fn mirror(&self, node: NodeId) -> NodeId {
        let n = self.cfg.nodes().get();
        NodeId::new((n - node.index()) % n)
    }

    /// Predicted unloaded delivery latency for `spec`: the shorter
    /// direction's span fed through the per-leg circuit model shared
    /// with the hierarchical composition ([`rmb_hier::model`]), so the
    /// two-ring estimate and the multi-ring simulator can never drift
    /// apart.
    pub fn estimated_latency(&self, spec: &MessageSpec) -> u64 {
        let ring = self.cfg.nodes();
        let cw = ring.clockwise_distance(spec.source, spec.destination);
        let span = cw.min(ring.get() - cw);
        rmb_hier::model::leg_delivery_ticks(u64::from(span), spec.data_flits)
    }
}

impl Network for DualRmbRing {
    fn label(&self) -> String {
        format!(
            "dual-rmb(N={}, k={}x2)",
            self.cfg.nodes().get(),
            self.cfg.buses()
        )
    }

    fn node_count(&self) -> u32 {
        self.cfg.nodes().get()
    }

    fn link_count(&self) -> u64 {
        2 * u64::from(self.cfg.nodes().get()) * u64::from(self.cfg.buses())
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let ring = self.cfg.nodes();
        let mut forward = RmbNetwork::new(self.cfg);
        let mut backward = RmbNetwork::new(self.cfg);
        let mut backward_specs = Vec::new();
        for m in messages {
            let cw = ring.clockwise_distance(m.source, m.destination);
            let ccw = ring.get() - cw;
            // Strictly shorter direction wins; ties (the diameter) are
            // split by source parity so the two rings share the load.
            let go_forward = cw < ccw || (cw == ccw && m.source.is_even());
            if go_forward {
                forward.submit(*m).expect("valid message");
            } else {
                // Reverse-ring coordinates: node i maps to (N - i) mod N so
                // that counter-clockwise hops become clockwise ones.
                let spec = MessageSpec::new(
                    self.mirror(m.source),
                    self.mirror(m.destination),
                    m.data_flits,
                )
                .at(m.inject_at);
                backward_specs.push((*m, spec));
                backward.submit(spec).expect("valid message");
            }
        }
        let fr = forward.run_to_quiescence(max_ticks);
        let br = backward.run_to_quiescence(max_ticks);
        let mut delivered = forward.delivered_log().to_vec();
        // Report backward deliveries in primary coordinates.
        for &d in backward.delivered_log() {
            let original = backward_specs
                .iter()
                .find(|(_, s)| s.source == d.spec.source && s.destination == d.spec.destination)
                .map(|(orig, _)| *orig)
                .unwrap_or(d.spec);
            delivered.push(rmb_types::DeliveredMessage {
                spec: original,
                ..d
            });
        }
        delivered.sort_by_key(|d| d.delivered_at);
        RoutingOutcome {
            delivered,
            ticks: fr.ticks.max(br.ticks),
            stalled: fr.stalled || br.stalled,
            peak_busy_channels: fr.peak_virtual_buses + br.peak_virtual_buses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_take_the_shorter_ring() {
        let mut dual = DualRmbRing::new(RmbConfig::new(16, 2).unwrap());
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(3), 4), // 3 cw
            MessageSpec::new(NodeId::new(0), NodeId::new(13), 4), // 3 ccw
        ];
        let out = dual.route_messages(&msgs, 10_000);
        assert_eq!(out.delivered.len(), 2);
        // Both spans are 3 hops, so both latencies are small and similar.
        let lats: Vec<u64> = out.delivered.iter().map(|d| d.latency()).collect();
        assert!(lats.iter().all(|&l| l < 30), "{lats:?}");
    }

    #[test]
    fn dual_ring_beats_single_ring_on_reversal_permutation() {
        let n = 16u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .filter(|&s| n - 1 - s != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(n - 1 - s), 8))
            .collect();
        let cfg = RmbConfig::builder(n, 4).head_timeout(128).build().unwrap();
        let mut single = crate::RmbRing::new(cfg);
        let mut dual = DualRmbRing::new(cfg);
        let s = single.route_messages(&msgs, 1_000_000);
        let d = dual.route_messages(&msgs, 1_000_000);
        assert_eq!(s.delivered.len(), msgs.len(), "single stalled={}", s.stalled);
        assert_eq!(d.delivered.len(), msgs.len(), "dual stalled={}", d.stalled);
        assert!(
            d.makespan() < s.makespan(),
            "dual {} vs single {}",
            d.makespan(),
            s.makespan()
        );
    }

    #[test]
    fn tied_distances_split_across_rings() {
        // The "opposite" permutation: every path is exactly N/2 both ways.
        let n = 16u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 2) % n), 8))
            .collect();
        let cfg = RmbConfig::builder(n, 4).head_timeout(128).build().unwrap();
        let mut single = crate::RmbRing::new(cfg);
        let mut dual = DualRmbRing::new(cfg);
        let s = single.route_messages(&msgs, 1_000_000);
        let d = dual.route_messages(&msgs, 1_000_000);
        assert_eq!(d.delivered.len(), msgs.len(), "dual stalled={}", d.stalled);
        // Splitting the diameter traffic across both rings must beat the
        // single ring carrying all of it.
        assert!(
            s.stalled || d.makespan() < s.makespan(),
            "dual {} vs single {}",
            d.makespan(),
            s.makespan()
        );
    }

    #[test]
    fn estimate_matches_unloaded_simulation_on_both_rings() {
        // One message at a time, so the rings are unloaded: the shared
        // per-leg model must predict the simulated latency exactly,
        // whichever direction the adapter picks.
        let mut dual = DualRmbRing::new(RmbConfig::new(16, 2).unwrap());
        for (src, dst, flits) in [(0, 3, 4), (0, 13, 4), (2, 10, 8), (7, 6, 1)] {
            let spec = MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits);
            let out = dual.route_messages(&[spec], 10_000);
            assert_eq!(out.delivered.len(), 1);
            assert_eq!(
                out.delivered[0].latency(),
                dual.estimated_latency(&spec),
                "{src} -> {dst} ({flits} flits)"
            );
        }
    }

    #[test]
    fn estimate_tracks_a_simulated_two_ring_hierarchy() {
        // Cross-check against the other two-ring organisation: a 2-ring
        // hierarchy routed through bridges. Intra-ring legs there use
        // the same shared model, so an unloaded intra-ring message must
        // land exactly on `leg_delivery_ticks`.
        use rmb_hier::HierNetwork;
        use rmb_types::{HierConfig, HierMessageSpec, NodeAddr};

        let cfg = HierConfig::builder(2, 16, 2).build().unwrap();
        let spec = HierMessageSpec::new(
            NodeAddr::new(0, NodeId::new(2)),
            NodeAddr::new(0, NodeId::new(7)),
            6,
        );
        let mut net = HierNetwork::new(cfg);
        net.submit(spec).unwrap();
        assert_eq!(net.run_to_quiescence(10_000).delivered, 1);
        let d = &net.delivered_log()[0];
        let simulated = d.delivered_at - d.spec.inject_at;
        assert_eq!(simulated, rmb_hier::model::leg_delivery_ticks(5, 6));
        // And the dual-ring estimator agrees for the same span.
        let dual = DualRmbRing::new(RmbConfig::new(16, 2).unwrap());
        let flat = MessageSpec::new(NodeId::new(2), NodeId::new(7), 6);
        assert_eq!(dual.estimated_latency(&flat), simulated);
    }

    #[test]
    fn mirror_roundtrips() {
        let dual = DualRmbRing::new(RmbConfig::new(8, 1).unwrap());
        for i in 0..8 {
            let m = dual.mirror(NodeId::new(i));
            assert_eq!(dual.mirror(m), NodeId::new(i));
        }
        assert_eq!(dual.mirror(NodeId::new(0)), NodeId::new(0));
        assert_eq!(dual.mirror(NodeId::new(3)), NodeId::new(5));
    }
}
