//! A 2-D grid of RMB rings — the paper's §4 future-work item "the design
//! of reconfigurable multiple bus systems for 2- and 3-D grid connected
//! computers", built from the ring RMB as the module the paper proposes
//! (§1: "the ring-based medium-sized system is used as a module").
//!
//! Every row of the `R × C` grid is one RMB ring over its `C` nodes, and
//! every column is another over its `R` nodes. A message routes
//! dimension-ordered, XY-style: a row leg to the destination column, a
//! store-and-forward hand-off at the corner node, then a column leg. Each
//! ring runs the full RMB protocol (insertion at the top bus, compaction,
//! Nack/retry) independently — exactly the modular composition the paper
//! sketches.

use rmb_baselines::{Network, RoutingOutcome};
use rmb_core::RmbNetwork;
use rmb_types::{DeliveredMessage, MessageSpec, NodeId, RequestId, RmbConfig};
use std::collections::HashMap;

/// An `rows × cols` grid of RMB rings behind the common [`Network`]
/// interface. Flat node `i` sits at `(row, col) = (i / cols, i % cols)`.
///
/// # Examples
///
/// ```
/// use rmb_analysis::RmbGrid;
/// use rmb_baselines::Network;
/// use rmb_types::{MessageSpec, NodeId, RmbConfig};
///
/// let mut grid = RmbGrid::new(4, 4, RmbConfig::new(4, 2)?);
/// let out = grid.route_messages(
///     &[MessageSpec::new(NodeId::new(0), NodeId::new(15), 8)],
///     100_000,
/// );
/// assert_eq!(out.delivered.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RmbGrid {
    rows: u32,
    cols: u32,
    row_cfg: RmbConfig,
    col_cfg: RmbConfig,
}

impl RmbGrid {
    /// Builds a grid whose row rings have `cols` nodes and column rings
    /// `rows` nodes, each with `ring_cfg`'s bus count and protocol knobs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (a 1-D grid is just a ring).
    pub fn new(rows: u32, cols: u32, ring_cfg: RmbConfig) -> Self {
        assert!(rows >= 2 && cols >= 2, "grid needs at least 2x2 nodes");
        let rebuild = |n: u32| {
            let mut b = RmbConfig::builder(n, ring_cfg.buses())
                .compaction(ring_cfg.compaction)
                .early_compaction(ring_cfg.early_compaction)
                .insertion(ring_cfg.insertion)
                .ack_mode(ring_cfg.ack_mode)
                .retry_backoff(ring_cfg.node.retry_backoff)
                .max_concurrent_sends(ring_cfg.node.max_concurrent_sends.max(2))
                .max_concurrent_receives(ring_cfg.node.max_concurrent_receives.max(2));
            if let Some(t) = ring_cfg.head_timeout {
                b = b.head_timeout(t);
            }
            b.build().expect("derived ring config is valid")
        };
        // Corner nodes forward row traffic into column rings while still
        // originating their own, so each node needs at least two send and
        // receive slots.
        RmbGrid {
            rows,
            cols,
            row_cfg: rebuild(cols),
            col_cfg: rebuild(rows),
        }
    }

    /// Grid height.
    pub const fn rows(&self) -> u32 {
        self.rows
    }

    /// Grid width.
    pub const fn cols(&self) -> u32 {
        self.cols
    }

    fn coords(&self, flat: NodeId) -> (u32, u32) {
        (flat.index() / self.cols, flat.index() % self.cols)
    }
}

impl Network for RmbGrid {
    fn label(&self) -> String {
        format!(
            "rmb-grid({}x{}, k={})",
            self.rows,
            self.cols,
            self.row_cfg.buses()
        )
    }

    fn node_count(&self) -> u32 {
        self.rows * self.cols
    }

    fn link_count(&self) -> u64 {
        // Row rings: rows * cols * k segments; column rings likewise.
        2 * u64::from(self.rows) * u64::from(self.cols) * u64::from(self.row_cfg.buses())
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let mut row_rings: Vec<RmbNetwork> =
            (0..self.rows).map(|_| RmbNetwork::new(self.row_cfg)).collect();
        let mut col_rings: Vec<RmbNetwork> =
            (0..self.cols).map(|_| RmbNetwork::new(self.col_cfg)).collect();

        // Per-message plan and progress.
        #[derive(Debug)]
        struct Plan {
            spec: MessageSpec,
            row_leg: Option<(usize, RequestId)>,
            col_leg: Option<(usize, RequestId)>,
            done: Option<DeliveredMessage>,
        }
        let mut plans: Vec<Plan> = Vec::with_capacity(messages.len());
        // Look-up from (ring kind, ring index, request) to plan index.
        let mut row_lookup: HashMap<(usize, u64), usize> = HashMap::new();
        let mut col_lookup: HashMap<(usize, u64), usize> = HashMap::new();

        for (i, m) in messages.iter().enumerate() {
            let (r1, c1) = self.coords(m.source);
            let (r2, c2) = self.coords(m.destination);
            let mut plan = Plan {
                spec: *m,
                row_leg: None,
                col_leg: None,
                done: None,
            };
            if c1 != c2 {
                let req = row_rings[r1 as usize]
                    .submit(MessageSpec::new(NodeId::new(c1), NodeId::new(c2), m.data_flits).at(m.inject_at))
                    .expect("valid row leg");
                row_lookup.insert((r1 as usize, req.get()), i);
                plan.row_leg = Some((r1 as usize, req));
            } else {
                // Same column: submit the column leg immediately.
                let req = col_rings[c1 as usize]
                    .submit(MessageSpec::new(NodeId::new(r1), NodeId::new(r2), m.data_flits).at(m.inject_at))
                    .expect("valid column leg");
                col_lookup.insert((c1 as usize, req.get()), i);
                plan.col_leg = Some((c1 as usize, req));
            }
            plans.push(plan);
        }

        let mut row_consumed = vec![0usize; self.rows as usize];
        let mut col_consumed = vec![0usize; self.cols as usize];
        let mut completed = 0usize;
        let mut now = 0u64;
        let mut last_progress = 0u64;
        let stall_window = 8 * u64::from(self.rows + self.cols)
            + 3 * self.row_cfg.head_timeout.unwrap_or(0)
            + 16 * self.row_cfg.node.retry_backoff
            + messages.iter().map(|m| u64::from(m.data_flits)).max().unwrap_or(0)
            + 128;

        while completed < plans.len() && now < max_ticks {
            for ring in row_rings.iter_mut().chain(col_rings.iter_mut()) {
                ring.tick();
            }
            now += 1;

            // Row-leg completions spawn column legs at the corner.
            for (r, ring) in row_rings.iter().enumerate() {
                let log = ring.delivered_log();
                while row_consumed[r] < log.len() {
                    let d = log[row_consumed[r]];
                    row_consumed[r] += 1;
                    let Some(&i) = row_lookup.get(&(r, d.request.get())) else {
                        continue;
                    };
                    let (_, c2) = self.coords(plans[i].spec.destination);
                    let (r2, _) = self.coords(plans[i].spec.destination);
                    let r1 = r as u32;
                    if r1 == r2 {
                        // Same row: the message is done.
                        plans[i].done = Some(DeliveredMessage {
                            request: RequestId::new(i as u64),
                            spec: plans[i].spec,
                            requested_at: plans[i].spec.inject_at,
                            circuit_at: d.circuit_at,
                            delivered_at: d.delivered_at,
                            refusals: d.refusals,
                        });
                        completed += 1;
                    } else {
                        // Hand off into the column ring next tick.
                        plans[i].col_leg = Some((c2 as usize, RequestId::new(0)));
                        let req = col_rings[c2 as usize]
                            .submit(
                                MessageSpec::new(
                                    NodeId::new(r1),
                                    NodeId::new(r2),
                                    plans[i].spec.data_flits,
                                )
                                .at(d.delivered_at + 1),
                            )
                            .expect("valid column leg");
                        col_lookup.insert((c2 as usize, req.get()), i);
                        plans[i].col_leg = Some((c2 as usize, req));
                    }
                    last_progress = now;
                }
            }
            // Column-leg completions finish messages.
            for (c, ring) in col_rings.iter().enumerate() {
                let log = ring.delivered_log();
                while col_consumed[c] < log.len() {
                    let d = log[col_consumed[c]];
                    col_consumed[c] += 1;
                    let Some(&i) = col_lookup.get(&(c, d.request.get())) else {
                        continue;
                    };
                    plans[i].done = Some(DeliveredMessage {
                        request: RequestId::new(i as u64),
                        spec: plans[i].spec,
                        requested_at: plans[i].spec.inject_at,
                        circuit_at: d.circuit_at,
                        delivered_at: d.delivered_at,
                        refusals: d.refusals,
                    });
                    completed += 1;
                    last_progress = now;
                }
            }

            let idle = row_rings.iter().chain(col_rings.iter()).all(|r| !r.has_due_work());
            if idle {
                last_progress = now;
            }
            if now - last_progress > stall_window {
                break;
            }
        }

        let mut delivered: Vec<DeliveredMessage> =
            plans.into_iter().filter_map(|p| p.done).collect();
        delivered.sort_by_key(|d| d.delivered_at);
        let stalled = delivered.len() != messages.len();
        RoutingOutcome {
            delivered,
            ticks: now,
            stalled,
            peak_busy_channels: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: u16) -> RmbConfig {
        RmbConfig::builder(4, k)
            .head_timeout(256)
            .retry_backoff(16)
            .build()
            .unwrap()
    }

    #[test]
    fn single_message_routes_row_then_column() {
        let mut grid = RmbGrid::new(4, 4, cfg(2));
        // (0,0) -> (3,3): row leg 0->3 then column leg 0->3.
        let out = grid.route_messages(
            &[MessageSpec::new(NodeId::new(0), NodeId::new(15), 8)],
            100_000,
        );
        assert_eq!(out.delivered.len(), 1, "stalled={}", out.stalled);
        // Two ring legs: strictly slower than one leg, but bounded.
        let lat = out.delivered[0].latency();
        assert!(lat > 20 && lat < 200, "latency {lat}");
    }

    #[test]
    fn same_row_and_same_column_messages_take_one_leg() {
        let mut grid = RmbGrid::new(4, 4, cfg(2));
        let out = grid.route_messages(
            &[
                MessageSpec::new(NodeId::new(0), NodeId::new(3), 4), // same row
                MessageSpec::new(NodeId::new(1), NodeId::new(13), 4), // same column
            ],
            100_000,
        );
        assert_eq!(out.delivered.len(), 2, "stalled={}", out.stalled);
    }

    #[test]
    fn grid_routes_a_full_permutation() {
        let mut grid = RmbGrid::new(4, 4, cfg(2));
        let n = 16u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .filter(|&s| n - 1 - s != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(n - 1 - s), 8))
            .collect();
        let out = grid.route_messages(&msgs, 1_000_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
    }

    #[test]
    fn grid_beats_single_ring_at_equal_wiring() {
        // 36 nodes of far traffic at equal hardware: one ring with k = 8
        // (36*8 = 288 segments) against a 6x6 grid of k = 4 rings
        // (2*36*4 = 288 segments). Staggered injection keeps both below
        // outright saturation; the grid's sqrt-diameter rings win.
        let n = 36u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .map(|s| {
                MessageSpec::new(NodeId::new(s), NodeId::new((s + 17) % n), 8)
                    .at(u64::from(s) * 24)
            })
            .collect();
        let ring_cfg = RmbConfig::builder(n, 8)
            .head_timeout(16 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .unwrap();
        let mut ring = crate::RmbRing::new(ring_cfg);
        let grid_cfg = RmbConfig::builder(6, 4)
            .head_timeout(256)
            .retry_backoff(16)
            .build()
            .unwrap();
        let mut grid = RmbGrid::new(6, 6, grid_cfg);
        let r = ring.route_messages(&msgs, 4_000_000);
        let g = grid.route_messages(&msgs, 4_000_000);
        assert_eq!(r.delivered.len(), msgs.len(), "ring stalled={}", r.stalled);
        assert_eq!(g.delivered.len(), msgs.len(), "grid stalled={}", g.stalled);
        assert!(
            g.makespan() < r.makespan(),
            "grid {} vs ring {}",
            g.makespan(),
            r.makespan()
        );
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn rejects_degenerate_grids() {
        let _ = RmbGrid::new(1, 8, cfg(2));
    }
}
