//! An N-dimensional lattice of RMB rings — the general form of the §4
//! future-work item ("reconfigurable multiple bus systems for 2- and 3-D
//! grid connected computers"). [`crate::RmbGrid`] is the hand-rolled 2-D
//! special case; this module composes any dimensionality.
//!
//! For each dimension `d` and each *line* of the lattice along `d` (all
//! other coordinates fixed), one RMB ring connects the `dims[d]` nodes of
//! that line. A message routes dimension-ordered: one ring leg per
//! dimension where source and destination coordinates differ, with
//! store-and-forward hand-off at each corner.

use rmb_baselines::{Network, RoutingOutcome};
use rmb_core::RmbNetwork;
use rmb_types::{DeliveredMessage, MessageSpec, NodeId, RequestId, RmbConfig};
use std::collections::HashMap;

/// A lattice of RMB rings over `dims[0] × dims[1] × …` nodes.
///
/// Flat node ids use mixed-radix order: coordinate 0 varies fastest.
///
/// # Examples
///
/// ```
/// use rmb_analysis::RmbLattice;
/// use rmb_baselines::Network;
/// use rmb_types::{MessageSpec, NodeId, RmbConfig};
///
/// // A 3-D 4x4x4 lattice: 64 nodes, three ring legs at most.
/// let mut lat = RmbLattice::new(vec![4, 4, 4], RmbConfig::new(4, 2)?);
/// let out = lat.route_messages(
///     &[MessageSpec::new(NodeId::new(0), NodeId::new(63), 8)],
///     200_000,
/// );
/// assert_eq!(out.delivered.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RmbLattice {
    dims: Vec<u32>,
    cfgs: Vec<RmbConfig>,
}

impl RmbLattice {
    /// Builds a lattice; each dimension-`d` ring gets `ring_cfg`'s knobs
    /// sized to `dims[d]` nodes. Send/receive slots are widened to 2 so
    /// corner nodes can forward while originating.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given or any dimension is
    /// below 2.
    pub fn new(dims: Vec<u32>, ring_cfg: RmbConfig) -> Self {
        assert!(dims.len() >= 2, "a lattice needs at least two dimensions");
        assert!(dims.iter().all(|&d| d >= 2), "each dimension needs >= 2 nodes");
        let cfgs = dims
            .iter()
            .map(|&d| {
                let mut b = RmbConfig::builder(d, ring_cfg.buses())
                    .compaction(ring_cfg.compaction)
                    .early_compaction(ring_cfg.early_compaction)
                    .insertion(ring_cfg.insertion)
                    .ack_mode(ring_cfg.ack_mode)
                    .retry_backoff(ring_cfg.node.retry_backoff)
                    .max_concurrent_sends(ring_cfg.node.max_concurrent_sends.max(2))
                    .max_concurrent_receives(ring_cfg.node.max_concurrent_receives.max(2));
                if let Some(t) = ring_cfg.head_timeout {
                    b = b.head_timeout(t);
                }
                b.build().expect("derived ring config is valid")
            })
            .collect();
        RmbLattice { dims, cfgs }
    }

    /// The lattice shape.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    fn coords(&self, flat: u32) -> Vec<u32> {
        let mut rest = flat;
        self.dims
            .iter()
            .map(|&d| {
                let c = rest % d;
                rest /= d;
                c
            })
            .collect()
    }

    /// Lines along dimension `d` are indexed by the flat id with
    /// coordinate `d` removed.
    fn line_index(&self, coords: &[u32], d: usize) -> usize {
        let mut idx = 0usize;
        let mut mul = 1usize;
        for (i, (&c, &dim)) in coords.iter().zip(&self.dims).enumerate() {
            if i == d {
                continue;
            }
            idx += c as usize * mul;
            mul *= dim as usize;
        }
        idx
    }

    fn lines_in_dim(&self, d: usize) -> usize {
        self.dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != d)
            .map(|(_, &dim)| dim as usize)
            .product()
    }
}

impl Network for RmbLattice {
    fn label(&self) -> String {
        let shape: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!("rmb-lattice({}, k={})", shape.join("x"), self.cfgs[0].buses())
    }

    fn node_count(&self) -> u32 {
        self.dims.iter().product()
    }

    fn link_count(&self) -> u64 {
        // One ring per line per dimension, each with dims[d] * k segments.
        (0..self.dims.len())
            .map(|d| {
                self.lines_in_dim(d) as u64
                    * u64::from(self.dims[d])
                    * u64::from(self.cfgs[d].buses())
            })
            .sum()
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let ndims = self.dims.len();
        // rings[d][line] — one RMB per line of each dimension.
        let mut rings: Vec<Vec<RmbNetwork>> = (0..ndims)
            .map(|d| {
                (0..self.lines_in_dim(d))
                    .map(|_| RmbNetwork::new(self.cfgs[d]))
                    .collect()
            })
            .collect();

        struct Plan {
            spec: MessageSpec,
            /// Current coordinates along the route.
            at: Vec<u32>,
            /// Next dimension to resolve.
            next_dim: usize,
            done: Option<DeliveredMessage>,
        }
        let mut plans: Vec<Plan> = messages
            .iter()
            .map(|m| Plan {
                spec: *m,
                at: self.coords(m.source.index()),
                next_dim: 0,
                done: None,
            })
            .collect();
        let mut lookup: HashMap<(usize, usize, u64), usize> = HashMap::new();
        let mut consumed: Vec<Vec<usize>> = (0..ndims)
            .map(|d| vec![0usize; self.lines_in_dim(d)])
            .collect();

        // Starts the next needed leg for plan `i`; returns true when the
        // message is already at its destination.
        fn start_leg(
            lat: &RmbLattice,
            rings: &mut [Vec<RmbNetwork>],
            lookup: &mut HashMap<(usize, usize, u64), usize>,
            plans: &mut [Plan],
            i: usize,
            at_tick: u64,
        ) -> bool {
            let dst = lat.coords(plans[i].spec.destination.index());
            while plans[i].next_dim < lat.dims.len() {
                let d = plans[i].next_dim;
                if plans[i].at[d] == dst[d] {
                    plans[i].next_dim += 1;
                    continue;
                }
                let line = lat.line_index(&plans[i].at, d);
                let req = rings[d][line]
                    .submit(
                        MessageSpec::new(
                            NodeId::new(plans[i].at[d]),
                            NodeId::new(dst[d]),
                            plans[i].spec.data_flits,
                        )
                        .at(at_tick),
                    )
                    .expect("valid leg");
                lookup.insert((d, line, req.get()), i);
                return false;
            }
            true
        }

        let mut completed = 0usize;
        for i in 0..plans.len() {
            let inject_at = plans[i].spec.inject_at;
            if start_leg(self, &mut rings, &mut lookup, &mut plans, i, inject_at) {
                // Degenerate: source == destination is filtered upstream,
                // but a zero-leg plan completes immediately.
                plans[i].done = Some(DeliveredMessage {
                    request: RequestId::new(i as u64),
                    spec: plans[i].spec,
                    requested_at: plans[i].spec.inject_at,
                    circuit_at: plans[i].spec.inject_at,
                    delivered_at: plans[i].spec.inject_at,
                    refusals: 0,
                });
                completed += 1;
            }
        }

        let mut now = 0u64;
        let mut last_progress = 0u64;
        let stall_window = 8 * u64::from(self.dims.iter().sum::<u32>())
            + 3 * self.cfgs[0].head_timeout.unwrap_or(0)
            + 16 * self.cfgs[0].node.retry_backoff
            + messages.iter().map(|m| u64::from(m.data_flits)).max().unwrap_or(0)
            + 128;
        while completed < plans.len() && now < max_ticks {
            for dim_rings in rings.iter_mut() {
                for ring in dim_rings.iter_mut() {
                    ring.tick();
                }
            }
            now += 1;
            for d in 0..ndims {
                for line in 0..rings[d].len() {
                    let len = rings[d][line].delivered_log().len();
                    while consumed[d][line] < len {
                        let del = rings[d][line].delivered_log()[consumed[d][line]];
                        consumed[d][line] += 1;
                        let Some(&i) = lookup.get(&(d, line, del.request.get())) else {
                            continue;
                        };
                        // Advance the plan's position along this dimension.
                        plans[i].at[d] = del.spec.destination.index();
                        plans[i].next_dim = d + 1;
                        if start_leg(
                            self,
                            &mut rings,
                            &mut lookup,
                            &mut plans,
                            i,
                            del.delivered_at + 1,
                        ) {
                            plans[i].done = Some(DeliveredMessage {
                                request: RequestId::new(i as u64),
                                spec: plans[i].spec,
                                requested_at: plans[i].spec.inject_at,
                                circuit_at: del.circuit_at,
                                delivered_at: del.delivered_at,
                                refusals: del.refusals,
                            });
                            completed += 1;
                        }
                        last_progress = now;
                    }
                }
            }
            let idle = rings
                .iter()
                .flat_map(|dr| dr.iter())
                .all(|r| !r.has_due_work());
            if idle {
                last_progress = now;
            }
            if now - last_progress > stall_window {
                break;
            }
        }

        let mut delivered: Vec<DeliveredMessage> =
            plans.into_iter().filter_map(|p| p.done).collect();
        delivered.sort_by_key(|d| d.delivered_at);
        let stalled = delivered.len() != messages.len();
        RoutingOutcome {
            delivered,
            ticks: now,
            stalled,
            peak_busy_channels: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: u16) -> RmbConfig {
        RmbConfig::builder(4, k)
            .head_timeout(256)
            .retry_backoff(16)
            .build()
            .unwrap()
    }

    #[test]
    fn three_d_lattice_routes_corner_to_corner() {
        let mut lat = RmbLattice::new(vec![4, 4, 4], cfg(2));
        assert_eq!(lat.node_count(), 64);
        // Rings: 3 dims x 16 lines x 4 nodes x 2 buses = 384 segments.
        assert_eq!(lat.link_count(), 384);
        let out = lat.route_messages(
            &[MessageSpec::new(NodeId::new(0), NodeId::new(63), 8)],
            200_000,
        );
        assert_eq!(out.delivered.len(), 1, "stalled={}", out.stalled);
    }

    #[test]
    fn matches_2d_grid_semantics() {
        // The lattice's 2-D case routes the same messages the grid does.
        let mut lat = RmbLattice::new(vec![4, 4], cfg(2));
        let n = 16u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .filter(|&s| n - 1 - s != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(n - 1 - s), 8))
            .collect();
        let out = lat.route_messages(&msgs, 1_000_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
    }

    #[test]
    fn partial_alignment_skips_legs() {
        let mut lat = RmbLattice::new(vec![3, 3, 3], cfg(2));
        // (0,1,2) -> (2,1,2): only dimension 0 differs; flat ids:
        // 0 + 1*3 + 2*9 = 21 -> 2 + 1*3 + 2*9 = 23.
        let out = lat.route_messages(
            &[MessageSpec::new(NodeId::new(21), NodeId::new(23), 4)],
            100_000,
        );
        assert_eq!(out.delivered.len(), 1);
        // Single ring leg: latency well under two-leg cost.
        assert!(out.delivered[0].latency() < 40, "{}", out.delivered[0].latency());
    }

    #[test]
    fn random_traffic_over_3d() {
        let mut lat = RmbLattice::new(vec![3, 4, 3], cfg(2));
        let n = 36u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .filter(|&s| (s * 13 + 7) % n != s)
            .map(|s| {
                MessageSpec::new(NodeId::new(s), NodeId::new((s * 13 + 7) % n), 6)
                    .at(u64::from(s) * 8)
            })
            .collect();
        let out = lat.route_messages(&msgs, 2_000_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
    }

    #[test]
    #[should_panic(expected = "two dimensions")]
    fn rejects_one_dimension() {
        let _ = RmbLattice::new(vec![8], cfg(2));
    }
}
