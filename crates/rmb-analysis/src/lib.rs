//! Analysis tools for the RMB reproduction.
//!
//! Three jobs:
//!
//! 1. [`cost`] — the closed-form §3.2 comparison: links, cross points and
//!    VLSI area needed by each architecture to support a k-permutation.
//! 2. [`structural`] — cross-checks of those formulas against *actually
//!    constructed* network instances from `rmb-baselines` and `rmb-core`.
//! 3. [`offline`] — the offline-optimal batch scheduler for the ring
//!    (clockwise arcs over `k` buses) and the competitive-ratio
//!    computation the paper's §4 proposes as future work.
//!
//! Plus [`RmbRing`], the adapter that lets the RMB simulator take part in
//! the same permutation-routing experiments as the baseline networks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod dual_ring;
mod grid;
mod lattice;
pub mod model;
pub mod offline;
mod rmb_adapter;
pub mod report;
pub mod structural;

pub use cost::{Architecture, Cost};
pub use dual_ring::DualRmbRing;
pub use grid::RmbGrid;
pub use lattice::RmbLattice;
pub use offline::{competitive_ratio, offline_schedule, ring_lower_bound, OfflineSchedule};
pub use rmb_adapter::RmbRing;
pub use report::Table;
