//! Closed-form performance models of the RMB protocol, validated against
//! the simulator.
//!
//! The protocol's unloaded timing is fully determined (§2.2–2.3): with
//! one tick per segment per flit,
//!
//! * circuit set-up = header travel `L - 1` (one extension per tick,
//!   starting the tick after insertion, so the head parks at the
//!   destination after `L - 1` extensions), plus the acceptance decision
//!   (1 tick) plus the `Hack` return (`L` ticks) — `2L` in total;
//! * delivery of an `m`-flit body = set-up + streaming start (1 tick per
//!   flit, `m` flits) + final flit insertion (1) + final flit travel
//!   (`L`) — `3L + m + 1` in total;
//! * the circuit then occupies its arc for `L` more teardown ticks.
//!
//! The saturation throughput of the whole ring is bounded by segment
//! capacity: each delivered message consumes `hold(L, m) · L`
//! segment-ticks out of `N·k` per tick.

use rmb_types::{MessageSpec, RingSize};

/// The unloaded timing prediction for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Ticks from request to the `Hack` arriving back at the source.
    pub setup: u64,
    /// Ticks from request to the final flit reaching the destination.
    pub delivery: u64,
    /// Ticks the circuit holds each hop of its arc, start to teardown.
    pub hold: u64,
}

/// Predicts the unloaded protocol timing for a message on an idle ring.
///
/// # Examples
///
/// ```
/// use rmb_analysis::model::predict;
/// use rmb_types::{MessageSpec, NodeId, RingSize};
///
/// let ring = RingSize::new(8).unwrap();
/// let m = MessageSpec::new(NodeId::new(0), NodeId::new(4), 4);
/// let p = predict(ring, &m);
/// assert_eq!(p.setup, 8);      // 2L
/// assert_eq!(p.delivery, 17);  // 3L + m + 1
/// ```
pub fn predict(ring: RingSize, m: &MessageSpec) -> LatencyModel {
    let span = u64::from(ring.clockwise_distance(m.source, m.destination));
    let body = u64::from(m.data_flits);
    LatencyModel {
        setup: 2 * span,
        delivery: 3 * span + body + 1,
        hold: 4 * span + body + 1,
    }
}

/// The ring's aggregate saturation throughput in *messages per tick* for
/// uniformly random traffic with `m`-flit bodies: segment capacity
/// `N·k` segment-ticks per tick divided by the mean segment-tick cost of
/// one message (`hold · L` with `L = N/2` on average).
pub fn saturation_message_rate(ring: RingSize, k: u16, body: u32) -> f64 {
    let n = f64::from(ring.get());
    let mean_span = n / 2.0;
    let hold = 4.0 * mean_span + f64::from(body) + 1.0;
    n * f64::from(k) / (hold * mean_span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_core::RmbNetwork;
    use rmb_types::{NodeId, RmbConfig};

    /// The unloaded model is exact: validated for every span and several
    /// body sizes against the simulator.
    #[test]
    fn unloaded_model_is_exact() {
        let n = 12u32;
        let ring = RingSize::new(n).unwrap();
        for dst in 1..n {
            for body in [0u32, 1, 9, 33] {
                let spec = MessageSpec::new(NodeId::new(0), NodeId::new(dst), body);
                let p = predict(ring, &spec);
                let mut net = RmbNetwork::new(RmbConfig::new(n, 3).unwrap());
                net.submit(spec).unwrap();
                let report = net.run_to_quiescence(100_000);
                let d = &net.delivered_log()[0];
                assert_eq!(d.setup_latency(), p.setup, "dst={dst} body={body}");
                assert_eq!(d.latency(), p.delivery, "dst={dst} body={body}");
                // The network returns to empty exactly `hold - delivery`
                // ticks after delivery (the teardown tail).
                assert_eq!(
                    report.ticks,
                    p.hold + 1,
                    "teardown completes at hold; +1 for the final idle tick"
                );
            }
        }
    }

    /// The saturation model is an upper bound of the right order: the
    /// measured plateau lands at 25–100% of it (the gap is the protocol's
    /// real overhead — partial circuits holding segments while blocked,
    /// Nack/retry churn, and set-up serialisation on the top bus).
    #[test]
    fn saturation_model_bounds_measured_throughput() {
        let n = 16u32;
        let k = 4u16;
        let body = 8u32;
        let ring = RingSize::new(n).unwrap();
        let predicted = saturation_message_rate(ring, k, body);

        // Overdrive the ring far past saturation and measure deliveries
        // per tick in steady state.
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(8 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .unwrap();
        let mut net = RmbNetwork::new(cfg);
        let mut next = 0u64;
        for wave in 0..40u64 {
            for s in 0..n {
                let spec = MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 2) % n), body)
                    .at(wave * 8 + u64::from(s % 4));
                if spec.source != spec.destination {
                    net.submit(spec).unwrap();
                    next += 1;
                }
            }
        }
        let report = net.run_to_quiescence(4_000_000);
        assert_eq!(report.delivered as u64, next, "stalled={}", report.stalled);
        let measured = next as f64 / report.ticks as f64;
        assert!(
            measured <= predicted * 1.2,
            "measured {measured:.4} exceeds the capacity bound {predicted:.4}"
        );
        assert!(
            measured >= predicted / 4.0,
            "measured {measured:.4} far below the bound {predicted:.4}"
        );
    }
}
