//! Offline scheduling of circuit batches on the ring, and the competitive
//! ratio of the online RMB protocol.
//!
//! §4 of the paper: *"A measure of effectiveness of this approach is its
//! 'competitiveness', i.e. the ratio of its required time for
//! communicating all messages to the time required by an optimal off-line
//! schedule. We plan to pursue research to evaluate the competitiveness of
//! our on-line routing protocol."* This module implements that evaluation.
//!
//! A message from `s` to `d` is a clockwise arc on the ring. A circuit
//! holds one bus segment on every hop of its arc for its whole service
//! time, so an offline schedule is an assignment of start times such that
//! at every instant at most `k` circuits cross any hop. We compute:
//!
//! * [`ring_lower_bound`] — `max(longest single service, max over hops of
//!   total work / k)`: no schedule, online or offline, beats it;
//! * [`offline_schedule`] — a longest-processing-time-first greedy
//!   schedule with exact per-hop occupancy tracking, an *achievable*
//!   offline makespan (within a small factor of optimal);
//! * [`competitive_ratio`] — online makespan divided by the offline
//!   makespan.

use rmb_types::{MessageSpec, RingSize};

/// Service time of one message: how long its circuit holds each hop of
/// its arc in the RMB protocol model — header transit + Hack return +
/// body + final flit + teardown, all proportional to `3·span + flits`
/// plus small constants.
pub fn service_time(ring: RingSize, m: &MessageSpec) -> u64 {
    let span = u64::from(ring.clockwise_distance(m.source, m.destination));
    3 * span + u64::from(m.data_flits) + 3
}

/// The two-part makespan lower bound for scheduling the batch on a ring
/// with `k` buses: the heaviest single message, and the most congested
/// hop's total work divided by `k`.
pub fn ring_lower_bound(ring: RingSize, k: u16, messages: &[MessageSpec]) -> u64 {
    let n = ring.as_usize();
    let mut work = vec![0u64; n];
    let mut longest = 0u64;
    for m in messages {
        let w = service_time(ring, m);
        longest = longest.max(w);
        let span = ring.clockwise_distance(m.source, m.destination);
        for j in 0..span {
            work[ring.advance(m.source, j).as_usize()] += w;
        }
    }
    let congested = work.into_iter().max().unwrap_or(0);
    longest.max(congested.div_ceil(u64::from(k)))
}

/// One scheduled circuit in an offline plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledCircuit {
    /// Index into the input message slice.
    pub message: usize,
    /// Assigned start time.
    pub start: u64,
    /// `start + service_time`.
    pub finish: u64,
}

/// An offline batch schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineSchedule {
    /// Per-message assignments, in input order.
    pub circuits: Vec<ScheduledCircuit>,
    /// The schedule's makespan.
    pub makespan: u64,
}

/// Greedy offline scheduler: sort by service time (longest first), then
/// give each message the earliest start at which every hop of its arc has
/// a bus free for its whole duration.
///
/// The resulting makespan is achievable by an omniscient scheduler and is
/// the denominator of the competitive ratio. (Optimal circuit scheduling
/// is NP-hard; LPT-greedy is the standard proxy and is within a small
/// constant factor on ring instances.)
pub fn offline_schedule(ring: RingSize, k: u16, messages: &[MessageSpec]) -> OfflineSchedule {
    let n = ring.as_usize();
    let k = usize::from(k);
    // Occupancy: per hop, a list of (start, finish) busy intervals; a hop
    // admits a circuit at time t when fewer than k intervals cover any
    // instant of [t, t + w).
    let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];

    let mut order: Vec<usize> = (0..messages.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(service_time(ring, &messages[i])));

    let mut circuits = vec![
        ScheduledCircuit {
            message: 0,
            start: 0,
            finish: 0
        };
        messages.len()
    ];
    let mut makespan = 0;
    for &i in &order {
        let m = &messages[i];
        let w = service_time(ring, m);
        let span = ring.clockwise_distance(m.source, m.destination);
        let hops: Vec<usize> = (0..span)
            .map(|j| ring.advance(m.source, j).as_usize())
            .collect();
        // Candidate start times: 0 and every finish time on the arc.
        let mut candidates: Vec<u64> = vec![0];
        for &h in &hops {
            candidates.extend(busy[h].iter().map(|&(_, f)| f));
        }
        candidates.sort_unstable();
        candidates.dedup();
        let start = candidates
            .into_iter()
            .find(|&t| {
                hops.iter().all(|&h| {
                    let overlapping = busy[h]
                        .iter()
                        .filter(|&&(s, f)| s < t + w && f > t)
                        .count();
                    overlapping < k
                })
            })
            .expect("t = max finish always admits");
        for &h in &hops {
            busy[h].push((start, start + w));
        }
        circuits[i] = ScheduledCircuit {
            message: i,
            start,
            finish: start + w,
        };
        makespan = makespan.max(start + w);
    }
    OfflineSchedule { circuits, makespan }
}

impl OfflineSchedule {
    /// Validates that at no instant more than `k` circuits cross any hop.
    pub fn is_feasible(&self, ring: RingSize, k: u16, messages: &[MessageSpec]) -> bool {
        let n = ring.as_usize();
        let mut events: Vec<Vec<(u64, i64)>> = vec![Vec::new(); n];
        for c in &self.circuits {
            let m = &messages[c.message];
            let span = ring.clockwise_distance(m.source, m.destination);
            for j in 0..span {
                let h = ring.advance(m.source, j).as_usize();
                events[h].push((c.start, 1));
                events[h].push((c.finish, -1));
            }
        }
        for hop in &mut events {
            hop.sort_unstable();
            let mut level = 0i64;
            for &(_, d) in hop.iter() {
                level += d;
                if level > i64::from(k) {
                    return false;
                }
            }
        }
        true
    }
}

/// The competitive ratio: online makespan over the offline greedy
/// makespan. Values near 1 mean the online protocol loses little to its
/// lack of clairvoyance. Returns `None` for an empty batch or a zero
/// offline makespan.
pub fn competitive_ratio(online_makespan: u64, offline: &OfflineSchedule) -> Option<f64> {
    if offline.makespan == 0 {
        None
    } else {
        Some(online_makespan as f64 / offline.makespan as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    fn ring(n: u32) -> RingSize {
        RingSize::new(n).unwrap()
    }

    fn msg(s: u32, d: u32, f: u32) -> MessageSpec {
        MessageSpec::new(NodeId::new(s), NodeId::new(d), f)
    }

    #[test]
    fn service_time_scales_with_span_and_body() {
        let r = ring(8);
        assert_eq!(service_time(r, &msg(0, 4, 10)), 3 * 4 + 10 + 3);
        assert_eq!(service_time(r, &msg(6, 2, 0)), 3 * 4 + 3);
    }

    #[test]
    fn lower_bound_is_max_of_parts() {
        let r = ring(8);
        // One long message dominates.
        let solo = vec![msg(0, 4, 100)];
        assert_eq!(ring_lower_bound(r, 4, &solo), 115);
        // Many short messages over one hop with k = 1: congestion part.
        let storm: Vec<MessageSpec> = (0..10).map(|_| msg(0, 1, 1)).collect();
        assert_eq!(ring_lower_bound(r, 1, &storm), 10 * 7);
        assert_eq!(ring_lower_bound(r, 2, &storm), 5 * 7);
    }

    #[test]
    fn disjoint_arcs_schedule_concurrently() {
        let r = ring(8);
        let batch = vec![msg(0, 2, 4), msg(2, 4, 4), msg(4, 6, 4), msg(6, 0, 4)];
        let sched = offline_schedule(r, 1, &batch);
        assert!(sched.is_feasible(r, 1, &batch));
        // All four can run at once even with one bus.
        assert_eq!(sched.makespan, service_time(r, &batch[0]));
        assert!(sched.circuits.iter().all(|c| c.start == 0));
    }

    #[test]
    fn overlapping_arcs_serialise_per_bus() {
        let r = ring(8);
        let batch = vec![msg(0, 4, 4), msg(1, 5, 4), msg(2, 6, 4)];
        // k = 1: all three share hops 2..4; they must serialise.
        let sched = offline_schedule(r, 1, &batch);
        assert!(sched.is_feasible(r, 1, &batch));
        let w = service_time(r, &batch[0]);
        assert_eq!(sched.makespan, 3 * w);
        // k = 3: all at once.
        let sched = offline_schedule(r, 3, &batch);
        assert!(sched.is_feasible(r, 3, &batch));
        assert_eq!(sched.makespan, w);
    }

    #[test]
    fn schedule_never_beats_lower_bound() {
        let r = ring(16);
        let batch: Vec<MessageSpec> = (0..16)
            .map(|s| msg(s, (s + 5) % 16, (s % 7) * 3))
            .collect();
        for k in [1u16, 2, 4, 8] {
            let sched = offline_schedule(r, k, &batch);
            assert!(sched.is_feasible(r, k, &batch), "k={k}");
            assert!(
                sched.makespan >= ring_lower_bound(r, k, &batch),
                "k={k}: {} < {}",
                sched.makespan,
                ring_lower_bound(r, k, &batch)
            );
        }
    }

    #[test]
    fn feasibility_detects_violations() {
        let r = ring(4);
        let batch = vec![msg(0, 2, 4), msg(0, 2, 4)];
        let bad = OfflineSchedule {
            circuits: vec![
                ScheduledCircuit {
                    message: 0,
                    start: 0,
                    finish: 10,
                },
                ScheduledCircuit {
                    message: 1,
                    start: 5,
                    finish: 15,
                },
            ],
            makespan: 15,
        };
        assert!(!bad.is_feasible(r, 1, &batch));
        assert!(bad.is_feasible(r, 2, &batch));
    }

    #[test]
    fn competitive_ratio_basics() {
        let sched = OfflineSchedule {
            circuits: Vec::new(),
            makespan: 100,
        };
        assert_eq!(competitive_ratio(150, &sched), Some(1.5));
        let empty = OfflineSchedule {
            circuits: Vec::new(),
            makespan: 0,
        };
        assert_eq!(competitive_ratio(10, &empty), None);
    }
}
