//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A fixed-width text table: the output format of every harness binary.
///
/// # Examples
///
/// ```
/// use rmb_analysis::Table;
///
/// let mut t = Table::new(vec!["arch", "links"]);
/// t.row(vec!["RMB".into(), "512".into()]);
/// let s = t.to_string();
/// assert!(s.contains("RMB"));
/// assert!(s.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly: integers without decimals, otherwise 2 d.p.
pub fn fnum(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "metric"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(512.0), "512");
        assert_eq!(fnum(1.5), "1.50");
    }
}
