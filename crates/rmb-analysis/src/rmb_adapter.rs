//! Adapter letting the RMB take part in the baseline `Network`
//! experiments.

use rmb_baselines::{Network, RoutingOutcome};
use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, RmbConfig};

/// The ring-based RMB viewed through the common [`Network`] interface.
///
/// Each [`route_messages`](Network::route_messages) call runs a fresh
/// simulator from the stored configuration, so an adapter can be reused
/// across workloads.
///
/// # Examples
///
/// ```
/// use rmb_analysis::RmbRing;
/// use rmb_baselines::Network;
/// use rmb_types::{MessageSpec, NodeId, RmbConfig};
///
/// let mut rmb = RmbRing::new(RmbConfig::new(16, 4)?);
/// let out = rmb.route_messages(
///     &[MessageSpec::new(NodeId::new(0), NodeId::new(5), 8)],
///     10_000,
/// );
/// assert_eq!(out.delivered.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RmbRing {
    cfg: RmbConfig,
}

impl RmbRing {
    /// Creates an adapter for the given configuration.
    pub fn new(cfg: RmbConfig) -> Self {
        RmbRing { cfg }
    }

    /// The stored configuration.
    pub const fn config(&self) -> &RmbConfig {
        &self.cfg
    }
}

impl Network for RmbRing {
    fn label(&self) -> String {
        format!(
            "rmb(N={}, k={})",
            self.cfg.nodes().get(),
            self.cfg.buses()
        )
    }

    fn node_count(&self) -> u32 {
        self.cfg.nodes().get()
    }

    fn link_count(&self) -> u64 {
        // N * k unidirectional bus segments (§3.2).
        u64::from(self.cfg.nodes().get()) * u64::from(self.cfg.buses())
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let mut net = RmbNetwork::new(self.cfg);
        net.submit_all(messages.iter().copied())
            .expect("workload messages are valid for this ring");
        let report = net.run_to_quiescence(max_ticks);
        RoutingOutcome {
            delivered: net.delivered_log().to_vec(),
            ticks: report.ticks,
            stalled: report.stalled,
            peak_busy_channels: report.peak_virtual_buses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    #[test]
    fn adapter_routes_a_permutation() {
        let cfg = RmbConfig::builder(8, 4).head_timeout(64).build().unwrap();
        let mut rmb = RmbRing::new(cfg);
        assert_eq!(rmb.node_count(), 8);
        assert_eq!(rmb.link_count(), 32);
        assert!(rmb.label().contains("rmb"));
        let msgs: Vec<MessageSpec> = (0..8u32)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new((s + 3) % 8), 4))
            .collect();
        let out = rmb.route_messages(&msgs, 100_000);
        assert_eq!(out.delivered.len(), 8, "stalled={}", out.stalled);
        // Adapter is reusable: second run starts fresh.
        let out2 = rmb.route_messages(&msgs, 100_000);
        assert_eq!(out2.delivered.len(), 8);
    }
}
