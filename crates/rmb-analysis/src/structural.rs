//! Cross-checks of the §3.2 formulas against constructed instances.
//!
//! The paper's closed forms are only credible if they describe the objects
//! they claim to describe. For every architecture we can build (RMB,
//! hypercube, fat tree, mesh), this module counts links on the *actual*
//! constructed instance and compares with the [`crate::cost`] model under
//! the paper's per-architecture counting convention.

use crate::cost::{cost, Architecture};
use rmb_baselines::{FatTree, Hypercube, Mesh2D, Network};

/// Result of one structural cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheck {
    /// Architecture checked.
    pub arch: Architecture,
    /// Node count.
    pub n: u32,
    /// Permutation capability.
    pub k: u16,
    /// Links predicted by the §3.2 formula.
    pub model_links: f64,
    /// Links counted on the constructed instance, normalised to the
    /// paper's convention for this architecture.
    pub structural_links: f64,
    /// Note about the counting convention applied.
    pub convention: &'static str,
}

impl CrossCheck {
    /// Relative error between model and structure.
    pub fn relative_error(&self) -> f64 {
        if self.model_links == 0.0 {
            return 0.0;
        }
        (self.model_links - self.structural_links).abs() / self.model_links
    }
}

/// Cross-checks the RMB link count: `N·k` unidirectional segments.
pub fn check_rmb(n: u32, k: u16) -> CrossCheck {
    // The RMB's structure is by construction N hops x k segments; the
    // simulator's segment array is exactly that object.
    let structural = f64::from(n) * f64::from(k);
    CrossCheck {
        arch: Architecture::Rmb,
        n,
        k,
        model_links: cost(Architecture::Rmb, n, k).links,
        structural_links: structural,
        convention: "unidirectional bus segments",
    }
}

/// Cross-checks the hypercube: the paper's `N log N` counts directed
/// channels (each node owns `log N` outgoing links).
pub fn check_hypercube(n: u32) -> CrossCheck {
    let cube = Hypercube::new(n);
    let k = 1;
    CrossCheck {
        arch: Architecture::Hypercube,
        n,
        k,
        model_links: cost(Architecture::Hypercube, n, k).links,
        structural_links: cube.graph().channel_count() as f64,
        convention: "directed channels (paper counts per-node links)",
    }
}

/// Cross-checks the k-capped fat tree: the paper's `N log k + N - 2k`
/// counts undirected switch-to-switch links and excludes the `N`
/// PE-attachment links at the leaves, which the constructed instance
/// includes — so the structural count is normalised by subtracting `N`.
pub fn check_fat_tree(n: u32, k: u16) -> CrossCheck {
    let tree = FatTree::new(n, k);
    CrossCheck {
        arch: Architecture::FatTree,
        n,
        k,
        model_links: cost(Architecture::FatTree, n, k).links,
        structural_links: tree.link_count() as f64 - f64::from(n),
        convention: "undirected switch-to-switch links (N PE attachments excluded)",
    }
}

/// Cross-checks the k-scaled GFC: §3.2 clusters `k` PEs per cube node,
/// leaving a `N/k`-node cube with `(N/k)·log(N/k)` links (directed, as in
/// the hypercube convention). Structurally this is a hypercube over the
/// `N/k` supernodes.
///
/// # Panics
///
/// Panics unless `n / k` is a power of two of at least 2.
pub fn check_gfc(n: u32, k: u16) -> CrossCheck {
    let m = n / u32::from(k);
    let cube = Hypercube::new(m);
    CrossCheck {
        arch: Architecture::GfcScaled,
        n,
        k,
        model_links: cost(Architecture::GfcScaled, n, k).links,
        structural_links: cube.graph().channel_count() as f64,
        convention: "directed channels of the N/k-supernode cube",
    }
}

/// Cross-checks the mesh: the paper's `2N` counts undirected links of the
/// unexpanded mesh (boundary nodes make the exact count `2N - 2√N`).
pub fn check_mesh(n: u32) -> CrossCheck {
    let mesh = Mesh2D::square(n);
    CrossCheck {
        arch: Architecture::Mesh,
        n,
        k: 1,
        model_links: cost(Architecture::Mesh, n, 1).links,
        structural_links: mesh.link_count() as f64,
        convention: "undirected links; paper's 2N ignores the boundary",
    }
}

/// Runs every cross-check that applies at `(n, k)` (powers of two only
/// for cube/tree; perfect squares for the mesh).
pub fn all_checks(n: u32, k: u16) -> Vec<CrossCheck> {
    let mut out = vec![check_rmb(n, k)];
    if n.is_power_of_two() {
        out.push(check_hypercube(n));
        out.push(check_fat_tree(n, k));
        let m = n / u32::from(k);
        if m >= 2 && m.is_power_of_two() {
            out.push(check_gfc(n, k));
        }
    }
    let side = (n as f64).sqrt().round() as u32;
    if side * side == n {
        out.push(check_mesh(n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmb_matches_exactly() {
        let c = check_rmb(64, 8);
        assert_eq!(c.relative_error(), 0.0);
    }

    #[test]
    fn hypercube_matches_exactly() {
        for n in [8u32, 64, 256] {
            let c = check_hypercube(n);
            assert_eq!(c.relative_error(), 0.0, "N={n}");
        }
    }

    #[test]
    fn fat_tree_matches_exactly_after_pe_link_normalisation() {
        // Constructed tree: sum over levels of min(2^j, k)-capacity
        // bundles = N log k + 2N - 2k undirected links, exactly N (the
        // PE attachments) above the paper's N log k + N - 2k.
        for (n, k) in [(16u32, 4u16), (64, 8), (256, 16)] {
            let c = check_fat_tree(n, k);
            assert_eq!(
                c.relative_error(),
                0.0,
                "N={n} k={k}: model {} vs structural {}",
                c.model_links,
                c.structural_links
            );
            let tree = FatTree::new(n, k);
            assert_eq!(
                tree.link_count() as f64,
                c.model_links + f64::from(n),
                "raw structural count exceeds the paper by exactly N"
            );
        }
    }

    #[test]
    fn gfc_matches_exactly() {
        for (n, k) in [(64u32, 8u16), (256, 16), (1024, 16)] {
            let c = check_gfc(n, k);
            assert_eq!(c.relative_error(), 0.0, "N={n} k={k}");
        }
    }

    #[test]
    fn mesh_matches_up_to_boundary() {
        for n in [16u32, 64, 256, 1024] {
            let c = check_mesh(n);
            // 2N vs 2N - 2sqrt(N): error 1/sqrt(N), shrinking with N.
            let bound = 1.0 / (n as f64).sqrt() + 1e-9;
            assert!(c.relative_error() <= bound, "N={n}: {}", c.relative_error());
        }
    }

    #[test]
    fn all_checks_dispatches_by_shape() {
        // 64 is a power of two and a perfect square: all five checks.
        assert_eq!(all_checks(64, 4).len(), 5);
        // 36 is a perfect square only: RMB + mesh.
        assert_eq!(all_checks(36, 4).len(), 2);
        // 32 is a power of two only: RMB + cube + tree + gfc.
        assert_eq!(all_checks(32, 4).len(), 4);
    }
}
