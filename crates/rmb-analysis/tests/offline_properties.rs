//! Property-based tests of the offline scheduler and lower bound.

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_analysis::{offline_schedule, ring_lower_bound};
use rmb_types::{MessageSpec, NodeId, RingSize};

fn build_msgs(n: u32, raw: &[(u32, u32, u32)]) -> Vec<MessageSpec> {
    raw.iter()
        .map(|&(s, off, flits)| {
            let src = s % n;
            let dst = (src + 1 + off % (n - 1)) % n;
            MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every greedy schedule is feasible and respects the lower bound.
    #[test]
    fn schedule_is_feasible_and_bounded(
        n in 3u32..40,
        k in 1u16..9,
        raw in vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..50),
    ) {
        let ring = RingSize::new(n).unwrap();
        let msgs = build_msgs(n, &raw);
        let sched = offline_schedule(ring, k, &msgs);
        prop_assert!(sched.is_feasible(ring, k, &msgs));
        prop_assert!(sched.makespan >= ring_lower_bound(ring, k, &msgs));
        prop_assert_eq!(sched.circuits.len(), msgs.len());
        // Every circuit's window matches its service time.
        for c in &sched.circuits {
            let w = rmb_analysis::offline::service_time(ring, &msgs[c.message]);
            prop_assert_eq!(c.finish - c.start, w);
        }
    }

    /// More buses never hurt: the makespan is monotone non-increasing
    /// in k.
    #[test]
    fn makespan_is_monotone_in_buses(
        n in 3u32..24,
        raw in vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..30),
    ) {
        let ring = RingSize::new(n).unwrap();
        let msgs = build_msgs(n, &raw);
        let mut last = u64::MAX;
        for k in [1u16, 2, 4, 8] {
            let m = offline_schedule(ring, k, &msgs).makespan;
            prop_assert!(m <= last, "k={k}: {m} > {last}");
            last = m;
        }
    }

    /// With k as large as the message count, nothing ever waits for a
    /// bus: the makespan equals the longest single service time (plus
    /// nothing).
    #[test]
    fn unlimited_buses_reach_the_length_bound(
        n in 3u32..16,
        raw in vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        let ring = RingSize::new(n).unwrap();
        let msgs = build_msgs(n, &raw);
        let k = msgs.len() as u16;
        let sched = offline_schedule(ring, k, &msgs);
        let longest = msgs
            .iter()
            .map(|m| rmb_analysis::offline::service_time(ring, m))
            .max()
            .unwrap();
        prop_assert_eq!(sched.makespan, longest);
    }

    /// The lower bound is itself monotone: adding a message never lowers
    /// it.
    #[test]
    fn lower_bound_is_monotone_in_messages(
        n in 3u32..24,
        k in 1u16..6,
        raw in vec((any::<u32>(), any::<u32>(), any::<u32>()), 2..30),
    ) {
        let ring = RingSize::new(n).unwrap();
        let msgs = build_msgs(n, &raw);
        let all = ring_lower_bound(ring, k, &msgs);
        let fewer = ring_lower_bound(ring, k, &msgs[..msgs.len() - 1]);
        prop_assert!(fewer <= all);
    }
}
