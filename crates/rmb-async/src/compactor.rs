//! Threaded compaction of established virtual buses.
//!
//! Each INC thread owns the downward moves of its own output side and
//! performs them only inside its local odd/even phase, paced by the same
//! five-rule handshake as [`crate::ThreadedCycleRing`]. The shared bus
//! state sits behind a mutex, standing in for the physical bus wiring —
//! the *decisions* are fully distributed, exactly as in the paper's INC
//! hardware.

use std::sync::Mutex;
use rmb_core::{
    assessed_in_phase, CycleController, CycleFlags, CycleStep, EndpointHeight, HopContext, Phase,
};
use rmb_types::{BusIndex, NodeId, RingSize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// One established circuit for the static-compaction experiment: the
/// `Hack` has long returned, so both endpoints attach to PEs and every hop
/// may sink as far as the switching constraint allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticBus {
    /// First node of the clockwise arc.
    pub start: NodeId,
    /// Segment occupied on each hop, starting at `start`.
    pub heights: Vec<BusIndex>,
}

#[derive(Debug)]
struct Grid {
    ring: RingSize,
    k: u16,
    buses: Vec<StaticBus>,
    /// `occ[hop][bus]` holds the index of the occupying bus.
    occ: Vec<Vec<Option<usize>>>,
}

impl Grid {
    fn new(ring: RingSize, k: u16, buses: Vec<StaticBus>) -> Self {
        let mut occ = vec![vec![None; k as usize]; ring.as_usize()];
        for (b, bus) in buses.iter().enumerate() {
            for (j, h) in bus.heights.iter().enumerate() {
                let hop = ring.advance(bus.start, j as u32).as_usize();
                assert!(
                    occ[hop][h.as_usize()].replace(b).is_none(),
                    "initial configuration overlaps at hop {hop}"
                );
            }
        }
        Grid {
            ring,
            k,
            buses,
            occ,
        }
    }

    /// Performs all moves INC `node` may make in `phase`; returns the
    /// move count.
    fn compact_at(&mut self, node: NodeId, phase: Phase) -> u64 {
        let mut moves = 0;
        for b in 0..self.buses.len() {
            for j in 0..self.buses[b].heights.len() {
                if self.buses[b].hop_upstream(self.ring, j) != node {
                    continue;
                }
                let height = self.buses[b].heights[j];
                if !assessed_in_phase(node, height, phase) {
                    continue;
                }
                let ctx = self.hop_context(b, j);
                if ctx.switchable_down().is_some() {
                    let to = height.lower().expect("switchable implies not bottom");
                    let hop = node.as_usize();
                    debug_assert_eq!(self.occ[hop][height.as_usize()], Some(b));
                    self.occ[hop][height.as_usize()] = None;
                    debug_assert!(self.occ[hop][to.as_usize()].is_none());
                    self.occ[hop][to.as_usize()] = Some(b);
                    self.buses[b].heights[j] = to;
                    moves += 1;
                }
            }
        }
        moves
    }

    fn hop_context(&self, b: usize, j: usize) -> HopContext {
        let bus = &self.buses[b];
        let height = bus.heights[j];
        let upstream = if j == 0 {
            EndpointHeight::Pe
        } else {
            EndpointHeight::At(bus.heights[j - 1])
        };
        let downstream = if j + 1 == bus.heights.len() {
            EndpointHeight::Pe
        } else {
            EndpointHeight::At(bus.heights[j + 1])
        };
        let hop = bus.hop_upstream(self.ring, j).as_usize();
        let below_free = height
            .lower()
            .map(|lo| self.occ[hop][lo.as_usize()].is_none())
            .unwrap_or(false);
        HopContext {
            height,
            top: BusIndex::new(self.k - 1),
            upstream,
            downstream,
            below_free,
        }
    }

    /// `true` when no hop is switchable down in either phase.
    fn is_fixpoint(&self) -> bool {
        for phase in [Phase::Even, Phase::Odd] {
            for b in 0..self.buses.len() {
                for j in 0..self.buses[b].heights.len() {
                    let node = self.buses[b].hop_upstream(self.ring, j);
                    if assessed_in_phase(node, self.buses[b].heights[j], phase)
                        && self.hop_context(b, j).switchable_down().is_some()
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn check_consistency(&self) {
        for bus in &self.buses {
            for w in bus.heights.windows(2) {
                assert!(
                    w[0].is_adjacent_or_equal(w[1]),
                    "continuity broken: {w:?}"
                );
            }
        }
        let occupied: usize = self
            .occ
            .iter()
            .flat_map(|row| row.iter())
            .filter(|s| s.is_some())
            .count();
        let hops: usize = self.buses.iter().map(|b| b.heights.len()).sum();
        assert_eq!(occupied, hops, "occupancy grid out of sync");
    }
}

impl StaticBus {
    fn hop_upstream(&self, ring: RingSize, j: usize) -> NodeId {
        ring.advance(self.start, j as u32)
    }
}

/// Outcome of a threaded compaction run.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// Final heights of every bus, in input order.
    pub buses: Vec<StaticBus>,
    /// Total downward moves performed across all threads.
    pub moves: u64,
    /// Cycle transitions completed per INC thread.
    pub transitions: Vec<u64>,
    /// `true` when the final configuration admits no further move.
    pub reached_fixpoint: bool,
}

/// Compacts a static set of established circuits with one thread per INC.
///
/// # Examples
///
/// ```
/// use rmb_async::{StaticBus, ThreadedCompactor};
/// use rmb_types::{BusIndex, NodeId};
///
/// // One 3-hop circuit parked on the top of a k=4 array: the threads
/// // bring it down to the bottom.
/// let bus = StaticBus {
///     start: NodeId::new(1),
///     heights: vec![BusIndex::new(3); 3],
/// };
/// let result = ThreadedCompactor::new(8, 4).run(vec![bus]);
/// assert!(result.reached_fixpoint);
/// assert!(result.buses[0].heights.iter().all(|h| h.index() == 0));
/// ```
#[derive(Debug, Clone)]
pub struct ThreadedCompactor {
    n: u32,
    k: u16,
    max_transitions: u64,
}

impl ThreadedCompactor {
    /// Creates a compactor for an `n`-node, `k`-bus array.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k == 0`.
    pub fn new(n: u32, k: u16) -> Self {
        assert!(n >= 2, "need at least two INCs");
        assert!(k >= 1, "need at least one bus");
        ThreadedCompactor {
            n,
            k,
            max_transitions: 4 * (u64::from(k) + u64::from(n)) + 32,
        }
    }

    /// Runs the threads until every INC has completed enough transitions
    /// to guarantee a fixpoint, then validates and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if the initial configuration overlaps, or if consistency is
    /// violated during the run (a bug, not an input error).
    pub fn run(&self, buses: Vec<StaticBus>) -> CompactionResult {
        let ring = RingSize::new(self.n).expect("n >= 2");
        let n = self.n as usize;
        let grid = Mutex::new(Grid::new(ring, self.k, buses));
        let flags: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        let transitions: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let moves = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let goal = self.max_transitions;

        let pack = |f: CycleFlags| u8::from(f.data) | (u8::from(f.cycle) << 1);
        let unpack = |b: u8| CycleFlags {
            data: b & 1 != 0,
            cycle: b & 2 != 0,
        };

        std::thread::scope(|s| {
            for i in 0..n {
                let grid = &grid;
                let flags = &flags;
                let transitions = &transitions;
                let moves = &moves;
                let stop = &stop;
                s.spawn(move || {
                    let mut ctl = CycleController::new(Phase::Even);
                    let left = (i + n - 1) % n;
                    let right = (i + 1) % n;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if ctl.may_switch_datapath() && !ctl.internal_done() {
                            let done = {
                                let mut g = grid.lock().unwrap();
                                let m = g.compact_at(NodeId::new(i as u32), ctl.phase());
                                g.check_consistency();
                                m
                            };
                            moves.fetch_add(done, Ordering::Relaxed);
                            ctl.set_internal_done(true);
                        }
                        let l = unpack(flags[left].load(Ordering::Acquire));
                        let r = unpack(flags[right].load(Ordering::Acquire));
                        let step = ctl.step(l, r);
                        flags[i].store(pack(ctl.flags()), Ordering::Release);
                        if step == CycleStep::CycleSwitched {
                            transitions[i].store(ctl.transitions(), Ordering::SeqCst);
                        }
                        if ctl.transitions() >= goal {
                            let all = transitions
                                .iter()
                                .all(|t| t.load(Ordering::SeqCst) >= goal);
                            if all {
                                stop.store(true, Ordering::SeqCst);
                            }
                        }
                        std::thread::yield_now();
                    }
                });
            }
        });

        let grid = grid.into_inner().unwrap();
        grid.check_consistency();
        CompactionResult {
            reached_fixpoint: grid.is_fixpoint(),
            buses: grid.buses,
            moves: moves.load(Ordering::Relaxed),
            transitions: transitions.iter().map(|t| t.load(Ordering::SeqCst)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(start: u32, heights: &[u16]) -> StaticBus {
        StaticBus {
            start: NodeId::new(start),
            heights: heights.iter().map(|&h| BusIndex::new(h)).collect(),
        }
    }

    #[test]
    fn single_bus_sinks_to_bottom() {
        let result = ThreadedCompactor::new(6, 3).run(vec![bus(0, &[2, 2, 2, 2])]);
        assert!(result.reached_fixpoint);
        assert!(result.buses[0].heights.iter().all(|h| h.index() == 0));
        assert_eq!(result.moves, 8); // 4 hops x 2 levels
    }

    #[test]
    fn stacked_buses_pack_densely() {
        // Three overlapping circuits on k = 3: they end up on levels
        // 0, 1, 2 over the shared hops.
        let result = ThreadedCompactor::new(8, 3).run(vec![
            bus(0, &[0, 0, 0, 0]),
            bus(0, &[1, 1, 1, 1]),
            bus(0, &[2, 2, 2, 2]),
        ]);
        assert!(result.reached_fixpoint);
        assert_eq!(result.moves, 0, "already dense: nothing to do");
    }

    #[test]
    fn gap_is_filled_from_above() {
        // Bottom free, two buses above: both sink one level.
        let result = ThreadedCompactor::new(8, 3)
            .run(vec![bus(0, &[1, 1, 1]), bus(0, &[2, 2, 2])]);
        assert!(result.reached_fixpoint);
        let mut levels: Vec<u16> = result
            .buses
            .iter()
            .map(|b| b.heights[0].index())
            .collect();
        levels.sort_unstable();
        assert_eq!(levels, vec![0, 1]);
    }

    #[test]
    fn partial_overlap_respects_switching_constraint() {
        // A long bus above a short one: over the shared hops it stays one
        // level up; outside them it may dip only one level per hop.
        let result = ThreadedCompactor::new(10, 4)
            .run(vec![bus(2, &[0, 0]), bus(0, &[3, 3, 3, 3, 3, 3])]);
        assert!(result.reached_fixpoint);
        let long = &result.buses[1];
        // Continuity held.
        for w in long.heights.windows(2) {
            assert!(w[0].is_adjacent_or_equal(w[1]));
        }
        // Over hops 2 and 3 the short bus owns level 0, so the long bus
        // sits at level 1 there.
        assert_eq!(long.heights[2].index(), 1);
        assert_eq!(long.heights[3].index(), 1);
        // Its free ends slope down to level 0.
        assert_eq!(long.heights[0].index(), 0);
        assert_eq!(long.heights[5].index(), 0);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn rejects_overlapping_input() {
        let _ = ThreadedCompactor::new(6, 2).run(vec![bus(0, &[1, 1]), bus(1, &[1, 1])]);
    }
}
