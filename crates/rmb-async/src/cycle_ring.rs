//! The odd/even cycle handshake under real threads.

use std::thread;
use rmb_core::{CycleController, CycleFlags, CycleStep, Phase};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

fn pack(flags: CycleFlags) -> u8 {
    u8::from(flags.data) | (u8::from(flags.cycle) << 1)
}

fn unpack(bits: u8) -> CycleFlags {
    CycleFlags {
        data: bits & 1 != 0,
        cycle: bits & 2 != 0,
    }
}

/// Outcome of a threaded cycle-ring run.
#[derive(Debug, Clone)]
pub struct CycleRunStats {
    /// Completed cycle transitions per INC thread.
    pub transitions: Vec<u64>,
    /// `true` when every transition observed both neighbours within one
    /// transition (Lemma 1), checked *at the moment of each transition*.
    pub lemma1_held: bool,
    /// Largest neighbour skew observed at any transition instant.
    pub max_observed_skew: u64,
}

/// Runs `n` cycle controllers on `n` OS threads with deliberately uneven
/// pacing, verifying Lemma 1 under true concurrency.
///
/// Threads publish their `OD`/`OC` flags in shared atomics (the hardware
/// signal wires) and read their neighbours' on every local activation —
/// there is no global clock and no lock.
#[derive(Debug, Clone)]
pub struct ThreadedCycleRing {
    n: usize,
    min_transitions: u64,
    /// Extra busy-work iterations per activation for thread `i % pacing
    /// .len()`, creating persistent speed imbalance.
    pacing: Vec<u32>,
}

impl ThreadedCycleRing {
    /// Creates a runner for `n` INC threads.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least two INCs");
        ThreadedCycleRing {
            n,
            min_transitions: 100,
            pacing: vec![0, 50, 10, 200, 5],
        }
    }

    /// Sets how many transitions every thread must complete before the
    /// run stops.
    #[must_use]
    pub fn min_transitions(mut self, t: u64) -> Self {
        self.min_transitions = t;
        self
    }

    /// Sets the per-thread busy-work pacing pattern.
    #[must_use]
    pub fn pacing(mut self, pacing: Vec<u32>) -> Self {
        assert!(!pacing.is_empty(), "pacing pattern must be non-empty");
        self.pacing = pacing;
        self
    }

    /// Runs the ring until every thread has completed the requested
    /// transitions; returns per-thread statistics.
    pub fn run(&self) -> CycleRunStats {
        let n = self.n;
        let flags: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        let transitions: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let max_skew = AtomicU64::new(0);
        let violated = AtomicBool::new(false);
        let stop = AtomicBool::new(false);

        thread::scope(|s| {
            for i in 0..n {
                let flags = &flags;
                let transitions = &transitions;
                let max_skew = &max_skew;
                let violated = &violated;
                let stop = &stop;
                let busy = self.pacing[i % self.pacing.len()];
                let goal = self.min_transitions;
                s.spawn(move || {
                    let mut ctl = CycleController::new(Phase::Even);
                    let left = (i + n - 1) % n;
                    let right = (i + 1) % n;
                    let mut spin = 0u32;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // "Datapath work" for this phase: pure pacing.
                        if ctl.may_switch_datapath() && !ctl.internal_done() {
                            for _ in 0..busy {
                                spin = spin.wrapping_add(1);
                            }
                            ctl.set_internal_done(true);
                        }
                        let l = unpack(flags[left].load(Ordering::Acquire));
                        let r = unpack(flags[right].load(Ordering::Acquire));
                        let step = ctl.step(l, r);
                        flags[i].store(pack(ctl.flags()), Ordering::Release);
                        if step == CycleStep::CycleSwitched {
                            // Lemma 1, checked at the transition instant:
                            // our new count may lead a neighbour by at
                            // most one.
                            let mine = ctl.transitions();
                            transitions[i].store(mine, Ordering::SeqCst);
                            for nb in [left, right] {
                                let theirs = transitions[nb].load(Ordering::SeqCst);
                                let skew = mine.abs_diff(theirs);
                                max_skew.fetch_max(skew, Ordering::Relaxed);
                                if skew > 1 {
                                    violated.store(true, Ordering::SeqCst);
                                }
                            }
                        }
                        if ctl.transitions() >= goal {
                            // Signal completion; keep stepping so slower
                            // neighbours are not starved of our flags.
                            let all_done = transitions
                                .iter()
                                .all(|t| t.load(Ordering::SeqCst) >= goal);
                            if all_done {
                                stop.store(true, Ordering::SeqCst);
                            }
                        }
                        std::thread::yield_now();
                    }
                    std::hint::black_box(spin);
                });
            }
        });

        CycleRunStats {
            transitions: transitions.iter().map(|t| t.load(Ordering::SeqCst)).collect(),
            lemma1_held: !violated.load(Ordering::SeqCst),
            max_observed_skew: max_skew.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_holds_under_preemption() {
        let stats = ThreadedCycleRing::new(6).min_transitions(300).run();
        assert!(stats.lemma1_held, "skew {}", stats.max_observed_skew);
        assert!(stats.transitions.iter().all(|&t| t >= 300));
        assert!(stats.max_observed_skew <= 1);
    }

    #[test]
    fn extreme_pacing_imbalance_still_bounded() {
        let stats = ThreadedCycleRing::new(4)
            .pacing(vec![0, 5_000, 0, 1])
            .min_transitions(150)
            .run();
        assert!(stats.lemma1_held);
        // The handshake forces the fast threads down to the slow one's
        // pace: all counts end within one of each other.
        let min = stats.transitions.iter().min().unwrap();
        let max = stats.transitions.iter().max().unwrap();
        assert!(max - min <= 1, "transitions: {:?}", stats.transitions);
    }

    #[test]
    fn two_node_ring_works() {
        // Each node is both left and right neighbour of the other.
        let stats = ThreadedCycleRing::new(2).min_transitions(100).run();
        assert!(stats.lemma1_held);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_inc() {
        let _ = ThreadedCycleRing::new(1);
    }
}
