//! A threaded RMB: every INC runs on its own OS thread.
//!
//! The paper's §2.5 assumes "individual INCs operate off independent
//! clocks and the timing of communications on the virtual buses is
//! entirely independent of these clocks". The tick simulator in
//! `rmb-core` *models* that; this crate *executes* it: one OS thread per
//! INC, no global clock, neighbours coordinating only through the
//! five-rule odd/even cycle handshake (Table 2, Fig. 9–10) over shared
//! atomics.
//!
//! Two layers:
//!
//! * [`ThreadedCycleRing`] — the synchronisation layer alone: N threads
//!   run their cycle controllers at deliberately different speeds and the
//!   harness verifies Lemma 1 (neighbouring transition counts never differ
//!   by more than one) *at every transition*, under true preemption.
//! * [`ThreadedCompactor`] — the compaction layer: N INC threads compact
//!   a shared set of established virtual buses downwards, each thread
//!   deciding only the moves of its own output side, in its own local
//!   phase. The result must equal the fixpoint the synchronous simulator
//!   reaches: every bus on the lowest segments reachable under the ±1
//!   switching constraint.
//!
//! A third layer serves the hierarchy rather than a single ring:
//! [`ShardPool`] is a persistent fork/join pool that `rmb-hier`'s sharded
//! engine uses to advance many independent rings inside each conservative
//! time window. It is the only module in the workspace allowed to use
//! `unsafe` (for the type-erased disjoint `&mut` dispatch); see its module
//! docs for the safety argument.
//!
//! # Examples
//!
//! ```
//! use rmb_async::ThreadedCycleRing;
//!
//! let stats = ThreadedCycleRing::new(4).min_transitions(50).run();
//! assert!(stats.lemma1_held);
//! assert!(stats.transitions.iter().all(|&t| t >= 50));
//! ```

#![deny(unsafe_code)] // `shard` opts out locally with a documented safety argument
#![warn(missing_docs)]

mod compactor;
mod cycle_ring;
mod shard;

pub use compactor::{CompactionResult, StaticBus, ThreadedCompactor};
pub use cycle_ring::{CycleRunStats, ThreadedCycleRing};
pub use shard::ShardPool;
