//! A persistent worker pool for conservative time-window execution.
//!
//! The parallel hierarchy engine in `rmb-hier` advances every ring by one
//! synchronisation window, merges bridge traffic, and repeats — millions
//! of windows per run. Spawning threads per window (or even routing every
//! window through channel sends) would cost more than the ring work it
//! parallelises, so [`ShardPool`] keeps its workers alive across windows
//! and synchronises each one with two atomics:
//!
//! * a **generation counter** the coordinator bumps to publish a window
//!   (workers spin briefly, then park on a condvar), and
//! * a **remaining counter** each worker decrements when its stripe of
//!   shards is done (the coordinator spins until it reaches zero).
//!
//! [`ShardPool::run_shards`] hands each worker a *stripe* of a
//! `&mut [&mut T]` slice — worker `w` touches indices `w, w + threads,
//! …` only, and the calling thread works the last stripe itself instead
//! of idling. Shard-to-stripe assignment is fixed, but because every
//! shard is advanced independently (that is the caller's contract), the
//! assignment affects wall-clock time only, never results.
//!
//! # Safety
//!
//! This module contains the workspace's only `unsafe` code. The pool
//! passes two raw pointers to its workers per window: the slice base and
//! the borrowed closure. Both stay valid because `run_shards` does not
//! return — by normal exit *or* by unwinding (the caller's own stripe
//! runs under `catch_unwind`) — until every worker has bumped the
//! remaining counter, and workers never touch a job after that bump (the
//! next job only becomes visible through a later generation bump, which
//! the coordinator issues only from inside the next `run_shards` call).
//! `run_shards` takes `&mut self`, so only one window can ever be in
//! flight: no second publish can race the generation bump or the
//! remaining counter. Disjoint striping means no element is ever aliased
//! by two threads. `T: Send` bounds the cross-thread `&mut T` handoff
//! and `F: Sync` the shared closure, exactly as `std::thread::scope`
//! would demand.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Spin iterations before a waiter starts yielding its timeslice, and
/// yields before a worker parks on the condvar. Windows arrive back to
/// back during a run, so on a machine with a core per stripe the fast
/// path is "next generation arrives while spinning". When the host has
/// fewer cores than the pool has stripes, every spin iteration steals
/// the CPU from the thread that actually holds work, so an oversubscribed
/// pool zeroes both limits and parks immediately instead (see
/// [`ShardPool::new`]).
const SPIN_LIMIT: u32 = 256;
const YIELD_LIMIT: u32 = 2_048;

/// One published window: a type-erased shard slice plus the closure to
/// apply to each shard. `call` re-instantiates the erased types.
#[derive(Clone, Copy)]
struct Job {
    shards: *mut (),
    len: usize,
    ctx: *const (),
    call: unsafe fn(*const (), *mut (), usize),
}

impl Job {
    const fn empty() -> Self {
        Job {
            shards: std::ptr::null_mut(),
            len: 0,
            ctx: std::ptr::null(),
            call: |_, _, _| {},
        }
    }
}

// SAFETY: a `Job` is only ever executed while the `run_shards` call that
// built it is blocked waiting on the remaining counter, so the pointers
// are live; striping keeps element access disjoint (see module docs).
#[allow(unsafe_code)]
unsafe impl Send for Job {}

struct Inner {
    /// Spin iterations before yielding (0 when the host is
    /// oversubscribed: fewer cores than pool stripes).
    spin_limit: u32,
    /// Yields before a worker parks on the condvar (0 when
    /// oversubscribed).
    yield_limit: u32,
    /// Window generation; bumped (under `job`'s lock) to publish work.
    gen: AtomicU64,
    /// Workers still running the current window.
    remaining: AtomicUsize,
    /// Set when the pool is dropped; workers exit at the next wakeup.
    stop: AtomicBool,
    /// `true` when some worker panicked inside a window.
    panicked: AtomicBool,
    /// The published job. Doubles as the condvar's mutex.
    job: Mutex<Job>,
    cv: Condvar,
}

/// A reusable fork/join pool over persistent OS threads, tuned for very
/// short, very frequent windows.
///
/// `threads` counts the calling thread too: `ShardPool::new(4)` spawns
/// three workers and the caller runs the fourth stripe inside
/// [`run_shards`](Self::run_shards). A pool of one spawns nothing and
/// degenerates to an in-order loop, which keeps `Sharded(1)` runs useful
/// as a minimal-diff check against the serial engine.
///
/// # Examples
///
/// ```
/// use rmb_async::ShardPool;
///
/// let mut pool = ShardPool::new(4);
/// let mut counters = vec![0u64; 64];
/// let mut shards: Vec<&mut u64> = counters.iter_mut().collect();
/// for round in 0..10 {
///     pool.run_shards(&mut shards, &|i, c| *c += (i as u64) + round);
/// }
/// assert_eq!(*shards[3], 10 * 3 + 45);
/// ```
pub struct ShardPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Creates a pool of `threads` total stripes (clamped to at least 1);
    /// `threads - 1` worker threads are spawned immediately and parked.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        // Spinning only pays when each stripe can hold a core; on an
        // oversubscribed host the waiter's best move is to give the CPU
        // back immediately so the threads that hold shards can run.
        let oversubscribed = cores < threads;
        let inner = Arc::new(Inner {
            spin_limit: if oversubscribed { 0 } else { SPIN_LIMIT },
            yield_limit: if oversubscribed { 0 } else { YIELD_LIMIT },
            gen: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            job: Mutex::new(Job::empty()),
            cv: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|stripe| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rmb-shard-{stripe}"))
                    .spawn(move || worker_loop(&inner, stripe, threads))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool {
            inner,
            handles,
            threads,
        }
    }

    /// Total stripes (worker threads plus the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every shard, striped across the pool, and returns
    /// once all shards are done. `f(i, shard)` must depend only on `i`
    /// and the shard itself — shards are advanced concurrently and may
    /// not observe each other. Takes `&mut self` so that at most one
    /// window is ever in flight per pool; this exclusivity is part of
    /// the safety argument (see module docs), not just an API nicety.
    ///
    /// # Panics
    ///
    /// Propagates any panic raised by `f` — the caller's own panic
    /// payload if `f` panicked on the calling thread, otherwise a fresh
    /// panic for a worker-thread panic. Either way the propagation
    /// happens only after every worker finished the window, so the
    /// shard slice and closure are no longer referenced by any thread.
    pub fn run_shards<T, F>(&mut self, shards: &mut [&mut T], f: &F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if self.handles.is_empty() || shards.len() <= 1 {
            for (i, shard) in shards.iter_mut().enumerate() {
                f(i, shard);
            }
            return;
        }

        #[allow(unsafe_code)]
        unsafe fn call_one<T, F: Fn(usize, &mut T)>(ctx: *const (), base: *mut (), i: usize) {
            // SAFETY: `ctx` is the `&F` and `base` the slice base pointer
            // published by the `run_shards` frame currently blocked on
            // this window; `i` is inside the published `len` and visited
            // by exactly one thread (striping).
            let f = unsafe { &*(ctx.cast::<F>()) };
            let slot = unsafe { &mut *base.cast::<&mut T>().add(i) };
            f(i, slot);
        }

        let base = shards.as_mut_ptr();
        let len = shards.len();
        let job = Job {
            shards: base.cast(),
            len,
            ctx: (f as *const F).cast(),
            call: call_one::<T, F>,
        };
        self.inner.remaining.store(self.handles.len(), Ordering::Release);
        {
            let mut slot = self.inner.job.lock().expect("shard pool poisoned");
            *slot = job;
            // The bump happens under the lock so a worker checking the
            // generation before parking cannot miss the notification.
            self.inner.gen.fetch_add(1, Ordering::Release);
            self.inner.cv.notify_all();
        }

        // The caller is the last stripe — work instead of waiting. The
        // stripe runs under catch_unwind because an unwind past the
        // join below would let the caller free the shard slice while
        // workers still dereference the published pointers; the panic
        // is re-raised only after every worker has decremented
        // `remaining`.
        let caller = catch_unwind(AssertUnwindSafe(|| {
            let mut i = self.threads - 1;
            while i < len {
                // SAFETY: same contract as the workers'; this stripe is
                // disjoint from every worker stripe.
                #[allow(unsafe_code)]
                unsafe {
                    call_one::<T, F>(job.ctx, job.shards, i);
                }
                i += self.threads;
            }
        }));

        let mut spins = 0u32;
        while self.inner.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < self.inner.spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // The window is fully joined: no thread holds the job pointers
        // any more, so unwinding is safe from here on. A caller-stripe
        // panic wins over a concurrent worker panic (its payload is the
        // original one); the flag is cleared either way so it cannot
        // leak into the next window.
        let worker_panicked = self.inner.panicked.swap(false, Ordering::AcqRel);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a shard worker panicked during the window");
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        {
            let _slot = self.inner.job.lock().expect("shard pool poisoned");
            self.inner.gen.fetch_add(1, Ordering::Release);
            self.inner.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner, stripe: usize, stripes: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for a new generation: spin, then yield, then park.
        let mut spins = 0u32;
        loop {
            let g = inner.gen.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            spins += 1;
            if spins < inner.spin_limit {
                std::hint::spin_loop();
            } else if spins < inner.yield_limit {
                std::thread::yield_now();
            } else {
                let guard = inner.job.lock().expect("shard pool poisoned");
                if inner.gen.load(Ordering::Acquire) == seen {
                    // Re-checked under the lock that publishes bumps, so
                    // this wait cannot miss one; spurious wakeups just
                    // re-enter the outer check.
                    drop(inner.cv.wait(guard).expect("shard pool poisoned"));
                }
                spins = 0;
            }
        }
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let job = *inner.job.lock().expect("shard pool poisoned");
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut i = stripe;
            while i < job.len {
                // SAFETY: published job pointers are live until every
                // worker decrements `remaining` below; stripe indices are
                // disjoint across threads (see module docs).
                #[allow(unsafe_code)]
                unsafe {
                    (job.call)(job.ctx, job.shards, i);
                }
                i += stripes;
            }
        }));
        if result.is_err() {
            inner.panicked.store(true, Ordering::Release);
        }
        inner.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_to_every_shard_with_its_index() {
        let mut pool = ShardPool::new(4);
        let mut data = vec![0usize; 37];
        let mut shards: Vec<&mut usize> = data.iter_mut().collect();
        pool.run_shards(&mut shards, &|i, v| *v = i * i);
        drop(shards);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn reusable_across_many_windows() {
        // The hierarchy runs one window per simulated tick; the pool must
        // stay correct over long window sequences, including stretches
        // long enough for workers to fall back to parking.
        let mut pool = ShardPool::new(3);
        let mut data = [0u64; 8];
        let mut shards: Vec<&mut u64> = data.iter_mut().collect();
        for w in 0..5_000u64 {
            pool.run_shards(&mut shards, &|i, v| *v += w + i as u64);
        }
        drop(shards);
        let base: u64 = (0..5_000).sum();
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, base + 5_000 * i as u64);
        }
    }

    #[test]
    fn single_thread_pool_runs_in_order() {
        let mut pool = ShardPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut log = vec![0usize; 5];
        let mut shards: Vec<&mut usize> = log.iter_mut().collect();
        let counter = AtomicUsize::new(0);
        pool.run_shards(&mut shards, &|_, v| {
            *v = counter.fetch_add(1, Ordering::Relaxed);
        });
        drop(shards);
        assert_eq!(log, vec![0, 1, 2, 3, 4], "in-order like a plain loop");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let mut pool = ShardPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut data = [1u32, 2];
        let mut shards: Vec<&mut u32> = data.iter_mut().collect();
        pool.run_shards(&mut shards, &|_, v| *v *= 10);
        drop(shards);
        assert_eq!(data, [10, 20]);
    }

    #[test]
    fn more_threads_than_shards() {
        let mut pool = ShardPool::new(8);
        let mut data = vec![0u8; 3];
        let mut shards: Vec<&mut u8> = data.iter_mut().collect();
        pool.run_shards(&mut shards, &|i, v| *v = i as u8 + 1);
        drop(shards);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives_drop() {
        let mut pool = ShardPool::new(4);
        let mut data = [0u32; 16];
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut shards: Vec<&mut u32> = data.iter_mut().collect();
            pool.run_shards(&mut shards, &|i, _| {
                // Index 1 lives on a worker stripe (caller takes stripe
                // `threads - 1` = 3, then 7, 11, …).
                assert!(i != 1, "boom");
            });
        }));
        assert!(r.is_err(), "worker panic must propagate to the caller");
        drop(pool); // workers must still join cleanly
    }

    #[test]
    fn caller_stripe_panic_joins_workers_before_unwinding() {
        let mut pool = ShardPool::new(4);
        let mut data = [0u32; 16];
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut shards: Vec<&mut u32> = data.iter_mut().collect();
            pool.run_shards(&mut shards, &|i, v| {
                *v = i as u32 + 1;
                // Index 3 is the caller's first stripe index
                // (`threads - 1`), so this panic unwinds the
                // coordinating thread, not a worker.
                assert!(i != 3, "boom on caller stripe");
            });
        }));
        assert!(r.is_err(), "caller panic must still propagate");
        // The join completed before the unwind: every worker-stripe
        // index was written even though the caller stripe died early.
        for (i, v) in data.iter().enumerate() {
            if i % 4 != 3 {
                assert_eq!(*v, i as u32 + 1, "worker stripe {i} unfinished");
            }
        }
        // And the pool is still healthy for subsequent windows.
        let mut shards: Vec<&mut u32> = data.iter_mut().collect();
        pool.run_shards(&mut shards, &|i, v| *v = 100 + i as u32);
        drop(shards);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 100 + i as u32);
        }
        drop(pool);
    }
}
