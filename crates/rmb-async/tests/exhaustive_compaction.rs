//! Exhaustive compaction check: every legal placement of a single
//! established circuit on a small bus array is driven to a fixpoint by
//! the threaded compactor, with continuity preserved and the result
//! being the unique gravity minimum (all hops at the lowest reachable
//! heights).

use rmb_async::{StaticBus, ThreadedCompactor};
use rmb_types::{BusIndex, NodeId};

/// All height profiles of the given length over `0..k` whose adjacent
/// steps stay within the INC's ±1 switching range.
fn profiles(len: usize, k: u16) -> Vec<Vec<u16>> {
    let mut out: Vec<Vec<u16>> = (0..k).map(|h| vec![h]).collect();
    for _ in 1..len {
        let mut next = Vec::new();
        for p in &out {
            let last = *p.last().unwrap() as i32;
            for step in [-1i32, 0, 1] {
                let h = last + step;
                if (0..i32::from(k)).contains(&h) {
                    let mut q = p.clone();
                    q.push(h as u16);
                    next.push(q);
                }
            }
        }
        out = next;
    }
    out
}

#[test]
fn every_single_circuit_placement_sinks_to_the_bottom() {
    let n = 5u32;
    let k = 3u16;
    let mut checked = 0;
    for span in 1..=3usize {
        for start in 0..n {
            for profile in profiles(span, k) {
                let bus = StaticBus {
                    start: NodeId::new(start),
                    heights: profile.iter().map(|&h| BusIndex::new(h)).collect(),
                };
                let result = ThreadedCompactor::new(n, k).run(vec![bus]);
                assert!(
                    result.reached_fixpoint,
                    "start={start} profile={profile:?} did not reach a fixpoint"
                );
                // A lone established circuit always ends flat on bus 0:
                // nothing blocks it, and both endpoints attach to PEs.
                assert!(
                    result.buses[0].heights.iter().all(|h| h.index() == 0),
                    "start={start} profile={profile:?} ended at {:?}",
                    result.buses[0].heights
                );
                // Move count equals the total height dropped.
                let drop: u64 = profile.iter().map(|&h| u64::from(h)).sum();
                assert_eq!(
                    result.moves, drop,
                    "start={start} profile={profile:?}: every unit of height is one move"
                );
                checked += 1;
            }
        }
    }
    // 5 starts * (3 + 7 + 17 valid profiles within k = 3) placements.
    assert!(checked >= 135, "only {checked} placements checked");
}

#[test]
fn every_two_circuit_stack_reaches_a_legal_fixpoint() {
    // Two flat circuits sharing their whole arc, at every legal height
    // pair: the fixpoint must always be the {0, 1} stack.
    let n = 4u32;
    let k = 4u16;
    for low in 0..k {
        for high in 0..k {
            if low == high {
                continue;
            }
            let a = StaticBus {
                start: NodeId::new(0),
                heights: vec![BusIndex::new(low); 2],
            };
            let b = StaticBus {
                start: NodeId::new(0),
                heights: vec![BusIndex::new(high); 2],
            };
            let result = ThreadedCompactor::new(n, k).run(vec![a, b]);
            assert!(result.reached_fixpoint, "pair ({low}, {high})");
            let mut finals: Vec<u16> = result
                .buses
                .iter()
                .map(|bus| bus.heights[0].index())
                .collect();
            finals.sort_unstable();
            assert_eq!(finals, vec![0, 1], "pair ({low}, {high})");
            // Relative order is preserved: the lower input stays lower.
            let a_final = result.buses[0].heights[0].index();
            let b_final = result.buses[1].heights[0].index();
            assert_eq!(a_final < b_final, low < high, "pair ({low}, {high})");
        }
    }
}
