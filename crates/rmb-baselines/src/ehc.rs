//! The Enhanced Hypercube (EHC) — the paper's reference \[4\].
//!
//! "A hypercube with duplicate pairs of links in any one dimension is
//! defined as the Enhanced Hyper Cube. An n-dimensional EHC has 2^n nodes
//! and each node has n + 1 links" (§3.1). The duplicated dimension gives
//! the rearrangeability Choi & Somani use to embed arbitrary permutations;
//! here it simply gives e-cube routing a second channel to fall back on in
//! the duplicated dimension, which is where dimension-ordered traffic
//! concentrates.

use crate::graph::{Graph, Vertex};
use crate::traits::{Network, RoutingOutcome};
use crate::wormhole::run_wormhole;
use rmb_types::MessageSpec;

/// An n-dimensional Enhanced Hypercube: a binary cube with the links of
/// one dimension duplicated (degree `n + 1`).
///
/// # Examples
///
/// ```
/// use rmb_baselines::{Ehc, Network};
///
/// let ehc = Ehc::new(16, 0);
/// // N(log N + 1) / 2 undirected links: 16 * 5 / 2.
/// assert_eq!(ehc.link_count(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct Ehc {
    n: u32,
    duplicated: u32,
    graph: Graph,
}

impl Ehc {
    /// Builds an EHC over `n` nodes with dimension `duplicated` doubled.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two (at least 2) and `duplicated`
    /// names one of its `log2 n` dimensions.
    pub fn new(n: u32, duplicated: u32) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "EHC size must be a power of two >= 2");
        let dims = n.trailing_zeros();
        assert!(duplicated < dims, "duplicated dimension out of range");
        let mut graph = Graph::new(n as usize);
        for u in 0..n as usize {
            for d in 0..dims {
                let v = u ^ (1 << d);
                graph.add_channel(u, v);
                if d == duplicated {
                    graph.add_channel(u, v);
                }
            }
        }
        Ehc {
            n,
            duplicated,
            graph,
        }
    }

    /// The duplicated dimension.
    pub const fn duplicated_dimension(&self) -> u32 {
        self.duplicated
    }

    /// The underlying channel graph.
    pub const fn graph(&self) -> &Graph {
        &self.graph
    }

    /// E-cube with bundle fallback: in the duplicated dimension both
    /// parallel channels are offered, salt-rotated.
    fn route(&self, graph: &Graph, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize> {
        let diff = at ^ dst;
        debug_assert!(diff != 0, "routing called at the destination");
        let dim = diff.trailing_zeros();
        let next = at ^ (1usize << dim);
        let bundle = graph.channels_between(at, next);
        if bundle.len() <= 1 {
            return bundle;
        }
        let start = (salt as usize) % bundle.len();
        let mut rotated = Vec::with_capacity(bundle.len());
        rotated.extend_from_slice(&bundle[start..]);
        rotated.extend_from_slice(&bundle[..start]);
        rotated
    }
}

impl Network for Ehc {
    fn label(&self) -> String {
        format!("ehc(N={}, dup=d{})", self.n, self.duplicated)
    }

    fn node_count(&self) -> u32 {
        self.n
    }

    fn link_count(&self) -> u64 {
        self.graph.undirected_links()
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let ehc = self.clone();
        let report = run_wormhole(
            &self.graph,
            &move |g: &Graph, at: Vertex, dst: Vertex, salt: u64| ehc.route(g, at, dst, salt),
            &|node| node as Vertex,
            messages,
            max_ticks,
        );
        RoutingOutcome {
            delivered: report.delivered,
            ticks: report.ticks,
            stalled: report.stalled,
            peak_busy_channels: report.peak_busy_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use rmb_types::NodeId;

    #[test]
    fn degree_is_log_n_plus_one() {
        let e = Ehc::new(16, 2);
        // Directed channels: N * (log N + 1).
        assert_eq!(e.graph().channel_count(), 16 * 5);
        assert_eq!(e.link_count(), 40);
        assert_eq!(e.duplicated_dimension(), 2);
        // The duplicated dimension has a two-channel bundle.
        assert_eq!(e.graph().channels_between(0, 4).len(), 2);
        assert_eq!(e.graph().channels_between(0, 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_dimension() {
        let _ = Ehc::new(16, 4);
    }

    #[test]
    fn routes_permutation_at_least_as_fast_as_plain_cube() {
        // Bit-complement: every message crosses every dimension, so the
        // duplicated dimension 0 relieves the first-hop bottleneck.
        let n = 32u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(!s & (n - 1)), 8))
            .collect();
        let mut cube = Hypercube::new(n);
        let mut ehc = Ehc::new(n, 0);
        let c = cube.route_messages(&msgs, 200_000);
        let e = ehc.route_messages(&msgs, 200_000);
        assert_eq!(c.delivered.len(), msgs.len());
        assert_eq!(e.delivered.len(), msgs.len());
        let cm = c.delivered.iter().map(|d| d.delivered_at).max().unwrap();
        let em = e.delivered.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(em <= cm, "EHC {em} must not lose to the plain cube {cm}");
    }
}
