//! The k-capped binary fat tree (paper Fig. 11).
//!
//! Leiserson's fat tree (the paper's reference \[6\]) doubles channel
//! capacity at every level; the paper's §3.2 trims it to the *minimum*
//! structure that still supports a k-permutation: capacity `min(2^i, k)`
//! at distance `i` above the leaves. Routing is up to the lowest common
//! ancestor and down to the destination; the up-link within a capacity
//! bundle is chosen by a salt-rotated scan, modelling the randomized
//! routing of Greenberg–Leiserson (the paper's reference \[12\]).

use crate::graph::{Graph, Vertex};
use crate::traits::{Network, RoutingOutcome};
use crate::wormhole::run_wormhole;
use rmb_types::MessageSpec;

/// A binary fat tree over `N` leaves with capacities capped at `k`.
///
/// Vertices use heap indexing: the root is 1, internal node `h` has
/// children `2h` and `2h + 1`, and leaf (PE) `i` is vertex `N + i`.
/// Vertex 0 is unused padding.
///
/// # Examples
///
/// ```
/// use rmb_baselines::{FatTree, Network};
///
/// let t = FatTree::new(16, 4);
/// assert_eq!(t.node_count(), 16);
/// // Edge above each leaf: capacity 1; above size-2 subtree: 2;
/// // above size-4/8 subtrees: 4 (capped).
/// assert_eq!(t.capacity_above_subtree(1), 1);
/// assert_eq!(t.capacity_above_subtree(8), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FatTree {
    n: u32,
    k: u16,
    layout_wires: bool,
    graph: Graph,
}

impl FatTree {
    /// Builds the fat tree over `n` leaves (power of two, at least 2) with
    /// capacities capped at `k >= 1`.
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two `n`, `n < 2`, or `k == 0`.
    pub fn new(n: u32, k: u16) -> Self {
        FatTree::build(n, k, false)
    }

    /// Builds the fat tree with H-tree layout wire latencies: the link
    /// above a subtree of `s` leaves spans `sqrt(s)` unit wires — the
    /// §3.2 remark that fat-tree "link lengths depend on the layout",
    /// made measurable.
    pub fn new_with_layout_wires(n: u32, k: u16) -> Self {
        FatTree::build(n, k, true)
    }

    fn build(n: u32, k: u16, layout_wires: bool) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "fat tree needs a power-of-two leaf count");
        assert!(k >= 1, "capacity cap must be at least 1");
        // Heap vertices 1 .. 2N (leaves N .. 2N-1), plus unused vertex 0.
        let mut graph = Graph::new(2 * n as usize);
        for h in 2..2 * n as usize {
            let parent = h / 2;
            let subtree = Self::subtree_leaves(n, h);
            let cap = subtree.min(u32::from(k));
            let latency = if layout_wires {
                (f64::from(subtree).sqrt().round() as u32).max(1)
            } else {
                1
            };
            for _ in 0..cap {
                graph.add_link_with_latency(h, parent, latency);
            }
        }
        FatTree {
            n,
            k,
            layout_wires,
            graph,
        }
    }

    /// Number of leaves below heap vertex `h`.
    fn subtree_leaves(n: u32, h: usize) -> u32 {
        // Depth of h: floor(log2 h); leaves at depth log2 n.
        let depth = u32::BITS - 1 - (h as u32).leading_zeros();
        let leaf_depth = n.trailing_zeros();
        1 << (leaf_depth - depth)
    }

    /// The capacity of the channel bundle above a subtree of the given
    /// leaf count: `min(size, k)`.
    pub fn capacity_above_subtree(&self, subtree_leaves: u32) -> u32 {
        subtree_leaves.min(u32::from(self.k))
    }

    /// The capacity cap `k`.
    pub const fn cap(&self) -> u16 {
        self.k
    }

    /// The underlying channel graph.
    pub const fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Heap vertex of PE `i`.
    pub fn leaf(&self, i: u32) -> Vertex {
        (self.n + i) as Vertex
    }

    fn depth(h: Vertex) -> u32 {
        u32::BITS - 1 - (h as u32).leading_zeros()
    }

    /// `true` if leaf vertex `leaf` lies in the subtree rooted at `h`.
    fn in_subtree(h: Vertex, leaf: Vertex) -> bool {
        let gap = Self::depth(leaf) - Self::depth(h);
        leaf >> gap == h
    }

    /// Up toward the LCA, then down toward the destination leaf. Up-links
    /// are scanned starting at a salt-dependent offset (randomized
    /// routing); down-links likewise within the bundle to the one child on
    /// the path.
    fn route(&self, graph: &Graph, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize> {
        let bundle = if Self::in_subtree(at, dst) {
            // Go down toward the child whose subtree holds dst.
            let gap = Self::depth(dst) - Self::depth(at);
            debug_assert!(gap > 0, "routing called at the destination");
            let child = dst >> (gap - 1);
            graph.channels_between(at, child)
        } else {
            graph.channels_between(at, at / 2)
        };
        // Rotate the bundle by the salt so parallel channels share load.
        let m = bundle.len();
        debug_assert!(m > 0);
        let start = (salt as usize) % m;
        let mut rotated = Vec::with_capacity(m);
        rotated.extend_from_slice(&bundle[start..]);
        rotated.extend_from_slice(&bundle[..start]);
        rotated
    }
}

impl Network for FatTree {
    fn label(&self) -> String {
        if self.layout_wires {
            format!("fat-tree(N={}, k={}, layout wires)", self.n, self.k)
        } else {
            format!("fat-tree(N={}, k={})", self.n, self.k)
        }
    }

    fn node_count(&self) -> u32 {
        self.n
    }

    fn link_count(&self) -> u64 {
        self.graph.undirected_links()
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let tree = self.clone();
        let leaf_base = self.n;
        let report = run_wormhole(
            &self.graph,
            &move |g: &Graph, at: Vertex, dst: Vertex, salt: u64| tree.route(g, at, dst, salt),
            &|node| (leaf_base + node) as Vertex,
            messages,
            max_ticks,
        );
        RoutingOutcome {
            delivered: report.delivered,
            ticks: report.ticks,
            stalled: report.stalled,
            peak_busy_channels: report.peak_busy_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    #[test]
    fn capacities_follow_min_rule() {
        let t = FatTree::new(16, 4);
        // Bundle above leaf h=16..31: subtree 1 -> capacity 1.
        assert_eq!(t.graph().channels_between(16, 8).len(), 1);
        // h=8 (subtree 2) -> parent 4: capacity 2.
        assert_eq!(t.graph().channels_between(8, 4).len(), 2);
        // h=4 (subtree 4) -> 2: capacity 4.
        assert_eq!(t.graph().channels_between(4, 2).len(), 4);
        // h=2 (subtree 8) -> root: capped at k=4.
        assert_eq!(t.graph().channels_between(2, 1).len(), 4);
    }

    #[test]
    fn link_count_matches_formula() {
        // Sum over levels of per-edge capacities (undirected).
        let t = FatTree::new(16, 4);
        // 16 leaf edges*1 + 8 edges*2 + 4 edges*4 + 2 edges*4 = 16+16+16+8.
        assert_eq!(t.link_count(), 56);
    }

    #[test]
    fn single_message_up_down_distance() {
        let mut t = FatTree::new(16, 4);
        // Leaves 0 and 15 meet at the root: 4 up + 4 down = 8 hops.
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(15), 0)];
        let out = t.route_messages(&msgs, 1_000);
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].circuit_at, 8);
        // Siblings meet one level up: 2 hops.
        let msgs = vec![MessageSpec::new(NodeId::new(4), NodeId::new(5), 0)];
        let out = t.route_messages(&msgs, 1_000);
        assert_eq!(out.delivered[0].circuit_at, 2);
    }

    #[test]
    fn k_permutation_routes_through_capped_tree() {
        // A full reversal permutation on 16 leaves with k=4: heavy root
        // traffic, but randomized up-links spread it over the bundle.
        let mut t = FatTree::new(16, 4);
        let msgs: Vec<MessageSpec> = (0..16u32)
            .filter(|&s| 15 - s != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(15 - s), 4))
            .collect();
        let out = t.route_messages(&msgs, 100_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
        assert!(!out.stalled);
    }

    #[test]
    fn local_traffic_stays_cheap_even_with_k1() {
        let mut t = FatTree::new(8, 1);
        let msgs: Vec<MessageSpec> = (0..4u32)
            .map(|i| MessageSpec::new(NodeId::new(2 * i), NodeId::new(2 * i + 1), 8))
            .collect();
        let out = t.route_messages(&msgs, 10_000);
        assert_eq!(out.delivered.len(), 4);
        // Sibling pairs never contend: all circuits are 2 hops.
        assert!(out.delivered.iter().all(|d| d.setup_latency() <= 4));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_bad_sizes() {
        let _ = FatTree::new(10, 2);
    }

    #[test]
    fn layout_wires_slow_the_top_of_the_tree() {
        let mut flat = FatTree::new(16, 4);
        let mut laid_out = FatTree::new_with_layout_wires(16, 4);
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(15), 0)];
        let f = flat.route_messages(&msgs, 1_000);
        let l = laid_out.route_messages(&msgs, 1_000);
        assert!(
            l.delivered[0].circuit_at > f.delivered[0].circuit_at,
            "H-tree wires must slow the root crossing: {} vs {}",
            l.delivered[0].circuit_at,
            f.delivered[0].circuit_at
        );
        assert!(laid_out.graph().total_wire_length() > flat.graph().total_wire_length());
    }
}
