//! Directed channel graphs shared by the baseline topologies.


/// A vertex in a channel graph (a switch or a terminal).
pub type Vertex = usize;

/// One directed channel between two vertices. Parallel channels (fat-tree
/// capacity bundles) are separate entries with the same endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Upstream vertex.
    pub from: Vertex,
    /// Downstream vertex.
    pub to: Vertex,
    /// Ticks a flit needs to traverse this channel — the wire-length
    /// model of §3.2 ("costs also depend on the length of the wire").
    /// Unit-length wires (the RMB's constant) have latency 1.
    pub latency: u32,
    /// Physical-link group: channels sharing a group are virtual channels
    /// multiplexed over one physical wire, which carries at most one flit
    /// per tick. Defaults to the channel's own id (a dedicated wire).
    pub group: usize,
}

/// A directed multigraph with per-vertex adjacency, the substrate every
/// baseline topology builds on.
///
/// # Examples
///
/// ```
/// use rmb_baselines::Graph;
///
/// let mut g = Graph::new(3);
/// let c = g.add_channel(0, 1);
/// g.add_channel(1, 2);
/// assert_eq!(g.channel(c).to, 1);
/// assert_eq!(g.out_channels(0), &[c]);
/// assert_eq!(g.channel_count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    channels: Vec<Channel>,
    out: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates a graph with `vertices` vertices and no channels.
    pub fn new(vertices: usize) -> Self {
        Graph {
            channels: Vec::new(),
            out: vec![Vec::new(); vertices],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Adds a unit-latency directed channel and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_channel(&mut self, from: Vertex, to: Vertex) -> usize {
        self.add_channel_with_latency(from, to, 1)
    }

    /// Adds a directed channel with an explicit wire latency in ticks.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `latency == 0`.
    pub fn add_channel_with_latency(&mut self, from: Vertex, to: Vertex, latency: u32) -> usize {
        let id = self.channels.len();
        self.add_channel_full(from, to, latency, id)
    }

    /// Adds a directed channel as a *virtual channel* of physical group
    /// `group`: all channels with the same group share one wire (one flit
    /// per tick across the whole group).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `latency == 0`.
    pub fn add_channel_full(
        &mut self,
        from: Vertex,
        to: Vertex,
        latency: u32,
        group: usize,
    ) -> usize {
        assert!(from < self.out.len() && to < self.out.len(), "endpoint out of range");
        assert!(latency >= 1, "a wire needs at least one tick");
        let id = self.channels.len();
        self.channels.push(Channel {
            from,
            to,
            latency,
            group,
        });
        self.out[from].push(id);
        id
    }

    /// Number of distinct physical-link groups (physical wires).
    pub fn physical_link_count(&self) -> u64 {
        let mut groups: Vec<usize> = self.channels.iter().map(|c| c.group).collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len() as u64
    }

    /// Adds a bidirectional link as two directed channels, returning their
    /// ids as `(forward, backward)`.
    pub fn add_link(&mut self, a: Vertex, b: Vertex) -> (usize, usize) {
        self.add_link_with_latency(a, b, 1)
    }

    /// Adds a bidirectional link with an explicit wire latency.
    pub fn add_link_with_latency(&mut self, a: Vertex, b: Vertex, latency: u32) -> (usize, usize) {
        (
            self.add_channel_with_latency(a, b, latency),
            self.add_channel_with_latency(b, a, latency),
        )
    }

    /// Total wire length of all undirected links, in unit wires: the §3.2
    /// "total wire length" metric.
    pub fn total_wire_length(&self) -> u64 {
        self.channels.iter().map(|c| u64::from(c.latency)).sum::<u64>() / 2
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel(&self, id: usize) -> Channel {
        self.channels[id]
    }

    /// All channel ids leaving `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_channels(&self, v: Vertex) -> &[usize] {
        &self.out[v]
    }

    /// All channel ids from `from` to `to` (parallel bundle).
    pub fn channels_between(&self, from: Vertex, to: Vertex) -> Vec<usize> {
        self.out[from]
            .iter()
            .copied()
            .filter(|&c| self.channels[c].to == to)
            .collect()
    }

    /// Number of undirected links (assumes every channel has a reverse
    /// twin, which holds for all topologies in this crate).
    pub fn undirected_links(&self) -> u64 {
        debug_assert!(self.channels.len().is_multiple_of(2));
        self.channels.len() as u64 / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_link_creates_twins() {
        let mut g = Graph::new(2);
        let (f, b) = g.add_link(0, 1);
        assert_eq!(
            g.channel(f),
            Channel { from: 0, to: 1, latency: 1, group: 0 }
        );
        assert_eq!(
            g.channel(b),
            Channel { from: 1, to: 0, latency: 1, group: 1 }
        );
        assert_eq!(g.undirected_links(), 1);
        assert_eq!(g.physical_link_count(), 2);
    }

    #[test]
    fn virtual_channels_share_a_group() {
        let mut g = Graph::new(2);
        let a = g.add_channel_full(0, 1, 1, 7);
        let b = g.add_channel_full(0, 1, 1, 7);
        assert_eq!(g.channel(a).group, 7);
        assert_eq!(g.channel(b).group, 7);
        assert_eq!(g.physical_link_count(), 1);
    }

    #[test]
    fn latency_and_wire_length() {
        let mut g = Graph::new(3);
        g.add_link_with_latency(0, 1, 4);
        g.add_link(1, 2);
        assert_eq!(g.total_wire_length(), 5);
        assert_eq!(g.channel(0).latency, 4);
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_latency_rejected() {
        let mut g = Graph::new(2);
        g.add_channel_with_latency(0, 1, 0);
    }

    #[test]
    fn parallel_channels_are_distinct() {
        let mut g = Graph::new(2);
        g.add_link(0, 1);
        g.add_link(0, 1);
        assert_eq!(g.channels_between(0, 1).len(), 2);
        assert_eq!(g.channels_between(1, 0).len(), 2);
        assert_eq!(g.channels_between(1, 1).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_channel_validates_endpoints() {
        let mut g = Graph::new(1);
        g.add_channel(0, 1);
    }
}
