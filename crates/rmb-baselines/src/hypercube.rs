//! The binary hypercube with e-cube (dimension-ordered) routing.
//!
//! The paper's §3.1 describes the n-cube (its reference \[2\], the Cosmic
//! Cube) and its permutation-capable derivatives EHC and GFC. The
//! simulated comparator here is the plain binary cube with deterministic
//! e-cube routing — correct the lowest differing address bit first —
//! which is deadlock-free under wormhole switching.

use crate::graph::{Graph, Vertex};
use crate::traits::{Network, RoutingOutcome};
use crate::wormhole::run_wormhole;
use rmb_types::MessageSpec;

/// An `n`-dimensional binary hypercube of `N = 2^n` nodes.
///
/// # Examples
///
/// ```
/// use rmb_baselines::{Hypercube, Network};
///
/// let cube = Hypercube::new(32);
/// assert_eq!(cube.dimensions(), 5);
/// assert_eq!(cube.link_count(), 32 * 5 / 2); // N log N / 2 undirected
/// ```
#[derive(Debug, Clone)]
pub struct Hypercube {
    n: u32,
    dims: u32,
    layout_wires: bool,
    graph: Graph,
}

impl Hypercube {
    /// Builds a hypercube over `n` nodes with unit-length wires.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: u32) -> Self {
        Hypercube::build(n, false)
    }

    /// Builds a hypercube whose wire latencies follow a 2-D VLSI layout:
    /// dimension `d` links span `2^(d/2)` unit wires. This is the §3.2
    /// observation that hypercube "link lengths vary in different
    /// dimensions in any layout", made measurable.
    pub fn new_with_layout_wires(n: u32) -> Self {
        Hypercube::build(n, true)
    }

    fn build(n: u32, layout_wires: bool) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "hypercube size must be a power of two >= 2");
        let dims = n.trailing_zeros();
        let mut graph = Graph::new(n as usize);
        for u in 0..n as usize {
            for d in 0..dims {
                let v = u ^ (1 << d);
                let latency = if layout_wires { 1 << (d / 2) } else { 1 };
                // Add each directed channel once (the twin appears when we
                // visit `v`).
                graph.add_channel_with_latency(u, v, latency);
            }
        }
        Hypercube {
            n,
            dims,
            layout_wires,
            graph,
        }
    }

    /// Address width `log2 N`.
    pub const fn dimensions(&self) -> u32 {
        self.dims
    }

    /// The underlying channel graph.
    pub const fn graph(&self) -> &Graph {
        &self.graph
    }

    /// E-cube: resolve the lowest differing dimension first. Returns a
    /// single candidate, which makes the routing deterministic and
    /// deadlock-free.
    fn route(graph: &Graph, at: Vertex, dst: Vertex, _salt: u64) -> Vec<usize> {
        let diff = at ^ dst;
        debug_assert!(diff != 0, "routing called at the destination");
        let dim = diff.trailing_zeros();
        let next = at ^ (1 << dim);
        graph.channels_between(at, next)
    }
}

impl Network for Hypercube {
    fn label(&self) -> String {
        if self.layout_wires {
            format!("hypercube(N={}, layout wires)", self.n)
        } else {
            format!("hypercube(N={})", self.n)
        }
    }

    fn node_count(&self) -> u32 {
        self.n
    }

    fn link_count(&self) -> u64 {
        self.graph.undirected_links()
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let report = run_wormhole(
            &self.graph,
            &Hypercube::route,
            &|node| node as Vertex,
            messages,
            max_ticks,
        );
        RoutingOutcome {
            delivered: report.delivered,
            ticks: report.ticks,
            stalled: report.stalled,
            peak_busy_channels: report.peak_busy_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    #[test]
    fn structure_counts() {
        let c = Hypercube::new(16);
        assert_eq!(c.dimensions(), 4);
        assert_eq!(c.graph().channel_count(), 16 * 4); // directed
        assert_eq!(c.link_count(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Hypercube::new(12);
    }

    #[test]
    fn ecube_delivers_single_message_in_hamming_distance_steps() {
        let mut c = Hypercube::new(16);
        // 0 -> 15: Hamming distance 4.
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(15), 0)];
        let out = c.route_messages(&msgs, 1_000);
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].circuit_at, 4);
    }

    #[test]
    fn ecube_routes_full_permutation() {
        let n = 32;
        let mut c = Hypercube::new(n);
        // Bit-complement permutation: the classic e-cube stress.
        let msgs: Vec<MessageSpec> = (0..n)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(!s & (n - 1)), 8))
            .collect();
        let out = c.route_messages(&msgs, 100_000);
        assert_eq!(out.delivered.len(), n as usize, "stalled={}", out.stalled);
        assert!(!out.stalled);
    }

    #[test]
    fn layout_wires_slow_high_dimensions() {
        let mut flat = Hypercube::new(16);
        let mut laid_out = Hypercube::new_with_layout_wires(16);
        // 0 -> 15 crosses dimensions 0..4; with layout wires the higher
        // dimensions cost 1,1,2,2 ticks instead of 1 each.
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(15), 0)];
        let f = flat.route_messages(&msgs, 1_000);
        let l = laid_out.route_messages(&msgs, 1_000);
        assert_eq!(f.delivered[0].circuit_at, 4);
        assert_eq!(l.delivered[0].circuit_at, 6);
        assert!(laid_out.graph().total_wire_length() > flat.graph().total_wire_length());
    }

    #[test]
    fn random_permutation_has_no_deadlock() {
        let n = 64u32;
        let mut c = Hypercube::new(n);
        // Deterministic scramble: multiply by odd constant mod 64.
        let msgs: Vec<MessageSpec> = (0..n)
            .filter(|&s| (s * 37 + 11) % n != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new((s * 37 + 11) % n), 4))
            .collect();
        let out = c.route_messages(&msgs, 200_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
    }
}
