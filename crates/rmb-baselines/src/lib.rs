//! Comparator interconnection networks for the RMB reproduction.
//!
//! §3 of the paper compares the RMB against the hypercube family, the
//! fat-tree and the 2-D mesh. This crate implements those comparators from
//! scratch so that the permutation-routing experiments (EXPERIMENTS.md,
//! experiment E2) can *measure* the comparison rather than only reproduce
//! the closed-form cost analysis:
//!
//! * [`Hypercube`] — binary n-cube with deterministic e-cube
//!   (dimension-ordered) routing.
//! * [`Ehc`] — the Enhanced Hypercube (one dimension's links duplicated,
//!   degree `log N + 1`).
//! * [`Mesh2D`] — square 2-D mesh with XY routing.
//! * [`KAryNCube`] — the torus (§4's "k-ary n cube"), dimension-ordered
//!   minimal routing with two dateline virtual channels per wire.
//! * [`FatTree`] — binary fat tree with channel capacities capped at `k`
//!   (the paper's Fig. 11 structure), randomized up-link selection in the
//!   style of Greenberg–Leiserson.
//!
//! All three run on a shared flit-level [`wormhole`] engine: the header
//! flit acquires channels one hop per tick, body flits pipeline behind
//! through single-flit channel buffers, and the tail releases channels as
//! it passes. The engine is deliberately *not* the RMB protocol — it is
//! the standard wormhole switching of the era (Dally, the paper's
//! reference \[10\]) that these topologies actually used.
//!
//! # Examples
//!
//! ```
//! use rmb_baselines::{Hypercube, Network};
//! use rmb_types::{MessageSpec, NodeId};
//!
//! let mut cube = Hypercube::new(16);
//! let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(9), 8)];
//! let outcome = cube.route_messages(&msgs, 10_000);
//! assert_eq!(outcome.delivered.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ehc;
mod fattree;
mod graph;
mod hypercube;
mod mesh;
mod torus;
mod traits;
pub mod wormhole;

pub use ehc::Ehc;
pub use fattree::FatTree;
pub use graph::{Channel, Graph, Vertex};
pub use hypercube::Hypercube;
pub use mesh::Mesh2D;
pub use torus::KAryNCube;
pub use traits::{Network, RoutingOutcome};
pub use wormhole::{RoutingFn, WormholeEngine, WormholeReport};
