//! The 2-D mesh with XY (dimension-ordered) routing.
//!
//! §3.1 calls the mesh "another attractive structure": degree-4 nodes, any
//! size, straightforward layout and simple routing. XY routing — correct
//! the column first, then the row — is deadlock-free under wormhole
//! switching.

use crate::graph::{Graph, Vertex};
use crate::traits::{Network, RoutingOutcome};
use crate::wormhole::run_wormhole;
use rmb_types::MessageSpec;

/// A `cols × rows` 2-D mesh (no wraparound links).
///
/// Node `i` sits at `(x, y) = (i % cols, i / cols)`.
///
/// # Examples
///
/// ```
/// use rmb_baselines::{Mesh2D, Network};
///
/// let mesh = Mesh2D::square(16); // 4x4
/// assert_eq!(mesh.node_count(), 16);
/// assert_eq!(mesh.link_count(), 24); // 2 * 4 * 3
/// ```
#[derive(Debug, Clone)]
pub struct Mesh2D {
    cols: u32,
    rows: u32,
    graph: Graph,
}

impl Mesh2D {
    /// Builds a `cols × rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh has fewer than two
    /// nodes.
    pub fn new(cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        assert!(cols * rows >= 2, "mesh needs at least two nodes");
        let mut graph = Graph::new((cols * rows) as usize);
        for y in 0..rows {
            for x in 0..cols {
                let v = (y * cols + x) as usize;
                if x + 1 < cols {
                    graph.add_link(v, v + 1);
                }
                if y + 1 < rows {
                    graph.add_link(v, v + cols as usize);
                }
            }
        }
        Mesh2D { cols, rows, graph }
    }

    /// Builds the (near-)square mesh over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a perfect square (the paper's layout argument
    /// assumes `√N × √N`).
    pub fn square(n: u32) -> Self {
        let side = (n as f64).sqrt().round() as u32;
        assert_eq!(side * side, n, "square mesh needs a perfect-square node count");
        Mesh2D::new(side, side)
    }

    /// Mesh width.
    pub const fn cols(&self) -> u32 {
        self.cols
    }

    /// Mesh height.
    pub const fn rows(&self) -> u32 {
        self.rows
    }

    /// The underlying channel graph.
    pub const fn graph(&self) -> &Graph {
        &self.graph
    }

    fn coords(&self, v: Vertex) -> (u32, u32) {
        (v as u32 % self.cols, v as u32 / self.cols)
    }

    /// XY routing: move along X until the column matches, then along Y.
    fn route(&self, graph: &Graph, at: Vertex, dst: Vertex, _salt: u64) -> Vec<usize> {
        let (x, y) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        let next = if x < dx {
            at + 1
        } else if x > dx {
            at - 1
        } else if y < dy {
            at + self.cols as usize
        } else {
            debug_assert!(y > dy, "routing called at the destination");
            at - self.cols as usize
        };
        graph.channels_between(at, next)
    }
}

impl Network for Mesh2D {
    fn label(&self) -> String {
        format!("mesh({}x{})", self.cols, self.rows)
    }

    fn node_count(&self) -> u32 {
        self.cols * self.rows
    }

    fn link_count(&self) -> u64 {
        self.graph.undirected_links()
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let mesh = self.clone();
        let report = run_wormhole(
            &self.graph,
            &move |g: &Graph, at: Vertex, dst: Vertex, salt: u64| mesh.route(g, at, dst, salt),
            &|node| node as Vertex,
            messages,
            max_ticks,
        );
        RoutingOutcome {
            delivered: report.delivered,
            ticks: report.ticks,
            stalled: report.stalled,
            peak_busy_channels: report.peak_busy_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    #[test]
    fn structure_counts() {
        let m = Mesh2D::new(4, 3);
        assert_eq!(m.node_count(), 12);
        // Links: 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8.
        assert_eq!(m.link_count(), 17);
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn square_rejects_non_squares() {
        let _ = Mesh2D::square(12);
    }

    #[test]
    fn xy_route_takes_manhattan_distance() {
        let mut m = Mesh2D::square(16);
        // (0,0) -> (3,2): 3 + 2 = 5 hops.
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(11), 0)];
        let out = m.route_messages(&msgs, 1_000);
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].circuit_at, 5);
    }

    #[test]
    fn transpose_permutation_routes_without_deadlock() {
        // Transpose is the worst case for XY routing (all traffic turns at
        // the diagonal) but remains deadlock-free.
        let mut m = Mesh2D::square(16);
        let msgs: Vec<MessageSpec> = (0..16u32)
            .filter(|&s| (s % 4) * 4 + s / 4 != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new((s % 4) * 4 + s / 4), 6))
            .collect();
        let out = m.route_messages(&msgs, 100_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
        assert!(!out.stalled);
    }

    #[test]
    fn opposite_corner_storm_drains() {
        let mut m = Mesh2D::square(25);
        let msgs: Vec<MessageSpec> = (0..25u32)
            .filter(|&s| 24 - s != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(24 - s), 4))
            .collect();
        let out = m.route_messages(&msgs, 200_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
    }
}
