//! The k-ary n-cube (torus) — the "other universal interconnection
//! network" the paper's §4 names for future comparison.
//!
//! `N = r^d` nodes arranged as `d` nested rings of radix `r`, with
//! bidirectional links. Routing is dimension-ordered and minimal (the
//! shorter ring direction per dimension). The wrap-around rings would
//! deadlock plain wormhole routing, so every directed ring carries **two
//! virtual channels** multiplexed over one physical wire (Dally's
//! dateline scheme): a packet rides VC0 while it still has the wrap edge
//! ahead of it in the current dimension, and VC1 otherwise, which breaks
//! the cyclic channel dependency.

use crate::graph::{Graph, Vertex};
use crate::traits::{Network, RoutingOutcome};
use crate::wormhole::run_wormhole;
use rmb_types::MessageSpec;

/// A `radix`-ary `dims`-cube with two virtual channels per directed link.
///
/// # Examples
///
/// ```
/// use rmb_baselines::{KAryNCube, Network};
///
/// let torus = KAryNCube::new(4, 2); // 16 nodes, 4x4 torus
/// assert_eq!(torus.node_count(), 16);
/// // Physical wires: N * d * 2 directions = 64; VCs double the channel
/// // count but not the wire count.
/// assert_eq!(torus.physical_links(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct KAryNCube {
    radix: u32,
    dims: u32,
    graph: Graph,
    /// `vc_channel[dim][dir][node][vc]` — channel id leaving `node` along
    /// `dim` in direction `dir` (0 = +, 1 = -) on virtual channel `vc`.
    vc_channel: Vec<Vec<Vec<[usize; 2]>>>,
}

impl KAryNCube {
    /// Builds an `r`-ary `d`-cube.
    ///
    /// # Panics
    ///
    /// Panics if `radix < 3` (radix 2 degenerates to a hypercube and
    /// needs no wrap links; use [`crate::Hypercube`]) or `dims == 0`.
    pub fn new(radix: u32, dims: u32) -> Self {
        assert!(radix >= 3, "use Hypercube for radix-2 structures");
        assert!(dims >= 1, "need at least one dimension");
        let n = radix.pow(dims) as usize;
        let mut graph = Graph::new(n);
        let mut vc_channel =
            vec![vec![vec![[usize::MAX; 2]; n]; 2]; dims as usize];
        let mut next_group = 0usize;
        // `dim`/`node` double as coordinates and table indices; plain
        // ranges read best here.
        #[allow(clippy::needless_range_loop)]
        for dim in 0..dims as usize {
            let stride = radix.pow(dim as u32) as usize;
            for node in 0..n {
                let coord = (node / stride) % radix as usize;
                // + direction neighbour.
                let plus = node - coord * stride + ((coord + 1) % radix as usize) * stride;
                // - direction neighbour.
                let minus = node - coord * stride
                    + ((coord + radix as usize - 1) % radix as usize) * stride;
                for (dir, to) in [(0usize, plus), (1usize, minus)] {
                    let group = next_group;
                    next_group += 1;
                    let vc0 = graph.add_channel_full(node, to, 1, group);
                    let vc1 = graph.add_channel_full(node, to, 1, group);
                    vc_channel[dim][dir][node] = [vc0, vc1];
                }
            }
        }
        KAryNCube {
            radix,
            dims,
            graph,
            vc_channel,
        }
    }

    /// Ring radix `r`.
    pub const fn radix(&self) -> u32 {
        self.radix
    }

    /// Dimension count `d`.
    pub const fn dims(&self) -> u32 {
        self.dims
    }

    /// The underlying channel graph (two VCs per physical wire).
    pub const fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of physical wires: `N · d · 2`.
    pub fn physical_links(&self) -> u64 {
        self.graph.physical_link_count()
    }

    fn coord(&self, v: Vertex, dim: usize) -> usize {
        let stride = self.radix.pow(dim as u32) as usize;
        (v / stride) % self.radix as usize
    }

    /// Dimension-ordered minimal routing with dateline VC selection, as a
    /// [`crate::wormhole::RoutingFn`]-shaped oracle. Public so drivers
    /// that own a [`crate::wormhole::WormholeEngine`] directly (the
    /// open-loop serving adapter) can reuse the exact routing that
    /// [`Network::route_messages`] uses.
    pub fn candidates(&self, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize> {
        self.route(at, dst, salt)
    }

    /// Dimension-ordered minimal routing with dateline VC selection.
    fn route(&self, at: Vertex, dst: Vertex, _salt: u64) -> Vec<usize> {
        let r = self.radix as usize;
        for dim in 0..self.dims as usize {
            let a = self.coord(at, dim);
            let b = self.coord(dst, dim);
            if a == b {
                continue;
            }
            let forward = (b + r - a) % r;
            let backward = (a + r - b) % r;
            // Prefer the shorter direction; ties go forward.
            let dir = if forward <= backward { 0 } else { 1 };
            // Dateline: while the wrap edge is still ahead on the chosen
            // ring direction, ride VC0; afterwards (or when no wrap is
            // needed) ride VC1. Going + the wrap edge is r-1 -> 0, so it
            // lies ahead iff a > b; going - it is 0 -> r-1, ahead iff
            // a < b.
            let wrap_ahead = if dir == 0 { a > b } else { a < b };
            let vc = usize::from(!wrap_ahead);
            return vec![self.vc_channel[dim][dir][at][vc]];
        }
        unreachable!("routing called at the destination");
    }
}

impl Network for KAryNCube {
    fn label(&self) -> String {
        format!("torus({}-ary {}-cube)", self.radix, self.dims)
    }

    fn node_count(&self) -> u32 {
        self.radix.pow(self.dims)
    }

    fn link_count(&self) -> u64 {
        // Undirected physical links: N * d.
        self.physical_links() / 2
    }

    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome {
        let torus = self.clone();
        let report = run_wormhole(
            &self.graph,
            &move |_g: &Graph, at: Vertex, dst: Vertex, salt: u64| torus.route(at, dst, salt),
            &|node| node as Vertex,
            messages,
            max_ticks,
        );
        RoutingOutcome {
            delivered: report.delivered,
            ticks: report.ticks,
            stalled: report.stalled,
            peak_busy_channels: report.peak_busy_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    #[test]
    fn structure_counts() {
        let t = KAryNCube::new(4, 2);
        assert_eq!(t.node_count(), 16);
        // Channels: N * d * 2 dirs * 2 VCs = 128; wires: 64.
        assert_eq!(t.graph().channel_count(), 128);
        assert_eq!(t.physical_links(), 64);
        assert_eq!(t.link_count(), 32);
    }

    #[test]
    #[should_panic(expected = "radix-2")]
    fn rejects_radix_two() {
        let _ = KAryNCube::new(2, 3);
    }

    #[test]
    fn minimal_routing_distance() {
        let mut t = KAryNCube::new(5, 2);
        // (0,0) -> (2,2): 2 + 2 hops.
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(12), 0)];
        let out = t.route_messages(&msgs, 1_000);
        assert_eq!(out.delivered[0].circuit_at, 4);
        // (0,0) -> (4,0): one hop backward around the wrap.
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(4), 0)];
        let out = t.route_messages(&msgs, 1_000);
        assert_eq!(out.delivered[0].circuit_at, 1);
    }

    #[test]
    fn wrap_heavy_permutation_does_not_deadlock() {
        // Rotation by r-1 in each ring: every message uses a wrap edge.
        let r = 4u32;
        let t_nodes = r * r;
        let mut t = KAryNCube::new(r, 2);
        let msgs: Vec<MessageSpec> = (0..t_nodes)
            .map(|s| {
                let x = s % r;
                let y = s / r;
                let dst = ((y + r - 1) % r) * r + (x + r - 1) % r;
                MessageSpec::new(NodeId::new(s), NodeId::new(dst), 8)
            })
            .filter(|m| m.source != m.destination)
            .collect();
        let out = t.route_messages(&msgs, 200_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
        assert!(!out.stalled);
    }

    #[test]
    fn full_random_permutation_routes() {
        let mut t = KAryNCube::new(3, 3); // 27 nodes
        let n = 27u32;
        let msgs: Vec<MessageSpec> = (0..n)
            .filter(|&s| (s * 16 + 5) % n != s)
            .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new((s * 16 + 5) % n), 6))
            .collect();
        let out = t.route_messages(&msgs, 400_000);
        assert_eq!(out.delivered.len(), msgs.len(), "stalled={}", out.stalled);
    }

    #[test]
    fn vcs_share_one_wire() {
        // Two worms forced onto the same physical +x wire: even on
        // different VCs they serialise flit by flit.
        let mut t = KAryNCube::new(4, 1); // a single 4-ring
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(1), 16),
            MessageSpec::new(NodeId::new(3), NodeId::new(1), 16),
        ];
        let out = t.route_messages(&msgs, 100_000);
        assert_eq!(out.delivered.len(), 2);
        // Wire 0->1 carries both streams: total 36 flits over one wire
        // cannot finish before tick ~36.
        assert!(out.makespan() >= 34, "makespan {}", out.makespan());
    }
}
