//! The common interface every comparator network implements.

use rmb_types::{DeliveredMessage, MessageSpec};

/// Outcome of routing a message batch through a network.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Completed messages.
    pub delivered: Vec<DeliveredMessage>,
    /// Ticks simulated.
    pub ticks: u64,
    /// `true` if the run ended in a stall (blocked worms, no progress).
    pub stalled: bool,
    /// Peak number of simultaneously busy channels (or bus segments).
    pub peak_busy_channels: usize,
}

impl RoutingOutcome {
    /// Tick of the last delivery (0 when nothing was delivered).
    pub fn makespan(&self) -> u64 {
        self.delivered
            .iter()
            .map(|d| d.delivered_at)
            .max()
            .unwrap_or(0)
    }

    /// Mean end-to-end latency over delivered messages.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        self.delivered.iter().map(|d| d.latency() as f64).sum::<f64>()
            / self.delivered.len() as f64
    }
}

/// A network that can route message batches — implemented by the baseline
/// topologies here and by the RMB adapter in `rmb-analysis`.
pub trait Network {
    /// Human-readable name for report tables.
    fn label(&self) -> String;

    /// Number of processing nodes the network connects.
    fn node_count(&self) -> u32;

    /// Number of undirected physical links (for cost cross-checks).
    fn link_count(&self) -> u64;

    /// Routes a batch of messages, running to completion, stall or
    /// `max_ticks`.
    fn route_messages(&mut self, messages: &[MessageSpec], max_ticks: u64) -> RoutingOutcome;
}
