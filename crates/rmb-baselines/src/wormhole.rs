//! A flit-level wormhole-switching engine over a channel graph.
//!
//! This models the classic wormhole routing of Dally (the paper's
//! reference \[10\]): the header flit reserves channels one hop per tick;
//! body flits pipeline behind it through single-flit channel buffers; the
//! tail flit releases each channel as it leaves it. A blocked header holds
//! its acquired channels in place — deadlock freedom is the routing
//! function's responsibility (e-cube, XY and fat-tree up/down all provide
//! acyclic channel dependencies).
//!
//! The engine comes in two shapes: [`WormholeEngine`] is incremental
//! (submit messages at any time, advance one tick at a time, poll
//! completions through a cursor) so open-loop serving drivers can stream
//! load through it; [`run_wormhole`] is the batch wrapper that feeds a
//! fixed message list and runs to completion, preserving the original
//! closed-loop semantics bit for bit.

use crate::graph::{Graph, Vertex};
use rmb_types::{DeliveredMessage, MessageSpec, RequestId};
use std::collections::HashMap;

/// Routing oracle: which channels may the header take next?
pub trait RoutingFn {
    /// Ordered candidate channels from `at` toward `dst`. The engine takes
    /// the first free one. `salt` lets adaptive routers spread load
    /// deterministically (it varies per worm and per retry tick).
    fn candidates(&self, graph: &Graph, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize>;
}

impl<F> RoutingFn for F
where
    F: Fn(&Graph, Vertex, Vertex, u64) -> Vec<usize>,
{
    fn candidates(&self, graph: &Graph, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize> {
        self(graph, at, dst, salt)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlitSlot {
    /// Flit `seq` sits in the buffer of `path[idx]`, having entered the
    /// channel at tick `entered`. It may leave once it has dwelt the
    /// channel's wire latency.
    InChannel { seq: u32, idx: usize, entered: u64 },
}

#[derive(Debug, Clone)]
struct Worm {
    request: RequestId,
    spec: MessageSpec,
    dst: Vertex,
    /// Channels acquired so far, source side first.
    path: Vec<usize>,
    /// In-flight flits, header first (ordered by decreasing path index).
    flits: Vec<FlitSlot>,
    /// Next flit sequence number to inject at the source (0 = header).
    next_inject: u32,
    /// Total flits: header + data + tail.
    total: u32,
    /// Header has been consumed at the destination.
    arrived_at: Option<u64>,
    /// All flits consumed; worm is complete.
    done_at: Option<u64>,
    /// Index of the last channel the tail has not yet released.
    released_up_to: usize,
}

impl Worm {
    fn header_vertex(&self, graph: &Graph) -> Vertex {
        match self.flits.first() {
            Some(FlitSlot::InChannel { idx, .. }) => graph.channel(self.path[*idx]).to,
            None => match self.path.last() {
                Some(&c) => graph.channel(c).to,
                None => usize::MAX,
            },
        }
    }
}

/// Outcome statistics of a wormhole run (see also
/// [`Network`](crate::Network) for the topology-level wrapper).
#[derive(Debug, Clone)]
pub struct WormholeReport {
    /// Completed messages.
    pub delivered: Vec<DeliveredMessage>,
    /// Ticks simulated.
    pub ticks: u64,
    /// `true` if progress ceased while worms were still live.
    pub stalled: bool,
    /// Peak number of simultaneously busy channels.
    pub peak_busy_channels: usize,
}

/// Incremental wormhole simulator: the tick-at-a-time, submit-any-time
/// core that both the batch [`run_wormhole`] wrapper and the open-loop
/// serving driver share.
///
/// # Examples
///
/// ```
/// use rmb_baselines::{Graph, Vertex};
/// use rmb_baselines::wormhole::WormholeEngine;
/// use rmb_types::{MessageSpec, NodeId};
///
/// let mut g = Graph::new(4);
/// for i in 0..4 {
///     g.add_channel(i, (i + 1) % 4);
/// }
/// let route = |g: &Graph, at: Vertex, _d: Vertex, _s: u64| g.out_channels(at).to_vec();
/// let mut eng = WormholeEngine::new(g, route, |n| n as Vertex);
/// eng.submit(MessageSpec::new(NodeId::new(0), NodeId::new(2), 3));
/// while eng.live_count() > 0 && eng.now() < 1_000 {
///     eng.tick();
/// }
/// assert_eq!(eng.delivered().len(), 1);
/// ```
pub struct WormholeEngine<'a> {
    graph: Graph,
    route: Box<dyn RoutingFn + 'a>,
    terminal: Box<dyn Fn(u32) -> Vertex + 'a>,
    worms: Vec<Worm>,
    owner: Vec<Option<usize>>,
    busy_buffer: Vec<bool>,
    /// Physical-link multiplexing: one flit per group per tick. Maps a
    /// group id to the last tick a flit entered one of its channels.
    group_last: HashMap<usize, u64>,
    delivered: Vec<DeliveredMessage>,
    now: u64,
    last_progress: u64,
    peak_busy: usize,
    max_wire: u64,
    /// Largest data-flit count submitted so far (stall-window input).
    max_flits_seen: u64,
    stalled: bool,
}

impl std::fmt::Debug for WormholeEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WormholeEngine")
            .field("now", &self.now)
            .field("worms", &self.worms.len())
            .field("delivered", &self.delivered.len())
            .field("stalled", &self.stalled)
            .finish_non_exhaustive()
    }
}

impl<'a> WormholeEngine<'a> {
    /// Creates an idle engine over `graph`. `terminal` maps message node
    /// ids to graph vertices.
    pub fn new(
        graph: Graph,
        route: impl RoutingFn + 'a,
        terminal: impl Fn(u32) -> Vertex + 'a,
    ) -> Self {
        let channels = graph.channel_count();
        let max_wire = (0..channels)
            .map(|c| u64::from(graph.channel(c).latency))
            .max()
            .unwrap_or(1);
        WormholeEngine {
            graph,
            route: Box::new(route),
            terminal: Box::new(terminal),
            worms: Vec::new(),
            owner: vec![None; channels],
            busy_buffer: vec![false; channels],
            group_last: HashMap::new(),
            delivered: Vec::new(),
            now: 0,
            last_progress: 0,
            peak_busy: 0,
            max_wire,
            max_flits_seen: 0,
            stalled: false,
        }
    }

    /// Submits a message; it starts injecting at `spec.inject_at` (or the
    /// current tick if that is already past). Returns the worm's request
    /// id, which reappears in its [`DeliveredMessage`].
    pub fn submit(&mut self, spec: MessageSpec) -> RequestId {
        let request = RequestId::new(self.worms.len() as u64);
        self.max_flits_seen = self.max_flits_seen.max(u64::from(spec.data_flits));
        self.worms.push(Worm {
            request,
            spec,
            dst: (self.terminal)(spec.destination.index()),
            path: Vec::new(),
            flits: Vec::new(),
            next_inject: 0,
            total: spec.data_flits + 2,
            arrived_at: None,
            done_at: None,
            released_up_to: 0,
        });
        request
    }

    /// The current tick.
    pub const fn now(&self) -> u64 {
        self.now
    }

    /// Worms submitted but not yet fully delivered.
    pub fn live_count(&self) -> usize {
        self.worms.iter().filter(|w| w.done_at.is_none()).count()
    }

    /// `true` once a stall (no progress for a full stall window while
    /// work was due) has been detected. Latches.
    pub const fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Channels currently owned by some worm.
    pub fn busy_channels(&self) -> usize {
        self.owner.iter().filter(|o| o.is_some()).count()
    }

    /// Total channels in the graph.
    pub fn channel_count(&self) -> usize {
        self.graph.channel_count()
    }

    /// Peak simultaneous busy channels so far.
    pub const fn peak_busy_channels(&self) -> usize {
        self.peak_busy
    }

    /// All completions so far, in completion order. Use
    /// [`delivered_since`](Self::delivered_since) for incremental polling.
    pub fn delivered(&self) -> &[DeliveredMessage] {
        &self.delivered
    }

    /// Completions from `cursor` onward; pass the previous `delivered().len()`.
    pub fn delivered_since(&self, cursor: usize) -> &[DeliveredMessage] {
        &self.delivered[cursor.min(self.delivered.len())..]
    }

    /// Ticks of no progress while work is due before declaring a stall.
    fn stall_window(&self) -> u64 {
        4 * self.graph.vertex_count() as u64 * self.max_wire + self.max_flits_seen + 64
    }

    /// Consumes the engine into a batch-style report.
    pub fn into_report(self) -> WormholeReport {
        WormholeReport {
            delivered: self.delivered,
            ticks: self.now,
            stalled: self.stalled,
            peak_busy_channels: self.peak_busy,
        }
    }

    /// Advances the simulation by one tick: every worm gets a chance to
    /// move its flits one buffer and inject one new flit, in an order
    /// rotated by the tick number for fairness.
    pub fn tick(&mut self) {
        let order_start = (self.now as usize) % self.worms.len().max(1);
        for off in 0..self.worms.len() {
            let wi = (order_start + off) % self.worms.len();
            if self.worms[wi].done_at.is_some() || self.worms[wi].spec.inject_at > self.now {
                continue;
            }
            let progressed = self.step_worm(wi);
            if progressed {
                self.last_progress = self.now;
            }
            if self.worms[wi].done_at == Some(self.now) {
                let w = &self.worms[wi];
                self.delivered.push(DeliveredMessage {
                    request: w.request,
                    spec: w.spec,
                    requested_at: w.spec.inject_at,
                    circuit_at: w.arrived_at.unwrap_or(self.now),
                    delivered_at: self.now,
                    refusals: 0,
                });
            }
        }

        self.peak_busy = self.peak_busy.max(self.busy_channels());
        self.now += 1;
        let due = self
            .worms
            .iter()
            .any(|w| w.done_at.is_none() && w.spec.inject_at <= self.now);
        if due && self.now - self.last_progress > self.stall_window() {
            self.stalled = true;
        }
        if !due {
            self.last_progress = self.now;
        }
    }

    /// One worm's turn: advance/consume its in-flight flits, then inject
    /// the next flit at the source. Returns `true` if anything moved.
    fn step_worm(&mut self, wi: usize) -> bool {
        let now = self.now;
        let mut progressed = false;

        // 1. Advance or deliver existing flits, header first. A flit
        //    moves into the next channel buffer when it is free.
        let flit_count = self.worms[wi].flits.len();
        let mut consumed_head = false;
        for f in 0..flit_count {
            let FlitSlot::InChannel { seq, idx, entered } = self.worms[wi].flits[f];
            let dwelt =
                now >= entered + u64::from(self.graph.channel(self.worms[wi].path[idx]).latency);
            if !dwelt {
                continue; // still travelling along the wire
            }
            let at_path_end = idx + 1 == self.worms[wi].path.len();
            let header_arrived = self.worms[wi].arrived_at.is_some();
            if f == 0 && !header_arrived && seq == 0 {
                // Header: extend the path or arrive.
                let here = self.worms[wi].header_vertex(&self.graph);
                if here == self.worms[wi].dst {
                    self.worms[wi].arrived_at = Some(now);
                    self.busy_buffer[self.worms[wi].path[idx]] = false;
                    consumed_head = true;
                    progressed = true;
                    continue;
                }
                let salt = wi as u64 * 7919 + now;
                let cands = self
                    .route
                    .candidates(&self.graph, here, self.worms[wi].dst, salt);
                debug_assert!(
                    !cands.is_empty(),
                    "routing function returned no candidates at vertex {here}"
                );
                if let Some(&c) = cands.iter().find(|&&c| {
                    self.owner[c].is_none()
                        && self.group_last.get(&self.graph.channel(c).group) != Some(&now)
                }) {
                    self.owner[c] = Some(wi);
                    self.busy_buffer[self.worms[wi].path[idx]] = false;
                    self.worms[wi].path.push(c);
                    self.busy_buffer[c] = true;
                    self.group_last.insert(self.graph.channel(c).group, now);
                    self.worms[wi].flits[f] = FlitSlot::InChannel {
                        seq,
                        idx: idx + 1,
                        entered: now,
                    };
                    progressed = true;
                }
                continue;
            }
            // Body / tail flit (or header already arrived for f == 0 —
            // cannot happen because arrival consumes it).
            if at_path_end {
                if header_arrived {
                    // Consume at the destination.
                    self.busy_buffer[self.worms[wi].path[idx]] = false;
                    self.worms[wi].flits[f] = FlitSlot::InChannel {
                        seq,
                        idx: usize::MAX, // mark consumed; filtered below
                        entered: now,
                    };
                    if seq + 1 == self.worms[wi].total {
                        self.worms[wi].done_at = Some(now);
                    }
                    progressed = true;
                    // Tail passed the last channel: release it.
                    if seq + 1 == self.worms[wi].total {
                        let upto = self.worms[wi].released_up_to;
                        for &c in &self.worms[wi].path[upto..] {
                            self.owner[c] = None;
                        }
                        self.worms[wi].released_up_to = self.worms[wi].path.len();
                    }
                }
                continue;
            }
            let next_channel = self.worms[wi].path[idx + 1];
            if !self.busy_buffer[next_channel]
                && self.group_last.get(&self.graph.channel(next_channel).group) != Some(&now)
            {
                self.busy_buffer[self.worms[wi].path[idx]] = false;
                self.busy_buffer[next_channel] = true;
                self.group_last
                    .insert(self.graph.channel(next_channel).group, now);
                self.worms[wi].flits[f] = FlitSlot::InChannel {
                    seq,
                    idx: idx + 1,
                    entered: now,
                };
                progressed = true;
                // If this is the tail flit, release the channel left.
                if seq + 1 == self.worms[wi].total {
                    self.owner[self.worms[wi].path[idx]] = None;
                    self.worms[wi].released_up_to = idx + 1;
                }
            }
        }
        if consumed_head {
            self.worms[wi].flits.remove(0);
        }
        self.worms[wi].flits.retain(|f| {
            let FlitSlot::InChannel { idx, .. } = f;
            *idx != usize::MAX
        });

        // 2. Inject the next flit at the source, one per tick.
        let w = &self.worms[wi];
        if w.next_inject < w.total {
            if w.next_inject == 0 {
                // Header injection: acquire the first channel.
                let src = (self.terminal)(w.spec.source.index());
                let salt = wi as u64 * 7919 + now;
                let cands = self.route.candidates(&self.graph, src, w.dst, salt);
                if let Some(&c) = cands.iter().find(|&&c| {
                    self.owner[c].is_none()
                        && self.group_last.get(&self.graph.channel(c).group) != Some(&now)
                }) {
                    self.owner[c] = Some(wi);
                    self.busy_buffer[c] = true;
                    self.group_last.insert(self.graph.channel(c).group, now);
                    let w = &mut self.worms[wi];
                    w.path.push(c);
                    w.flits.push(FlitSlot::InChannel {
                        seq: 0,
                        idx: 0,
                        entered: now,
                    });
                    w.next_inject = 1;
                    progressed = true;
                }
            } else {
                // Body/tail: enter channel 0 when its buffer is free.
                let first = w.path[0];
                let first_still_owned = self.owner[first] == Some(wi);
                if first_still_owned
                    && !self.busy_buffer[first]
                    && self.group_last.get(&self.graph.channel(first).group) != Some(&now)
                {
                    self.busy_buffer[first] = true;
                    self.group_last.insert(self.graph.channel(first).group, now);
                    let seq = w.next_inject;
                    let w = &mut self.worms[wi];
                    w.flits.push(FlitSlot::InChannel {
                        seq,
                        idx: 0,
                        entered: now,
                    });
                    w.next_inject += 1;
                    progressed = true;
                }
            }
        }

        progressed
    }
}

/// Runs a batch of messages through a graph under a routing function.
///
/// `terminal` maps message node ids to graph vertices. Runs until all
/// worms complete, progress stalls, or `max_ticks` elapses.
pub fn run_wormhole(
    graph: &Graph,
    route: &dyn RoutingFn,
    terminal: &dyn Fn(u32) -> Vertex,
    messages: &[MessageSpec],
    max_ticks: u64,
) -> WormholeReport {
    let mut engine = WormholeEngine::new(
        graph.clone(),
        |g: &Graph, at: Vertex, dst: Vertex, salt: u64| route.candidates(g, at, dst, salt),
        terminal,
    );
    for &m in messages {
        engine.submit(m);
    }
    while engine.live_count() > 0 && engine.now() < max_ticks {
        engine.tick();
        if engine.is_stalled() {
            break;
        }
    }
    engine.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    /// A 4-node directed ring with shortest-path (clockwise) routing.
    fn ring4() -> Graph {
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_channel(i, (i + 1) % 4);
        }
        g
    }

    fn ring_route(g: &Graph, at: Vertex, _dst: Vertex, _salt: u64) -> Vec<usize> {
        g.out_channels(at).to_vec()
    }

    #[test]
    fn single_message_traverses_ring() {
        let g = ring4();
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(2), 3)];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 1_000);
        assert_eq!(report.delivered.len(), 1);
        assert!(!report.stalled);
        let d = &report.delivered[0];
        // Header: injected t0 (ch0), t1 -> ch1, t2 arrives at vertex 2.
        assert_eq!(d.circuit_at, 2);
        // Tail (flit 4 of 5) injected t4, crosses 2 channels, consumed t7.
        assert!(d.delivered_at >= d.circuit_at + 3);
    }

    #[test]
    fn contention_serialises_on_shared_channel() {
        let g = ring4();
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(2), 8),
            MessageSpec::new(NodeId::new(3), NodeId::new(2), 8),
        ];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);
        assert_eq!(report.delivered.len(), 2);
        // Channel 1->2 is shared; the second worm must wait for the tail
        // of whichever got it first.
        let t: Vec<u64> = report.delivered.iter().map(|d| d.delivered_at).collect();
        assert!(t[0].abs_diff(t[1]) >= 4, "worms cannot fully overlap: {t:?}");
    }

    #[test]
    fn channels_are_released_after_completion() {
        let g = ring4();
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(1), 2),
            MessageSpec::new(NodeId::new(0), NodeId::new(1), 2).at(40),
        ];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);
        assert_eq!(report.delivered.len(), 2, "channel 0 must be reusable");
    }

    #[test]
    fn zero_data_flit_message_completes() {
        let g = ring4();
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(3), 0)];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 1_000);
        assert_eq!(report.delivered.len(), 1);
    }

    #[test]
    fn deferred_injection_waits() {
        let g = ring4();
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(1), 1).at(100)];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);
        assert_eq!(report.delivered.len(), 1);
        assert!(report.delivered[0].circuit_at >= 100);
        assert!(!report.stalled);
    }

    #[test]
    fn incremental_submission_matches_batch() {
        // Submitting everything up front through the engine and then
        // ticking by hand must equal run_wormhole exactly.
        let g = ring4();
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(2), 8),
            MessageSpec::new(NodeId::new(3), NodeId::new(1), 5).at(7),
            MessageSpec::new(NodeId::new(1), NodeId::new(3), 3).at(20),
        ];
        let batch = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);

        let mut eng = WormholeEngine::new(g.clone(), ring_route, |n| n as Vertex);
        for &m in &msgs {
            eng.submit(m);
        }
        while eng.live_count() > 0 && eng.now() < 10_000 {
            eng.tick();
        }
        let inc = eng.into_report();
        assert_eq!(inc.delivered, batch.delivered);
        assert_eq!(inc.ticks, batch.ticks);
        assert_eq!(inc.peak_busy_channels, batch.peak_busy_channels);
    }

    #[test]
    fn streaming_polls_see_every_completion() {
        let g = ring4();
        let mut eng = WormholeEngine::new(g, ring_route, |n| n as Vertex);
        let mut cursor = 0usize;
        let mut seen = 0usize;
        // Trickle 30 messages in while the engine runs.
        for i in 0..30u64 {
            eng.submit(
                MessageSpec::new(NodeId::new((i % 4) as u32), NodeId::new(((i + 2) % 4) as u32), 4)
                    .at(i * 9),
            );
        }
        while eng.live_count() > 0 && eng.now() < 100_000 {
            eng.tick();
            seen += eng.delivered_since(cursor).len();
            cursor = eng.delivered().len();
        }
        assert_eq!(seen, 30);
        assert!(!eng.is_stalled());
        assert!(eng.peak_busy_channels() >= 1);
    }

    #[test]
    fn busy_channel_gauge_tracks_occupancy() {
        let g = ring4();
        let mut eng = WormholeEngine::new(g, ring_route, |n| n as Vertex);
        assert_eq!(eng.busy_channels(), 0);
        assert_eq!(eng.channel_count(), 4);
        eng.submit(MessageSpec::new(NodeId::new(0), NodeId::new(2), 16));
        eng.tick();
        eng.tick();
        assert!(eng.busy_channels() >= 1);
        while eng.live_count() > 0 && eng.now() < 1_000 {
            eng.tick();
        }
        assert_eq!(eng.busy_channels(), 0, "tail must release all channels");
    }
}
