//! A flit-level wormhole-switching engine over a channel graph.
//!
//! This models the classic wormhole routing of Dally (the paper's
//! reference \[10\]): the header flit reserves channels one hop per tick;
//! body flits pipeline behind it through single-flit channel buffers; the
//! tail flit releases each channel as it leaves it. A blocked header holds
//! its acquired channels in place — deadlock freedom is the routing
//! function's responsibility (e-cube, XY and fat-tree up/down all provide
//! acyclic channel dependencies).

use crate::graph::{Graph, Vertex};
use rmb_types::{DeliveredMessage, MessageSpec, RequestId};

/// Routing oracle: which channels may the header take next?
pub trait RoutingFn {
    /// Ordered candidate channels from `at` toward `dst`. The engine takes
    /// the first free one. `salt` lets adaptive routers spread load
    /// deterministically (it varies per worm and per retry tick).
    fn candidates(&self, graph: &Graph, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize>;
}

impl<F> RoutingFn for F
where
    F: Fn(&Graph, Vertex, Vertex, u64) -> Vec<usize>,
{
    fn candidates(&self, graph: &Graph, at: Vertex, dst: Vertex, salt: u64) -> Vec<usize> {
        self(graph, at, dst, salt)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlitSlot {
    /// Flit `seq` sits in the buffer of `path[idx]`, having entered the
    /// channel at tick `entered`. It may leave once it has dwelt the
    /// channel's wire latency.
    InChannel { seq: u32, idx: usize, entered: u64 },
}

#[derive(Debug, Clone)]
struct Worm {
    request: RequestId,
    spec: MessageSpec,
    dst: Vertex,
    /// Channels acquired so far, source side first.
    path: Vec<usize>,
    /// In-flight flits, header first (ordered by decreasing path index).
    flits: Vec<FlitSlot>,
    /// Next flit sequence number to inject at the source (0 = header).
    next_inject: u32,
    /// Total flits: header + data + tail.
    total: u32,
    /// Header has been consumed at the destination.
    arrived_at: Option<u64>,
    /// All flits consumed; worm is complete.
    done_at: Option<u64>,
    /// Index of the last channel the tail has not yet released.
    released_up_to: usize,
}

impl Worm {
    fn header_vertex(&self, graph: &Graph) -> Vertex {
        match self.flits.first() {
            Some(FlitSlot::InChannel { idx, .. }) => graph.channel(self.path[*idx]).to,
            None => match self.path.last() {
                Some(&c) => graph.channel(c).to,
                None => usize::MAX,
            },
        }
    }
}

/// Outcome statistics of a wormhole run (see also
/// [`Network`](crate::Network) for the topology-level wrapper).
#[derive(Debug, Clone)]
pub struct WormholeReport {
    /// Completed messages.
    pub delivered: Vec<DeliveredMessage>,
    /// Ticks simulated.
    pub ticks: u64,
    /// `true` if progress ceased while worms were still live.
    pub stalled: bool,
    /// Peak number of simultaneously busy channels.
    pub peak_busy_channels: usize,
}

/// Runs a batch of messages through a graph under a routing function.
///
/// `terminal` maps message node ids to graph vertices. Runs until all
/// worms complete, progress stalls, or `max_ticks` elapses.
pub fn run_wormhole(
    graph: &Graph,
    route: &dyn RoutingFn,
    terminal: &dyn Fn(u32) -> Vertex,
    messages: &[MessageSpec],
    max_ticks: u64,
) -> WormholeReport {
    let mut owner: Vec<Option<usize>> = vec![None; graph.channel_count()];
    let mut busy_buffer: Vec<bool> = vec![false; graph.channel_count()];
    // Physical-link multiplexing: one flit per group per tick. Maps a
    // group id to the last tick a flit entered one of its channels.
    let mut group_last: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let mut worms: Vec<Worm> = messages
        .iter()
        .enumerate()
        .map(|(i, m)| Worm {
            request: RequestId::new(i as u64),
            spec: *m,
            dst: terminal(m.destination.index()),
            path: Vec::new(),
            flits: Vec::new(),
            next_inject: 0,
            total: m.data_flits + 2,
            arrived_at: None,
            done_at: None,
            released_up_to: 0,
        })
        .collect();

    let mut delivered = Vec::new();
    let mut now: u64 = 0;
    let mut last_progress: u64 = 0;
    let mut peak_busy = 0usize;
    let max_wire = (0..graph.channel_count())
        .map(|c| u64::from(graph.channel(c).latency))
        .max()
        .unwrap_or(1);
    let stall_window = 4 * graph.vertex_count() as u64 * max_wire
        + messages.iter().map(|m| m.data_flits as u64).max().unwrap_or(0)
        + 64;

    let live = |w: &Worm| w.done_at.is_none();
    while worms.iter().any(live) && now < max_ticks {
        let order_start = (now as usize) % worms.len().max(1);
        for off in 0..worms.len() {
            let wi = (order_start + off) % worms.len();
            if worms[wi].done_at.is_some() || worms[wi].spec.inject_at > now {
                continue;
            }
            let mut progressed = false;

            // 1. Advance or deliver existing flits, header first. A flit
            //    moves into the next channel buffer when it is free.
            let flit_count = worms[wi].flits.len();
            let mut consumed_head = false;
            for f in 0..flit_count {
                let FlitSlot::InChannel { seq, idx, entered } = worms[wi].flits[f];
                let dwelt = now >= entered + u64::from(graph.channel(worms[wi].path[idx]).latency);
                if !dwelt {
                    continue; // still travelling along the wire
                }
                let at_path_end = idx + 1 == worms[wi].path.len();
                let header_arrived = worms[wi].arrived_at.is_some();
                if f == 0 && !header_arrived && seq == 0 {
                    // Header: extend the path or arrive.
                    let here = worms[wi].header_vertex(graph);
                    if here == worms[wi].dst {
                        worms[wi].arrived_at = Some(now);
                        busy_buffer[worms[wi].path[idx]] = false;
                        consumed_head = true;
                        progressed = true;
                        continue;
                    }
                    let salt = wi as u64 * 7919 + now;
                    let cands = route.candidates(graph, here, worms[wi].dst, salt);
                    debug_assert!(
                        !cands.is_empty(),
                        "routing function returned no candidates at vertex {here}"
                    );
                    if let Some(&c) = cands.iter().find(|&&c| {
                        owner[c].is_none() && group_last.get(&graph.channel(c).group) != Some(&now)
                    }) {
                        owner[c] = Some(wi);
                        busy_buffer[worms[wi].path[idx]] = false;
                        worms[wi].path.push(c);
                        busy_buffer[c] = true;
                        group_last.insert(graph.channel(c).group, now);
                        worms[wi].flits[f] = FlitSlot::InChannel {
                            seq,
                            idx: idx + 1,
                            entered: now,
                        };
                        progressed = true;
                    }
                    continue;
                }
                // Body / tail flit (or header already arrived for f == 0 —
                // cannot happen because arrival consumes it).
                if at_path_end {
                    if header_arrived {
                        // Consume at the destination.
                        busy_buffer[worms[wi].path[idx]] = false;
                        worms[wi].flits[f] = FlitSlot::InChannel {
                            seq,
                            idx: usize::MAX, // mark consumed; filtered below
                            entered: now,
                        };
                        if seq + 1 == worms[wi].total {
                            worms[wi].done_at = Some(now);
                        }
                        progressed = true;
                        // Tail passed the last channel: release it.
                        if seq + 1 == worms[wi].total {
                            for &c in &worms[wi].path[worms[wi].released_up_to..] {
                                owner[c] = None;
                            }
                            worms[wi].released_up_to = worms[wi].path.len();
                        }
                    }
                    continue;
                }
                let next_channel = worms[wi].path[idx + 1];
                if !busy_buffer[next_channel]
                    && group_last.get(&graph.channel(next_channel).group) != Some(&now)
                {
                    busy_buffer[worms[wi].path[idx]] = false;
                    busy_buffer[next_channel] = true;
                    group_last.insert(graph.channel(next_channel).group, now);
                    worms[wi].flits[f] = FlitSlot::InChannel {
                        seq,
                        idx: idx + 1,
                        entered: now,
                    };
                    progressed = true;
                    // If this is the tail flit, release the channel left.
                    if seq + 1 == worms[wi].total {
                        owner[worms[wi].path[idx]] = None;
                        worms[wi].released_up_to = idx + 1;
                    }
                }
            }
            if consumed_head {
                worms[wi].flits.remove(0);
            }
            worms[wi].flits.retain(|f| {
                let FlitSlot::InChannel { idx, .. } = f;
                *idx != usize::MAX
            });

            // 2. Inject the next flit at the source, one per tick.
            let w = &worms[wi];
            if w.next_inject < w.total {
                if w.next_inject == 0 {
                    // Header injection: acquire the first channel.
                    let src = terminal(w.spec.source.index());
                    let salt = wi as u64 * 7919 + now;
                    let cands = route.candidates(graph, src, w.dst, salt);
                    if let Some(&c) = cands.iter().find(|&&c| {
                        owner[c].is_none() && group_last.get(&graph.channel(c).group) != Some(&now)
                    }) {
                        owner[c] = Some(wi);
                        busy_buffer[c] = true;
                        group_last.insert(graph.channel(c).group, now);
                        let w = &mut worms[wi];
                        w.path.push(c);
                        w.flits.push(FlitSlot::InChannel {
                            seq: 0,
                            idx: 0,
                            entered: now,
                        });
                        w.next_inject = 1;
                        progressed = true;
                    }
                } else {
                    // Body/tail: enter channel 0 when its buffer is free.
                    let first = w.path[0];
                    let header_done = w.arrived_at.is_some();
                    let first_still_owned = owner[first] == Some(wi);
                    if first_still_owned
                        && !busy_buffer[first]
                        && group_last.get(&graph.channel(first).group) != Some(&now)
                    {
                        busy_buffer[first] = true;
                        group_last.insert(graph.channel(first).group, now);
                        let seq = w.next_inject;
                        let w = &mut worms[wi];
                        w.flits.push(FlitSlot::InChannel {
                            seq,
                            idx: 0,
                            entered: now,
                        });
                        w.next_inject += 1;
                        progressed = true;
                        let _ = header_done;
                    }
                }
            }

            if progressed {
                last_progress = now;
            }
            // Degenerate single-hop case: header consumed and no data to
            // come; completion handled in flit loop above.
            if worms[wi].done_at == Some(now) {
                let w = &worms[wi];
                delivered.push(DeliveredMessage {
                    request: w.request,
                    spec: w.spec,
                    requested_at: w.spec.inject_at,
                    circuit_at: w.arrived_at.unwrap_or(now),
                    delivered_at: now,
                    refusals: 0,
                });
            }
        }

        peak_busy = peak_busy.max(owner.iter().filter(|o| o.is_some()).count());
        now += 1;
        let due = worms
            .iter()
            .any(|w| w.done_at.is_none() && w.spec.inject_at <= now);
        if due && now - last_progress > stall_window {
            return WormholeReport {
                delivered,
                ticks: now,
                stalled: true,
                peak_busy_channels: peak_busy,
            };
        }
        if !due {
            last_progress = now;
        }
    }

    WormholeReport {
        delivered,
        ticks: now,
        stalled: false,
        peak_busy_channels: peak_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    /// A 4-node directed ring with shortest-path (clockwise) routing.
    fn ring4() -> Graph {
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_channel(i, (i + 1) % 4);
        }
        g
    }

    fn ring_route(g: &Graph, at: Vertex, _dst: Vertex, _salt: u64) -> Vec<usize> {
        g.out_channels(at).to_vec()
    }

    #[test]
    fn single_message_traverses_ring() {
        let g = ring4();
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(2), 3)];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 1_000);
        assert_eq!(report.delivered.len(), 1);
        assert!(!report.stalled);
        let d = &report.delivered[0];
        // Header: injected t0 (ch0), t1 -> ch1, t2 arrives at vertex 2.
        assert_eq!(d.circuit_at, 2);
        // Tail (flit 4 of 5) injected t4, crosses 2 channels, consumed t7.
        assert!(d.delivered_at >= d.circuit_at + 3);
    }

    #[test]
    fn contention_serialises_on_shared_channel() {
        let g = ring4();
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(2), 8),
            MessageSpec::new(NodeId::new(3), NodeId::new(2), 8),
        ];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);
        assert_eq!(report.delivered.len(), 2);
        // Channel 1->2 is shared; the second worm must wait for the tail
        // of whichever got it first.
        let t: Vec<u64> = report.delivered.iter().map(|d| d.delivered_at).collect();
        assert!(t[0].abs_diff(t[1]) >= 4, "worms cannot fully overlap: {t:?}");
    }

    #[test]
    fn channels_are_released_after_completion() {
        let g = ring4();
        let msgs = vec![
            MessageSpec::new(NodeId::new(0), NodeId::new(1), 2),
            MessageSpec::new(NodeId::new(0), NodeId::new(1), 2).at(40),
        ];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);
        assert_eq!(report.delivered.len(), 2, "channel 0 must be reusable");
    }

    #[test]
    fn zero_data_flit_message_completes() {
        let g = ring4();
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(3), 0)];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 1_000);
        assert_eq!(report.delivered.len(), 1);
    }

    #[test]
    fn deferred_injection_waits() {
        let g = ring4();
        let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(1), 1).at(100)];
        let report = run_wormhole(&g, &ring_route, &|n| n as Vertex, &msgs, 10_000);
        assert_eq!(report.delivered.len(), 1);
        assert!(report.delivered[0].circuit_at >= 100);
        assert!(!report.stalled);
    }
}
