//! Property-based tests of the baseline networks: conservation (every
//! message delivered exactly once), route legality and latency bounds
//! across random workloads on all topologies.

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_baselines::{Ehc, FatTree, Hypercube, KAryNCube, Mesh2D, Network};
use rmb_types::{MessageSpec, NodeId};

type RawMsg = (u32, u32, u32, u64);

fn build_msgs(n: u32, raw: &[RawMsg]) -> Vec<MessageSpec> {
    raw.iter()
        .map(|&(s, off, flits, at)| {
            let src = s % n;
            let dst = (src + 1 + off % (n - 1)) % n;
            MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 24).at(at % 200)
        })
        .collect()
}

fn check_conservation(net: &mut dyn Network, msgs: &[MessageSpec]) -> Result<(), TestCaseError> {
    let out = net.route_messages(msgs, 4_000_000);
    prop_assert!(!out.stalled, "{} stalled", net.label());
    prop_assert_eq!(out.delivered.len(), msgs.len(), "{}", net.label());
    for d in &out.delivered {
        prop_assert!(d.delivered_at >= d.circuit_at);
        prop_assert!(d.circuit_at >= d.requested_at);
        // Latency at least the body length (one flit per tick at best).
        prop_assert!(d.latency() >= u64::from(d.spec.data_flits));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hypercube_conserves_messages(
        pow in 2u32..6,
        raw in vec(any::<RawMsg>(), 1..24),
    ) {
        let n = 1 << pow;
        let msgs = build_msgs(n, &raw);
        check_conservation(&mut Hypercube::new(n), &msgs)?;
        check_conservation(&mut Hypercube::new_with_layout_wires(n), &msgs)?;
    }

    #[test]
    fn ehc_conserves_messages(
        pow in 2u32..6,
        dup in 0u32..2,
        raw in vec(any::<RawMsg>(), 1..24),
    ) {
        let n = 1 << pow;
        let msgs = build_msgs(n, &raw);
        check_conservation(&mut Ehc::new(n, dup % pow), &msgs)?;
    }

    #[test]
    fn mesh_conserves_messages(
        side in 2u32..7,
        raw in vec(any::<RawMsg>(), 1..24),
    ) {
        let n = side * side;
        let msgs = build_msgs(n, &raw);
        check_conservation(&mut Mesh2D::new(side, side), &msgs)?;
    }

    #[test]
    fn fat_tree_conserves_messages(
        pow in 2u32..6,
        k in 1u16..6,
        raw in vec(any::<RawMsg>(), 1..24),
    ) {
        let n = 1 << pow;
        let msgs = build_msgs(n, &raw);
        check_conservation(&mut FatTree::new(n, k), &msgs)?;
        check_conservation(&mut FatTree::new_with_layout_wires(n, k), &msgs)?;
    }

    #[test]
    fn torus_conserves_messages(
        radix in 3u32..6,
        dims in 1u32..3,
        raw in vec(any::<RawMsg>(), 1..20),
    ) {
        let n = radix.pow(dims);
        let msgs = build_msgs(n, &raw);
        check_conservation(&mut KAryNCube::new(radix, dims), &msgs)?;
    }

    /// Unloaded single-message latency equals the topology's distance
    /// plus the flit pipeline, exactly.
    #[test]
    fn single_message_latency_is_distance_plus_pipeline(
        s in any::<u32>(),
        off in any::<u32>(),
        flits in 0u32..32,
    ) {
        let n = 16u32;
        let src = s % n;
        let dst = (src + 1 + off % (n - 1)) % n;
        let msgs = vec![MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits)];

        let mut cube = Hypercube::new(n);
        let out = cube.route_messages(&msgs, 100_000);
        let d = &out.delivered[0];
        let hamming = (src ^ dst).count_ones() as u64;
        prop_assert_eq!(d.circuit_at, hamming);
        // Tail flit: injected `flits + 1` ticks after the header, then
        // pipelines across the same `hamming` channels.
        prop_assert_eq!(d.delivered_at, hamming + u64::from(flits) + 1);
    }
}
