//! Criterion benchmarks of the analysis layer (experiment index B3):
//! §3.2 cost-grid evaluation, the offline circular-arc scheduler, and the
//! congestion lower bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmb_analysis::cost::comparison_grid;
use rmb_analysis::{offline_schedule, ring_lower_bound};
use rmb_types::{MessageSpec, NodeId, RingSize};

fn batch(n: u32, count: u32) -> Vec<MessageSpec> {
    (0..count)
        .map(|i| {
            let s = (i * 7 + 3) % n;
            let d = (s + 1 + (i * 13) % (n - 1)) % n;
            MessageSpec::new(NodeId::new(s), NodeId::new(d), 8 + (i % 24))
        })
        .collect()
}

fn bench_cost_grid(c: &mut Criterion) {
    c.bench_function("cost_grid_6arch_16points", |b| {
        let ns = [64u32, 256, 1024, 4096];
        let ks = [4u16, 8, 16, 32];
        b.iter(|| comparison_grid(&ns, &ks).len());
    });
}

fn bench_offline_scheduler(c: &mut Criterion) {
    let ring = RingSize::new(64).expect("valid");
    let mut group = c.benchmark_group("offline_scheduler");
    for count in [64u32, 256] {
        let msgs = batch(64, count);
        group.bench_with_input(BenchmarkId::new("lpt_greedy", count), &msgs, |b, msgs| {
            b.iter(|| offline_schedule(ring, 8, msgs).makespan);
        });
        group.bench_with_input(BenchmarkId::new("lower_bound", count), &msgs, |b, msgs| {
            b.iter(|| ring_lower_bound(ring, 8, msgs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_grid, bench_offline_scheduler);
criterion_main!(benches);
