//! Criterion benchmarks of the baseline networks (experiment index B2):
//! wormhole routing of a fixed permutation through each comparator, plus
//! the RMB adapter on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmb_analysis::RmbRing;
use rmb_baselines::{FatTree, Hypercube, Mesh2D, Network};
use rmb_types::{MessageSpec, NodeId, RmbConfig};

fn reversal(n: u32, flits: u32) -> Vec<MessageSpec> {
    (0..n)
        .filter(|&s| n - 1 - s != s)
        .map(|s| MessageSpec::new(NodeId::new(s), NodeId::new(n - 1 - s), flits))
        .collect()
}

fn bench_permutation_routing(c: &mut Criterion) {
    let n = 64u32;
    let k = 8u16;
    let msgs = reversal(n, 8);
    let mut group = c.benchmark_group("permutation_routing");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("hypercube", n), |b| {
        b.iter(|| {
            let mut net = Hypercube::new(n);
            let out = net.route_messages(&msgs, 1_000_000);
            assert_eq!(out.delivered.len(), msgs.len());
            out.makespan()
        });
    });
    group.bench_function(BenchmarkId::new("mesh", n), |b| {
        b.iter(|| {
            let mut net = Mesh2D::square(n);
            let out = net.route_messages(&msgs, 1_000_000);
            assert_eq!(out.delivered.len(), msgs.len());
            out.makespan()
        });
    });
    group.bench_function(BenchmarkId::new("fat_tree", n), |b| {
        b.iter(|| {
            let mut net = FatTree::new(n, k);
            let out = net.route_messages(&msgs, 1_000_000);
            assert_eq!(out.delivered.len(), msgs.len());
            out.makespan()
        });
    });
    group.bench_function(BenchmarkId::new("rmb", n), |b| {
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(16 * u64::from(n))
            .build()
            .expect("valid");
        b.iter(|| {
            let mut net = RmbRing::new(cfg);
            let out = net.route_messages(&msgs, 4_000_000);
            assert_eq!(out.delivered.len(), msgs.len());
            out.makespan()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_permutation_routing);
criterion_main!(benches);
