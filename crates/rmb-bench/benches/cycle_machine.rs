//! Criterion benchmarks of the odd/even cycle machinery (experiment index
//! B4): single-controller stepping and whole-ring activation sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmb_core::{CycleController, CycleFlags, CycleRing, Phase};

fn bench_controller_step(c: &mut Criterion) {
    c.bench_function("cycle_controller_step", |b| {
        let mut ctl = CycleController::new(Phase::Even);
        let up = CycleFlags {
            data: true,
            cycle: false,
        };
        b.iter(|| {
            ctl.set_internal_done(true);
            ctl.step(up, up)
        });
    });
}

fn bench_ring_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_ring_sweep");
    for n in [16usize, 256, 1024] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("activate_all", n), &n, |b, &n| {
            let mut ring = CycleRing::new(n);
            b.iter(|| {
                for i in 0..n {
                    ring.set_internal_done(i, true);
                    ring.activate(i);
                }
                ring.min_transitions()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller_step, bench_ring_sweep);
criterion_main!(benches);
