//! Criterion benchmarks of the RMB protocol engine (experiment index B1):
//! simulation tick cost across network sizes, end-to-end delivery, and a
//! compaction-heavy steady state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmb_core::{RmbNetwork, SchedulerMode};
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// A network with a rotating open workload that keeps roughly half the
/// segments busy, so tick cost is measured under realistic load.
fn loaded_network(n: u32, k: u16) -> RmbNetwork {
    let cfg = RmbConfig::builder(n, k)
        .head_timeout(8 * u64::from(n))
        .build()
        .expect("valid");
    let mut net = RmbNetwork::new(cfg);
    for s in 0..n {
        let spec = MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 3) % n), 10_000)
            .at(u64::from(s) * 3);
        if spec.source != spec.destination {
            net.submit(spec).expect("valid");
        }
    }
    // Warm up into steady state.
    net.run(16 * u64::from(n));
    net
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmb_tick");
    // (64, 4) is the saturated reference point: 64 long-lived circuits
    // contend for 4 buses, so every phase of the tick scans live state.
    for (n, k) in [(16u32, 4u16), (64, 4), (64, 8), (256, 16)] {
        group.throughput(Throughput::Elements(u64::from(n) * u64::from(k)));
        group.bench_with_input(
            BenchmarkId::new("loaded", format!("N{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let mut net = loaded_network(n, k);
                b.iter(|| net.tick());
            },
        );
    }
    group.finish();
}

/// A large, mostly idle ring: exactly four long-lived circuits stream
/// while every other node sits silent. Per-tick cost should track the
/// active-circuit count, not N×k.
fn duty_cycle_network(n: u32, mode: SchedulerMode) -> RmbNetwork {
    let cfg = RmbConfig::builder(n, 8)
        .head_timeout(8 * u64::from(n))
        .build()
        .expect("valid");
    let mut net = RmbNetwork::builder(cfg).scheduler(mode).build();
    let stride = n / 4;
    for i in 0..4u32 {
        let s = i * stride;
        // Long enough to outlive any benchmark run (one flit per tick).
        net.submit(MessageSpec::new(
            NodeId::new(s),
            NodeId::new((s + stride / 2 + 1) % n),
            1_000_000_000,
        ))
        .expect("valid");
    }
    // Warm up until all four circuits are established and streaming.
    net.run(16 * u64::from(n));
    net
}

fn bench_duty_cycle(c: &mut Criterion) {
    // The tentpole claim: with the event-driven scheduler the cost of a
    // tick at N=1024 with 4 live circuits is about the cost at N=64 with
    // the same 4 circuits. The dense-sweep variants show the N×k scaling
    // the active set removes.
    let mut group = c.benchmark_group("rmb_tick");
    for n in [64u32, 1024] {
        for (mode, tag) in [
            (SchedulerMode::EventDriven, ""),
            (SchedulerMode::DenseSweep, "_dense"),
        ] {
            group.bench_with_input(
                BenchmarkId::new("duty_cycle", format!("N{n}_k8_active4{tag}")),
                &n,
                |b, &n| {
                    let mut net = duty_cycle_network(n, mode);
                    b.iter(|| net.tick());
                },
            );
        }
    }
    group.finish();
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmb_delivery");
    group.sample_size(20);
    for n in [16u32, 64] {
        group.bench_with_input(BenchmarkId::new("rotation", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = RmbConfig::builder(n, 4)
                    .head_timeout(8 * u64::from(n))
                    .build()
                    .expect("valid");
                let mut net = RmbNetwork::new(cfg);
                for s in 0..n {
                    net.submit(MessageSpec::new(
                        NodeId::new(s),
                        NodeId::new((s + 3) % n),
                        16,
                    ))
                    .expect("valid");
                }
                let report = net.run_to_quiescence(1_000_000);
                assert_eq!(report.delivered, n as usize);
                report.ticks
            });
        });
    }
    group.finish();
}

fn bench_sparse_quiescence(c: &mut Criterion) {
    // A trickle workload: 32 short messages spread over ~128k ticks, so
    // the overwhelming majority of ticks have no due work. This is the
    // scenario the idle-tick fast-forward in `run_to_quiescence` targets.
    let mut group = c.benchmark_group("rmb_sparse");
    group.sample_size(15);
    group.bench_function("trickle_quiescence", |b| {
        b.iter(|| {
            let mut net = RmbNetwork::new(RmbConfig::new(64, 4).expect("valid"));
            for i in 0..32u32 {
                net.submit(
                    MessageSpec::new(NodeId::new(i % 64), NodeId::new((i + 7) % 64), 8)
                        .at(u64::from(i) * 4_000),
                )
                .expect("valid");
            }
            let report = net.run_to_quiescence(1_000_000);
            assert_eq!(report.delivered, 32);
            report.ticks
        });
    });
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    // One long circuit injected at the top of a tall bus array: measures
    // pure compaction churn (the move scan dominates).
    let mut group = c.benchmark_group("rmb_compaction");
    group.sample_size(30);
    for k in [8u16, 32] {
        group.bench_with_input(BenchmarkId::new("sink_full_bus", k), &k, |b, &k| {
            b.iter(|| {
                let mut net = RmbNetwork::new(RmbConfig::new(64, k).expect("valid"));
                net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(40), 100_000))
                    .expect("valid");
                // Run until the circuit has sunk to the bottom everywhere.
                net.run(8 + 2 * u64::from(k));
                net.report().compaction_moves
            });
        });
    }
    group.finish();
}

fn bench_microsim_cross(c: &mut Criterion) {
    // The explicit flit-level engine vs the arithmetic engine on the same
    // rotation workload: quantifies what the per-flit representation
    // costs (the cross-validation suite proves they agree; this measures
    // the price of explicitness).
    use rmb_core::microsim::FlitLevelRmb;
    let mut group = c.benchmark_group("engine_comparison");
    group.sample_size(20);
    let n = 32u32;
    // Staggered rotation keeps the ring below saturation so both engines
    // run to quiescence (simultaneous full permutations can gridlock the
    // verbatim protocol; see the deadlock study).
    let build_msgs = || {
        (0..n)
            .map(|s| {
                MessageSpec::new(NodeId::new(s), NodeId::new((s + 5) % n), 16)
                    .at(u64::from(s) * 12)
            })
            .collect::<Vec<_>>()
    };
    group.bench_function("arithmetic_engine", |b| {
        b.iter(|| {
            let mut net = RmbNetwork::new(RmbConfig::new(n, 4).expect("valid"));
            for m in build_msgs() {
                net.submit(m).expect("valid");
            }
            let report = net.run_to_quiescence(1_000_000);
            assert_eq!(report.delivered, n as usize);
            report.ticks
        });
    });
    group.bench_function("flit_level_engine", |b| {
        b.iter(|| {
            let mut sim = FlitLevelRmb::new(RmbConfig::new(n, 4).expect("valid"));
            for m in build_msgs() {
                sim.submit(m).expect("valid");
            }
            sim.run_to_quiescence(1_000_000);
            assert_eq!(sim.delivered().len(), n as usize);
            sim.delivered().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tick,
    bench_duty_cycle,
    bench_delivery,
    bench_sparse_quiescence,
    bench_compaction,
    bench_microsim_cross
);
criterion_main!(benches);
