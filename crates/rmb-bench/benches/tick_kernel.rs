//! Criterion benchmarks of the bit-parallel tick kernel (experiment
//! index X9): per-active-circuit tick cost and the feasibility kernels
//! in isolation.
//!
//! The headline metric is **ns per active circuit per tick** at a fixed
//! live-circuit count on rings of very different size — the kernel's
//! budget is ≤ 10 ns per active circuit, independent of N. The
//! `feasibility` group isolates the occupancy query itself: the packed
//! bitmap's wrap-aware masked-range test vs the per-hop slab walk, on a
//! ring long enough that arcs straddle `u64` word boundaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmb_core::{FeasibilityMode, RmbNetwork, SchedulerMode};
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// A mostly idle ring with exactly `active` long-lived streaming
/// circuits, evenly spread; per-tick cost should track `active`, not N×k.
fn streaming_network(n: u32, active: u32, mode: SchedulerMode) -> RmbNetwork {
    let cfg = RmbConfig::builder(n, 8)
        .head_timeout(8 * u64::from(n))
        .build()
        .expect("valid");
    let mut net = RmbNetwork::builder(cfg).scheduler(mode).build();
    let stride = n / active;
    for i in 0..active {
        let s = i * stride;
        // Long enough to outlive any benchmark run (one flit per tick).
        net.submit(MessageSpec::new(
            NodeId::new(s),
            NodeId::new((s + stride / 2 + 1) % n),
            1_000_000_000,
        ))
        .expect("valid");
    }
    // Warm up until every circuit is established and streaming.
    net.run(16 * u64::from(n));
    assert_eq!(net.active_virtual_buses(), active as usize);
    net
}

fn bench_per_circuit(c: &mut Criterion) {
    // The tentpole claim: tick cost divided by the live-circuit count
    // stays within budget and is flat in N. Throughput is declared in
    // circuits, so Criterion's per-element figure *is* ns per active
    // circuit per tick.
    let mut group = c.benchmark_group("tick_kernel");
    for n in [64u32, 1024] {
        for active in [4u32, 16] {
            group.throughput(Throughput::Elements(u64::from(active)));
            group.bench_with_input(
                BenchmarkId::new("per_circuit", format!("N{n}_k8_active{active}")),
                &(n, active),
                |b, &(n, active)| {
                    let mut net = streaming_network(n, active, SchedulerMode::EventDriven);
                    b.iter(|| net.tick());
                },
            );
        }
    }
    group.finish();
}

fn bench_feasibility(c: &mut Criterion) {
    // The feasibility query in isolation: half the ring's hops are
    // saturated by live circuits, then every (src, dst) pair is asked.
    // N = 192 makes arcs span multiple bitmap words and wrap the cut.
    let mut group = c.benchmark_group("tick_kernel");
    let n = 192u32;
    for (mode, tag) in [
        (FeasibilityMode::Bitmap, "bitmap"),
        (FeasibilityMode::SlabWalk, "slab_walk"),
    ] {
        group.throughput(Throughput::Elements(u64::from(n) * u64::from(n - 1)));
        group.bench_with_input(
            BenchmarkId::new("feasibility", format!("N{n}_k2_{tag}")),
            &mode,
            |b, &mode| {
                let cfg = RmbConfig::builder(n, 2)
                    .head_timeout(8 * u64::from(n))
                    .build()
                    .expect("valid");
                let mut net = RmbNetwork::builder(cfg).feasibility(mode).build();
                // 24 long circuits spread over the ring occupy scattered
                // segments, so queries see mixed occupancy.
                for i in 0..24u32 {
                    let s = i * (n / 24);
                    net.submit(MessageSpec::new(
                        NodeId::new(s),
                        NodeId::new((s + 5) % n),
                        1_000_000_000,
                    ))
                    .expect("valid");
                }
                net.run(16 * u64::from(n));
                b.iter(|| {
                    let mut feasible = 0u32;
                    for src in 0..n {
                        for dst in 0..n {
                            if src != dst
                                && net.path_feasible(NodeId::new(src), NodeId::new(dst))
                            {
                                feasible += 1;
                            }
                        }
                    }
                    feasible
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_per_circuit, bench_feasibility);
criterion_main!(benches);
