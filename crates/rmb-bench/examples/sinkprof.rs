//! Scratch harness: splits the sink_full_bus benchmark's per-iteration
//! cost into construction vs protocol run, per bus count, then buckets
//! the run cost by tick index to localise regressions.

use std::time::Instant;

use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

fn main() {
    let iters = 20_000u32;
    for k in [8u16, 32] {
        // Construction + submit only.
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            let mut net = RmbNetwork::new(RmbConfig::new(64, k).expect("valid"));
            net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(40), 100_000))
                .expect("valid");
            sink += net.active_virtual_buses();
        }
        let build = t.elapsed().as_nanos() as f64 / f64::from(iters);

        // Full benchmark body.
        let t = Instant::now();
        for _ in 0..iters {
            let mut net = RmbNetwork::new(RmbConfig::new(64, k).expect("valid"));
            net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(40), 100_000))
                .expect("valid");
            net.run(u64::from(8 + 2 * k));
            sink += net.report().compaction_moves as usize;
        }
        let full = t.elapsed().as_nanos() as f64 / f64::from(iters);
        println!(
            "k{k}: build {build:.0} ns, full {full:.0} ns, run {:.0} ns  (sink {sink})",
            full - build
        );
    }

    // Bucket run time by tick index (k=32): 9 buckets of 8 ticks.
    let iters = 20_000u32;
    let k = 32u16;
    let ticks = 8 + 2 * u64::from(k);
    let buckets = (ticks as usize).div_ceil(8);
    let mut bucket_ns = vec![0u128; buckets];
    let mut moves_per_bucket = vec![0u64; buckets];
    for _ in 0..iters {
        let mut net = RmbNetwork::new(RmbConfig::new(64, k).expect("valid"));
        net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(40), 100_000))
            .expect("valid");
        let mut prev_moves = 0;
        for b in 0..buckets {
            let t = Instant::now();
            for _ in 0..8.min(ticks as usize - b * 8) {
                net.tick();
            }
            bucket_ns[b] += t.elapsed().as_nanos();
            let m = net.report().compaction_moves;
            moves_per_bucket[b] += m - prev_moves;
            prev_moves = m;
        }
    }
    for b in 0..buckets {
        println!(
            "ticks {:2}..{:2}: {:6.0} ns  ({:.1} moves)",
            b * 8,
            (b * 8 + 8).min(ticks as usize),
            bucket_ns[b] as f64 / f64::from(iters),
            moves_per_bucket[b] as f64 / f64::from(iters),
        );
    }
}
