//! Profiling harness: separates the fixed per-tick cost (idle network)
//! from the marginal per-circuit cost, without criterion overhead. Used
//! for the X9 duty-cycle attribution (see EXPERIMENTS.md); build with
//! `cargo build --profile bench -p rmb-bench --example tickprof`.

use std::time::Instant;

use rmb_core::{RmbNetwork, SchedulerMode};
use rmb_types::{MessageSpec, NodeId, RmbConfig};

fn net_with(n: u32, active: u32) -> RmbNetwork {
    let cfg = RmbConfig::builder(n, 8)
        .head_timeout(8 * u64::from(n))
        .build()
        .expect("valid");
    let mut net = RmbNetwork::builder(cfg)
        .scheduler(SchedulerMode::EventDriven)
        .build();
    let stride = n.checked_div(active).unwrap_or(n);
    for i in 0..active {
        let s = i * stride;
        net.submit(MessageSpec::new(
            NodeId::new(s),
            NodeId::new((s + stride / 2 + 1) % n),
            1_000_000_000,
        ))
        .expect("valid");
    }
    net.run(16 * u64::from(n));
    assert_eq!(net.active_virtual_buses(), active as usize);
    net
}

fn time_ticks(net: &mut RmbNetwork, iters: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        net.tick();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let iters = 2_000_000u64;
    for (n, active) in [(64u32, 0u32), (64, 4), (64, 16), (1024, 0), (1024, 16)] {
        let mut net = net_with(n, active);
        time_ticks(&mut net, 200_000); // warm
        let best = (0..3)
            .map(|_| time_ticks(&mut net, iters))
            .fold(f64::INFINITY, f64::min);
        let marginal = if active > 0 {
            format!("  ({:.1} ns/circuit)", best / f64::from(active))
        } else {
            String::new()
        };
        println!("N{n} active{active}: {best:.1} ns/tick{marginal}");
    }
}
