//! Regenerates the §3.2 cost comparison (experiments A1–A3) and the
//! structural cross-checks.
//!
//! ```text
//! compare [--metric links|crosspoints|area] [--check]
//! ```
//!
//! Without `--metric`, all three §3.2 metrics are printed. `--check` adds
//! the structural cross-check of the link formulas against constructed
//! network instances.

use rmb_bench::experiments::{comparison_table, cross_check_table, Metric};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metric: Option<Metric> = None;
    let mut check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metric" => {
                let Some(m) = it.next() else {
                    eprintln!("--metric needs a value (links|crosspoints|area)");
                    std::process::exit(2);
                };
                match m.parse() {
                    Ok(m) => metric = Some(m),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--check" => check = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: compare [--metric links|crosspoints|area] [--check]");
                std::process::exit(2);
            }
        }
    }

    let ns = [64u32, 256, 1024, 4096];
    let ks = [4u16, 8, 16, 32];
    let metrics: Vec<(Metric, &str)> = match metric {
        Some(m) => vec![(m, "")],
        None => vec![
            (Metric::Links, "A1 — links"),
            (Metric::Crosspoints, "A2 — cross points"),
            (Metric::Area, "A3 — VLSI area"),
        ],
    };
    for (m, label) in metrics {
        if !label.is_empty() {
            println!("Experiment {label} (paper §3.2), k-permutation capability:\n");
        }
        println!("{}", comparison_table(m, &ns, &ks));
    }
    if check {
        println!("Structural cross-checks (constructed instances vs formulas):\n");
        for (n, k) in [(64u32, 8u16), (256, 16), (1024, 16)] {
            println!("N = {n}, k = {k}:");
            println!("{}", cross_check_table(n, k));
        }
    }
}
