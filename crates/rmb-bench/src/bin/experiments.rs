//! Runs the measured experiments of the reproduction.
//!
//! ```text
//! experiments [--exp NAME] [--n N] [--k K] [--flits F] [--seed S] [--json]
//! ```
//!
//! `--json` emits one machine-readable JSON object per experiment instead
//! of text tables (for plotting or regression tracking).
//!
//! Experiment names: `lemma1`, `theorem1`, `permutation`, `competitiveness`,
//! `ablation`, `load`, `deadlock`, or `all` (default). Sizes default to
//! N = 64 (N = 16 for `permutation`, which needs a square power of two and
//! simulates five networks), k = 8, 16-flit bodies, seed 1996.

use rmb_bench::experiments::{
    ablation_suite, ablation_table, competitiveness, competitiveness_table, deadlock_study,
    fault_tolerance_experiment, fault_tolerance_table, grid_experiment, grid_table,
    hier_scaling_experiment, hier_scaling_table, hotspot_experiment, hotspot_table,
    lemma1_experiment, load_sweep, load_table,
    multi_send_experiment, multi_send_table, multicast_experiment, multicast_table,
    permutation_comparison, permutation_table, scaling_experiment, scaling_table,
    theorem1_experiment, wire_delay_experiment, wire_delay_table,
};

#[derive(Debug, Clone)]
struct Options {
    exp: String,
    n: u32,
    k: u16,
    flits: u32,
    seed: u64,
    json: bool,
}

fn parse() -> Options {
    let mut opt = Options {
        exp: "all".into(),
        n: 64,
        k: 8,
        flits: 16,
        seed: 1996,
        json: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--exp" => opt.exp = value("--exp"),
            "--n" => opt.n = value("--n").parse().expect("numeric --n"),
            "--k" => opt.k = value("--k").parse().expect("numeric --k"),
            "--flits" => opt.flits = value("--flits").parse().expect("numeric --flits"),
            "--seed" => opt.seed = value("--seed").parse().expect("numeric --seed"),
            "--json" => opt.json = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: experiments [--exp lemma1|theorem1|permutation|\
                     competitiveness|ablation|load|deadlock|multicast|\
                     wire-delay|grid|multi-send|hotspot|scaling|\
                     fault-tolerance|hier-scaling|all] \
                     [--n N] [--k K] [--flits F] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }
    opt
}

fn emit<T: rmb_bench::rows::JsonReport>(json: bool, name: &str, rows: &T, table: impl std::fmt::Display) {
    if json {
        let body = rows.to_json();
        println!("{{\"experiment\": \"{name}\", \"rows\": {body}}}");
    } else {
        println!("{table}");
    }
}

fn main() {
    let opt = parse();
    let all = opt.exp == "all";

    if all || opt.exp == "lemma1" {
        if !opt.json {
            println!("Experiment L1 — Lemma 1 (cycle-transition skew bound):\n");
        }
        let r = lemma1_experiment(opt.n.min(24), opt.seed);
        emit(opt.json, "lemma1", &r, r.table());
        if !opt.json {
            println!("bound held: {}\n", r.bound_held);
        }
    }
    if all || opt.exp == "theorem1" {
        if !opt.json {
            println!("Experiment TH1 — Theorem 1 (full utilisation / admission):\n");
        }
        let r = theorem1_experiment(opt.n.min(32), opt.k, 60, opt.seed);
        emit(opt.json, "theorem1", &r, r.table());
    }
    if all || opt.exp == "permutation" {
        let n = if all { 16 } else { opt.n };
        if !opt.json {
            println!("Experiment E2 — measured permutation routing (N = {n}, k = {}):\n", opt.k.min(8));
        }
        let rows = permutation_comparison(n, opt.k.min(8), opt.flits, opt.seed);
        emit(opt.json, "permutation", &rows, permutation_table(&rows));
    }
    if all || opt.exp == "competitiveness" {
        if !opt.json {
            println!(
                "Experiment E1 — competitiveness vs offline schedule (N = {}, k = {}):\n",
                opt.n.min(32),
                opt.k
            );
        }
        let rows = competitiveness(opt.n.min(32), opt.k, opt.flits, opt.seed);
        emit(opt.json, "competitiveness", &rows, competitiveness_table(&rows));
    }
    if all || opt.exp == "ablation" {
        if !opt.json {
            println!("Ablations (N = {}, k = {}):\n", opt.n.min(32), opt.k.min(4));
        }
        let rows = ablation_suite(opt.n.min(32), opt.k.min(4), opt.flits, opt.seed);
        emit(opt.json, "ablation", &rows, ablation_table(&rows));
    }
    if all || opt.exp == "load" {
        if !opt.json {
            println!("Load sweep (N = {}, k = {}):\n", opt.n.min(32), opt.k);
        }
        let rates = [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05];
        let points = load_sweep(opt.n.min(32), opt.k, &rates, 4_000, opt.flits, opt.seed);
        emit(opt.json, "load", &points, load_table(&points));
    }
    if all || opt.exp == "multicast" {
        if !opt.json {
            println!("Multicast extension (N = {}, k = {}):\n", opt.n.min(32), opt.k.min(4));
        }
        let rows = multicast_experiment(opt.n.min(32), opt.k.min(4), opt.flits);
        emit(opt.json, "multicast", &rows, multicast_table(&rows));
    }
    if all || opt.exp == "wire-delay" {
        let n = if opt.n.is_power_of_two() { opt.n.min(64) } else { 16 };
        if !opt.json {
            println!("Wire-length effects (N = {n}, k = {}):\n", opt.k.min(8));
        }
        let rows = wire_delay_experiment(n, opt.k.min(8), opt.flits, opt.seed);
        emit(opt.json, "wire-delay", &rows, wire_delay_table(&rows));
    }
    if all || opt.exp == "grid" {
        if !opt.json {
            println!("2-D grid of rings vs one ring (36 nodes, equal wiring):\n");
        }
        let rows = grid_experiment(6, opt.k.min(4), opt.flits);
        emit(opt.json, "grid", &rows, grid_table(&rows));
    }
    if all || opt.exp == "scaling" {
        if !opt.json {
            println!("Scaling sweep — ring vs dual ring vs grid of rings:\n");
        }
        let rows = scaling_experiment(&[4, 6, 8], opt.k.min(2), opt.flits.min(8));
        emit(opt.json, "scaling", &rows, scaling_table(&rows));
    }
    if all || opt.exp == "hotspot" {
        if !opt.json {
            println!("Hot-spot traffic vs receive slots (N = {}):\n", opt.n.min(24));
        }
        let rows = hotspot_experiment(opt.n.min(24), opt.k.min(4), 0.004, 0.6, opt.seed);
        emit(opt.json, "hotspot", &rows, hotspot_table(&rows));
    }
    if all || opt.exp == "multi-send" {
        if !opt.json {
            println!("Multiple sends per PE (hot source, N = {}):\n", opt.n.min(16));
        }
        let rows = multi_send_experiment(opt.n.min(16), opt.k.min(4), opt.flits);
        emit(opt.json, "multi-send", &rows, multi_send_table(&rows));
    }
    if all || opt.exp == "fault-tolerance" {
        let n = opt.n.min(32);
        let k = opt.k.min(8);
        if !opt.json {
            println!("Fault tolerance — throughput under failing segments (N = {n}, k = {k}):\n");
        }
        let fractions = [0.0, 0.05, 0.1, 0.15, 0.2];
        let mut sizes = vec![(n, k.min(4))];
        if k > 4 {
            sizes.push((n, k));
        }
        let rows = fault_tolerance_experiment(&sizes, &fractions, opt.flits, opt.seed);
        emit(opt.json, "fault-tolerance", &rows, fault_tolerance_table(&rows));
    }
    if all || opt.exp == "hier-scaling" {
        // Per-ring size from --n (capped), buses from --k; flat total is
        // rings * n.
        let n = opt.n.min(16);
        let k = opt.k.min(4);
        if !opt.json {
            println!("Hierarchical scaling — bridged rings vs flat ring (n/ring = {n}, k = {k}):\n");
        }
        let shapes = [(2, n, k), (4, n, k)];
        let localities = [0.0, 0.5, 0.8, 0.95];
        let rows = hier_scaling_experiment(&shapes, &localities, opt.flits.min(8), opt.seed);
        emit(opt.json, "hier-scaling", &rows, hier_scaling_table(&rows));
    }
    if all || opt.exp == "deadlock" {
        if !opt.json {
            println!("Deadlock study — saturated simultaneous injection (N = 16, k = 4):\n");
        }
        let r = deadlock_study(16, 4, 8, 0);
        emit(opt.json, "deadlock-saturated", &r, r.table());
        if !opt.json {
            println!("Below saturation, simultaneous symmetric injection (N = 8, k = 8):\n");
        }
        let r = deadlock_study(8, 8, 4, 0);
        emit(opt.json, "deadlock-symmetric", &r, r.table());
        if !opt.json {
            println!("Same workload, injections staggered by 16 ticks:\n");
        }
        let r = deadlock_study(8, 8, 4, 16);
        emit(opt.json, "deadlock-staggered", &r, r.table());
    }
}
