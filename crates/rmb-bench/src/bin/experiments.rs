//! Runs the measured experiments of the reproduction.
//!
//! ```text
//! experiments [--exp NAME] [--n N] [--k K] [--flits F] [--seed S]
//!             [--rate R] [--ticks T] [--threads T] [--scenario FILE]
//!             [--json] [--list]
//! ```
//!
//! `--json` emits one machine-readable JSON object per experiment instead
//! of text tables (for plotting or regression tracking). `--list` prints
//! the registered experiment names with descriptions and exits. `--rate`
//! and `--ticks` override the offered rate / tick budget of the open-loop
//! serving experiments. `--scenario FILE` runs a declarative TOML
//! scenario (see the `rmb-scenario` crate and `scenarios/`) through the
//! same envelope; it implies `--exp scenario`.
//!
//! Experiments come from [`rmb_bench::registry::registry`]; `--exp all`
//! (the default) runs the whole suite. Sizes default to N = 64 (clamped
//! per experiment; `permutation` uses N = 16 under `all` because it needs
//! a square power of two and simulates five networks), k = 8, 16-flit
//! bodies, seed 1996.

use rmb_bench::registry::{registry, ExpContext};

#[derive(Debug, Clone)]
struct Options {
    exp: String,
    n: u32,
    k: u16,
    flits: u32,
    seed: u64,
    ticks: Option<u64>,
    rate: Option<f64>,
    threads: usize,
    scenario: Option<String>,
    json: bool,
    list: bool,
}

fn usage() -> String {
    let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
    format!(
        "usage: experiments [--exp {}|all] [--n N] [--k K] [--flits F] \
         [--seed S] [--rate R] [--ticks T] [--threads T] [--scenario FILE] \
         [--json] [--list]",
        names.join("|")
    )
}

fn parse() -> Options {
    let mut opt = Options {
        exp: "all".into(),
        n: 64,
        k: 8,
        flits: 16,
        seed: 1996,
        ticks: None,
        rate: None,
        threads: 1,
        scenario: None,
        json: false,
        list: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--exp" => opt.exp = value("--exp"),
            "--n" => opt.n = value("--n").parse().expect("numeric --n"),
            "--k" => opt.k = value("--k").parse().expect("numeric --k"),
            "--flits" => opt.flits = value("--flits").parse().expect("numeric --flits"),
            "--seed" => opt.seed = value("--seed").parse().expect("numeric --seed"),
            "--ticks" => opt.ticks = Some(value("--ticks").parse().expect("numeric --ticks")),
            "--rate" => opt.rate = Some(value("--rate").parse().expect("numeric --rate")),
            "--threads" => {
                opt.threads = value("--threads").parse().expect("numeric --threads");
            }
            "--scenario" => opt.scenario = Some(value("--scenario")),
            "--json" => opt.json = true,
            "--list" => opt.list = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    opt
}

fn main() {
    let mut opt = parse();
    if opt.scenario.is_some() && opt.exp == "all" {
        opt.exp = "scenario".into();
    }
    let reg = registry();

    if opt.list {
        for e in &reg {
            println!("{:<18} {}", e.name(), e.description());
        }
        return;
    }

    let all = opt.exp == "all";
    if !all && !reg.iter().any(|e| e.name() == opt.exp) {
        eprintln!("unknown experiment '{}'", opt.exp);
        eprintln!("{}", usage());
        std::process::exit(2);
    }

    let cx = ExpContext {
        n: opt.n,
        k: opt.k,
        flits: opt.flits,
        seed: opt.seed,
        all,
        ticks: opt.ticks,
        rate: opt.rate,
        threads: opt.threads.max(1),
        scenario: opt.scenario.clone(),
    };

    for e in &reg {
        if !all && e.name() != opt.exp {
            continue;
        }
        for out in e.run(&cx) {
            if opt.json {
                println!(
                    "{{\"experiment\": \"{}\", \"rows\": {}}}",
                    out.name, out.rows_json
                );
            } else {
                if !out.heading.is_empty() {
                    println!("{}\n", out.heading);
                }
                println!("{}", out.table);
                if !out.footer.is_empty() {
                    println!("{}\n", out.footer);
                }
            }
        }
    }
}
