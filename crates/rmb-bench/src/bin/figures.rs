//! Regenerates the paper's figures as text, driven by the live
//! implementation.
//!
//! ```text
//! figures [--figure N]     # N in 1..=11; default: all
//! ```

use rmb_bench::figures::figure;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            for n in 1..=11 {
                if n == 10 {
                    continue; // rendered jointly with figure 9
                }
                println!("{}", figure(n));
                println!("{}", "=".repeat(72));
            }
        }
        [flag, n] if flag == "--figure" => match n.parse::<u32>() {
            Ok(n @ 1..=11) => println!("{}", figure(n)),
            _ => {
                eprintln!("the paper has figures 1 through 11");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("usage: figures [--figure N]");
            std::process::exit(2);
        }
    }
}
