//! Regenerates the paper's tables.
//!
//! ```text
//! tables [--table 1|2]     # default: both
//! ```

use rmb_bench::tables::{table1, table2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = match args.as_slice() {
        [] => None,
        [flag, n] if flag == "--table" => Some(n.as_str()),
        _ => {
            eprintln!("usage: tables [--table 1|2]");
            std::process::exit(2);
        }
    };
    if which.is_none() || which == Some("1") {
        println!("Table 1 — Interconnections between input and output ports of an INC");
        println!("(viewed from the output port):\n");
        println!("{}", table1());
    }
    if which.is_none() || which == Some("2") {
        println!("Table 2 — States/signals used in odd-even cycle control:\n");
        println!("{}", table2());
    }
    if let Some(other) = which {
        if other != "1" && other != "2" {
            eprintln!("the paper has tables 1 and 2");
            std::process::exit(2);
        }
    }
}
