//! Ablations of the design choices the paper calls out: compaction
//! on/off, early (pre-Hack) compaction, top-bus-only insertion, and the
//! one-ring vs. two-ring organisation.

use rmb_analysis::{DualRmbRing, RmbRing, Table};
use rmb_baselines::Network;
use rmb_types::{InsertionPolicy, RmbConfig, RmbConfigBuilder};
use rmb_workloads::{PermutationKind, SizeDistribution, WorkloadConfig, WorkloadSuite};

/// One ablation variant's measurement on the shared workload.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Variant name.
    pub variant: String,
    /// Makespan (0 = stalled / incomplete).
    pub makespan: u64,
    /// Mean message latency.
    pub mean_latency: f64,
    /// Total `Nack` refusals.
    pub refusals: u64,
    /// Whether the run stalled.
    pub stalled: bool,
}

fn base(n: u32, k: u16) -> RmbConfigBuilder {
    RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
}

/// Runs all ablation variants on a shared random-permutation + rotation
/// workload.
pub fn ablation_suite(n: u32, k: u16, flits: u32, seed: u64) -> Vec<AblationResult> {
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, seed).with_sizes(SizeDistribution::Fixed(flits)),
    );
    let mut msgs = suite.permutation(PermutationKind::Random);
    // A second wave landing mid-flight stresses the insertion rule.
    msgs.extend(
        suite
            .permutation(PermutationKind::Rotation(n / 3))
            .into_iter()
            .map(|m| m.at(u64::from(flits))),
    );

    let variants: Vec<(String, RmbConfig)> = vec![
        ("paper (all features)".into(), base(n, k).build().expect("valid")),
        (
            "no compaction".into(),
            base(n, k).compaction(false).build().expect("valid"),
        ),
        (
            "compaction only after Hack".into(),
            base(n, k).early_compaction(false).build().expect("valid"),
        ),
        (
            "insertion at any free bus".into(),
            base(n, k)
                .insertion(InsertionPolicy::AnyFreeBus)
                .build()
                .expect("valid"),
        ),
    ];

    let mut out = Vec::new();
    for (name, cfg) in variants {
        let mut net = RmbRing::new(cfg);
        let o = net.route_messages(&msgs, 8_000_000);
        let complete = o.delivered.len() == msgs.len();
        out.push(AblationResult {
            variant: name,
            makespan: if complete { o.makespan() } else { 0 },
            mean_latency: o.mean_latency(),
            refusals: o
                .delivered
                .iter()
                .map(|d| u64::from(d.refusals))
                .sum(),
            stalled: o.stalled || !complete,
        });
    }
    // One ring vs two opposite rings (2x the wiring, shorter paths).
    let mut dual = DualRmbRing::new(base(n, k).build().expect("valid"));
    let o = dual.route_messages(&msgs, 8_000_000);
    let complete = o.delivered.len() == msgs.len();
    out.push(AblationResult {
        variant: "two opposite rings (2x wiring)".into(),
        makespan: if complete { o.makespan() } else { 0 },
        mean_latency: o.mean_latency(),
        refusals: o.delivered.iter().map(|d| u64::from(d.refusals)).sum(),
        stalled: o.stalled || !complete,
    });
    out
}

/// Renders ablation results as a table.
pub fn ablation_table(rows: &[AblationResult]) -> Table {
    let mut t = Table::new(vec!["variant", "makespan", "mean latency", "refusals"]);
    for r in rows {
        t.row(vec![
            r.variant.clone(),
            if r.stalled {
                "stalled".into()
            } else {
                r.makespan.to_string()
            },
            format!("{:.1}", r.mean_latency),
            r.refusals.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_is_the_load_bearing_feature() {
        let rows = ablation_suite(16, 4, 16, 5);
        assert_eq!(rows.len(), 5);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(name))
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        let paper = get("paper");
        let no_compaction = get("no compaction");
        assert!(!paper.stalled);
        assert!(!no_compaction.stalled);
        // The paper's core claim: compaction buys large makespan savings.
        assert!(
            paper.makespan * 2 < no_compaction.makespan,
            "paper {} vs no-compaction {}",
            paper.makespan,
            no_compaction.makespan
        );
        // Late compaction sits between the two.
        let late = get("compaction only after Hack");
        assert!(!late.stalled);
        assert!(paper.makespan <= late.makespan);
        // Dual ring beats single ring.
        let dual = get("two opposite rings");
        assert!(!dual.stalled);
        assert!(dual.makespan < paper.makespan);
        let t = ablation_table(&rows);
        assert_eq!(t.len(), 5);
    }
}
