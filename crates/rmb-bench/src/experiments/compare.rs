//! Experiments A1–A3 — the §3.2 closed-form comparison tables, plus the
//! structural cross-checks backing them.

use rmb_analysis::cost::{comparison_grid, Cost};
use rmb_analysis::report::fnum;
use rmb_analysis::structural::all_checks;
use rmb_analysis::Table;

/// Which §3.2 metric a comparison table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Link counts.
    Links,
    /// Cross-point counts.
    Crosspoints,
    /// VLSI area.
    Area,
}

impl Metric {
    fn pick(self, c: &Cost) -> f64 {
        match self {
            Metric::Links => c.links,
            Metric::Crosspoints => c.crosspoints,
            Metric::Area => c.area,
        }
    }
}

impl std::str::FromStr for Metric {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "links" => Ok(Metric::Links),
            "crosspoints" => Ok(Metric::Crosspoints),
            "area" => Ok(Metric::Area),
            other => Err(format!("unknown metric '{other}' (links|crosspoints|area)")),
        }
    }
}

/// Builds the §3.2 comparison table for one metric over an `(N, k)` grid.
pub fn comparison_table(metric: Metric, ns: &[u32], ks: &[u16]) -> Table {
    let mut t = Table::new(vec!["N", "k", "architecture", "value"]);
    for row in comparison_grid(ns, ks) {
        t.row(vec![
            row.n.to_string(),
            row.k.to_string(),
            row.arch.to_string(),
            fnum(metric.pick(&row.cost)),
        ]);
    }
    t
}

/// Builds the structural cross-check table at one `(N, k)` point.
pub fn cross_check_table(n: u32, k: u16) -> Table {
    let mut t = Table::new(vec![
        "architecture",
        "model links",
        "structural links",
        "rel. error",
        "convention",
    ]);
    for c in all_checks(n, k) {
        t.row(vec![
            c.arch.to_string(),
            fnum(c.model_links),
            fnum(c.structural_links),
            format!("{:.4}", c.relative_error()),
            c.convention.to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_the_grid() {
        let t = comparison_table(Metric::Links, &[64, 256], &[4, 16]);
        assert_eq!(t.len(), 2 * 2 * 6);
        let s = t.to_string();
        assert!(s.contains("RMB"));
        assert!(s.contains("fat-tree"));
    }

    #[test]
    fn metric_parsing() {
        assert_eq!("links".parse::<Metric>().unwrap(), Metric::Links);
        assert_eq!("area".parse::<Metric>().unwrap(), Metric::Area);
        assert!("volume".parse::<Metric>().is_err());
    }

    #[test]
    fn cross_checks_are_tight() {
        let t = cross_check_table(64, 4);
        assert_eq!(t.len(), 5);
        let s = t.to_string();
        // All relative errors in this table round below 0.2.
        for line in s.lines().skip(2) {
            let err: f64 = line
                .split_whitespace()
                .nth(3)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            assert!(err < 0.2, "{line}");
        }
    }
}
