//! Experiment E1 — competitiveness of the online protocol (§4 future
//! work): online RMB makespan against the offline greedy schedule and the
//! congestion lower bound.

use rmb_analysis::{offline_schedule, ring_lower_bound, RmbRing, Table};
use rmb_baselines::Network;
use rmb_types::{RingSize, RmbConfig};
use rmb_workloads::{PermutationKind, SizeDistribution, WorkloadConfig, WorkloadSuite};

/// One workload's competitiveness measurement.
#[derive(Debug, Clone)]
pub struct CompetitivenessRow {
    /// Workload name.
    pub workload: String,
    /// Online RMB makespan.
    pub online: u64,
    /// Offline greedy schedule makespan.
    pub offline: u64,
    /// Congestion/length lower bound.
    pub lower_bound: u64,
    /// `online / offline`.
    pub ratio: f64,
}

/// Measures the competitive ratio on the standard permutation families.
pub fn competitiveness(n: u32, k: u16, flits: u32, seed: u64) -> Vec<CompetitivenessRow> {
    let ring = RingSize::new(n).expect("n >= 2");
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, seed).with_sizes(SizeDistribution::Fixed(flits)),
    );
    let cfg = RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .expect("valid");
    let mut kinds = vec![
        PermutationKind::Random,
        PermutationKind::Rotation(1),
        PermutationKind::Rotation(n / 4),
        PermutationKind::Opposite,
        PermutationKind::Reversal,
    ];
    if n.is_power_of_two() {
        kinds.push(PermutationKind::BitReversal);
    }
    // Workload generation is deterministic per kind (the suite re-seeds
    // on every call), so each kind is an independent cell; the online run,
    // offline schedule and bound all fan out over worker threads and come
    // back in input order.
    let rows = rmb_sim::par::par_map(&kinds, |&kind| {
        let msgs = suite.permutation(kind);
        if msgs.is_empty() {
            return None;
        }
        let mut rmb = RmbRing::new(cfg);
        let out = rmb.route_messages(&msgs, 8_000_000);
        let online = if out.delivered.len() == msgs.len() {
            out.makespan()
        } else {
            0 // stalled; reported as ratio 0 and flagged by callers
        };
        let sched = offline_schedule(ring, k, &msgs);
        debug_assert!(sched.is_feasible(ring, k, &msgs));
        let lb = ring_lower_bound(ring, k, &msgs);
        Some(CompetitivenessRow {
            workload: kind.to_string(),
            online,
            offline: sched.makespan,
            lower_bound: lb,
            ratio: if sched.makespan > 0 {
                online as f64 / sched.makespan as f64
            } else {
                0.0
            },
        })
    });
    rows.into_iter().flatten().collect()
}

/// Renders competitiveness rows as a table.
pub fn competitiveness_table(rows: &[CompetitivenessRow]) -> Table {
    let mut t = Table::new(vec![
        "workload",
        "online makespan",
        "offline makespan",
        "lower bound",
        "competitive ratio",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.online.to_string(),
            r.offline.to_string(),
            r.lower_bound.to_string(),
            format!("{:.2}", r.ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_is_within_small_factor_of_offline() {
        let rows = competitiveness(16, 4, 16, 11);
        assert!(rows.len() >= 5);
        for r in &rows {
            assert!(r.online > 0, "{} stalled", r.workload);
            assert!(
                r.offline >= r.lower_bound,
                "offline beats the lower bound on {}",
                r.workload
            );
            assert!(
                r.ratio >= 0.9,
                "online cannot meaningfully beat offline: {r:?}"
            );
            // Simultaneous full-permutation injection saturates the ring
            // and the online protocol pays a real price over clairvoyant
            // scheduling; the factor stays bounded.
            assert!(
                r.ratio < 16.0,
                "online is far from competitive on {}: {r:?}",
                r.workload
            );
        }
        // Contention-free nearest-neighbour traffic is near-optimal.
        let rot1 = rows.iter().find(|r| r.workload == "rotation(1)").unwrap();
        assert!(rot1.ratio < 2.0, "{rot1:?}");
        let t = competitiveness_table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
