//! The saturation deadlock study — a reproduction *finding*.
//!
//! The paper argues that restricting insertion to the top bus "avoids any
//! deadlocks while establishing virtual bus connection" (§2.2). That holds
//! for establishment ordering, but a *saturated* one-way ring — total
//! segment demand above `N·k` injected simultaneously — reaches a
//! circular wait of partial circuits in which no header can ever advance.
//! This experiment demonstrates the state and shows that the head-timeout
//! extension (refuse headers blocked too long) restores progress.

use rmb_analysis::Table;
use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// Result of the deadlock study at one configuration.
#[derive(Debug, Clone)]
pub struct DeadlockResult {
    /// Ring size.
    pub n: u32,
    /// Bus count.
    pub k: u16,
    /// Did the verbatim protocol stall?
    pub verbatim_stalled: bool,
    /// Messages the verbatim protocol delivered before stalling.
    pub verbatim_delivered: usize,
    /// Did the head-timeout variant complete?
    pub timeout_completed: bool,
    /// Makespan of the head-timeout variant (0 if incomplete).
    pub timeout_makespan: u64,
    /// Refusals the head-timeout variant needed.
    pub timeout_refusals: u64,
}

/// Runs the all-to-opposite permutation, with and without the head
/// timeout. `stagger` spaces the injection times (`s * stagger`); zero
/// means fully simultaneous, the adversarial case.
pub fn deadlock_study(n: u32, k: u16, flits: u32, stagger: u64) -> DeadlockResult {
    let batch: Vec<MessageSpec> = (0..n)
        .map(|s| {
            MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 2) % n), flits)
                .at(u64::from(s) * stagger)
        })
        .collect();

    let mut verbatim = RmbNetwork::new(RmbConfig::new(n, k).expect("valid"));
    verbatim
        .submit_all(batch.iter().copied())
        .expect("valid workload");
    let vr = verbatim.run_to_quiescence(2_000_000);

    let cfg = RmbConfig::builder(n, k)
        .head_timeout(8 * u64::from(n))
        .retry_backoff(2 * u64::from(n))
        .build()
        .expect("valid");
    let mut with_timeout = RmbNetwork::new(cfg);
    with_timeout
        .submit_all(batch.iter().copied())
        .expect("valid workload");
    let tr = with_timeout.run_to_quiescence(8_000_000);

    DeadlockResult {
        n,
        k,
        verbatim_stalled: vr.stalled,
        verbatim_delivered: vr.delivered,
        timeout_completed: tr.delivered == batch.len(),
        timeout_makespan: if tr.delivered == batch.len() {
            tr.makespan()
        } else {
            0
        },
        timeout_refusals: tr.refusals,
    }
}

impl DeadlockResult {
    /// Renders the result as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["variant", "outcome", "delivered", "detail"]);
        t.row(vec![
            "paper verbatim".into(),
            if self.verbatim_stalled {
                "circular wait (deadlock)".into()
            } else {
                "completed".into()
            },
            format!("{}/{}", self.verbatim_delivered, self.n),
            String::new(),
        ]);
        t.row(vec![
            "with head timeout".into(),
            if self.timeout_completed {
                "completed".into()
            } else {
                "incomplete".into()
            },
            format!("{}/{}", self.n, self.n),
            format!(
                "makespan {}, {} refusals",
                self.timeout_makespan, self.timeout_refusals
            ),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_deadlocks_verbatim_but_not_with_timeout() {
        // Demand 16 * 8 hops = 128 segments > N*k = 64: saturated.
        let r = deadlock_study(16, 4, 8, 0);
        assert!(r.verbatim_stalled, "{r:?}");
        assert_eq!(r.verbatim_delivered, 0);
        assert!(r.timeout_completed, "{r:?}");
        assert!(r.timeout_refusals > 0);
        assert_eq!(r.table().len(), 2);
    }

    #[test]
    fn simultaneous_symmetric_injection_gridlocks_even_below_saturation() {
        // Finding: 8 * 4 = 32 segments demanded of N*k = 64 — only half
        // capacity — yet fully simultaneous symmetric injection still
        // gridlocks: every trail sinks one level behind its parked head,
        // forming ascending [k-2, k-1] profiles that pin each other all
        // the way around the ring.
        let r = deadlock_study(8, 8, 4, 0);
        assert!(r.verbatim_stalled, "{r:?}");
        assert!(r.timeout_completed, "{r:?}");
    }

    #[test]
    fn staggered_injection_drains_verbatim() {
        // The same below-saturation workload with even slightly staggered
        // start times completes under the paper's verbatim protocol.
        let r = deadlock_study(8, 8, 4, 16);
        assert!(!r.verbatim_stalled, "{r:?}");
        assert_eq!(r.verbatim_delivered, 8);
    }
}
