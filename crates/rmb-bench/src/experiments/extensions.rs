//! Experiments on the paper's named-but-unevaluated extensions:
//! multicast (§1), wire-length effects (§3.2's constant-wire argument),
//! the 2-D grid of rings (§4), and multiple concurrent sends per node
//! (§4).

use rmb_analysis::{RmbGrid, RmbLattice, RmbRing, Table};
use rmb_baselines::{FatTree, Hypercube, Mesh2D, Network};
use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, NodeId, RmbConfig};
use rmb_workloads::{PermutationKind, SizeDistribution, WorkloadConfig, WorkloadSuite};

/// One row of the hot-spot / multi-receive experiment.
#[derive(Debug, Clone)]
pub struct HotspotRow {
    /// Concurrent receives allowed at the hot node.
    pub receives: u32,
    /// Messages delivered in the run window.
    pub delivered: usize,
    /// Mean latency of messages addressed to the hot node.
    pub hot_latency: f64,
    /// Total refusals (Nacks at the hot receive port).
    pub refusals: u64,
}

/// §4's multiple-receives extension under hot-spot traffic: a biased
/// Bernoulli stream concentrates on one node; the receive-port limit is
/// swept over 1, 2 and 4.
pub fn hotspot_experiment(n: u32, k: u16, rate: f64, bias: f64, seed: u64) -> Vec<HotspotRow> {
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, seed).with_sizes(SizeDistribution::Fixed(8)),
    );
    let hot = NodeId::new(0);
    let msgs = suite.hotspot(rate, 3_000, hot, bias);
    let mut rows = Vec::new();
    for receives in [1u32, 2, 4] {
        let cfg = RmbConfig::builder(n, k)
            .max_concurrent_receives(receives)
            .head_timeout(16 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .expect("valid");
        let mut net = RmbNetwork::new(cfg);
        net.submit_all(msgs.iter().copied()).expect("valid workload");
        let report = net.run_to_quiescence(2_000_000);
        let hot_msgs: Vec<_> = net
            .delivered_log()
            .iter()
            .filter(|d| d.spec.destination == hot)
            .collect();
        let hot_latency = if hot_msgs.is_empty() {
            0.0
        } else {
            hot_msgs.iter().map(|d| d.latency() as f64).sum::<f64>() / hot_msgs.len() as f64
        };
        rows.push(HotspotRow {
            receives,
            delivered: report.delivered,
            hot_latency,
            refusals: report.refusals,
        });
    }
    rows
}

/// Renders hot-spot rows.
pub fn hotspot_table(rows: &[HotspotRow]) -> Table {
    let mut t = Table::new(vec![
        "receive slots (hot node)",
        "delivered",
        "hot-node mean latency",
        "refusals",
    ]);
    for r in rows {
        t.row(vec![
            r.receives.to_string(),
            r.delivered.to_string(),
            format!("{:.1}", r.hot_latency),
            r.refusals.to_string(),
        ]);
    }
    t
}

/// One row of the multicast experiment: a group size, with multicast and
/// repeated-unicast makespans.
#[derive(Debug, Clone)]
pub struct MulticastRow {
    /// Number of destinations.
    pub group: u32,
    /// Makespan of one multicast circuit.
    pub multicast: u64,
    /// Makespan of the equivalent unicast series.
    pub unicast_series: u64,
}

/// Measures multicast against repeated unicast for growing group sizes on
/// an `n`-node, `k`-bus ring.
pub fn multicast_experiment(n: u32, k: u16, flits: u32) -> Vec<MulticastRow> {
    let mut rows = Vec::new();
    let max_group = n - 2;
    let mut group = 2;
    while group <= max_group {
        let destinations: Vec<NodeId> = (1..=group).map(|i| NodeId::new(i * (n / (group + 1)))).collect();
        let destinations: Vec<NodeId> = destinations
            .into_iter()
            .filter(|d| d.index() != 0)
            .collect();

        let mut mc = RmbNetwork::new(RmbConfig::new(n, k).expect("valid"));
        mc.submit_multicast(NodeId::new(0), &destinations, flits, 0)
            .expect("valid multicast");
        let mc_report = mc.run_to_quiescence(1_000_000);

        let mut uc = RmbNetwork::new(RmbConfig::new(n, k).expect("valid"));
        for d in &destinations {
            uc.submit(MessageSpec::new(NodeId::new(0), *d, flits))
                .expect("valid unicast");
        }
        let uc_report = uc.run_to_quiescence(1_000_000);

        rows.push(MulticastRow {
            group: destinations.len() as u32,
            multicast: mc_report.makespan(),
            unicast_series: uc_report.makespan(),
        });
        group *= 2;
    }
    rows
}

/// Renders multicast rows.
pub fn multicast_table(rows: &[MulticastRow]) -> Table {
    let mut t = Table::new(vec!["destinations", "multicast makespan", "unicast series"]);
    for r in rows {
        t.row(vec![
            r.group.to_string(),
            r.multicast.to_string(),
            r.unicast_series.to_string(),
        ]);
    }
    t
}

/// One row of the wire-delay experiment.
#[derive(Debug, Clone)]
pub struct WireDelayRow {
    /// Network label (without the wire annotation).
    pub network: String,
    /// Makespan with unit wires everywhere.
    pub unit_wires: u64,
    /// Makespan with layout-model wire lengths.
    pub layout_wires: u64,
}

impl WireDelayRow {
    /// Layout/unit slowdown factor.
    pub fn slowdown(&self) -> f64 {
        if self.unit_wires == 0 {
            return 0.0;
        }
        self.layout_wires as f64 / self.unit_wires as f64
    }
}

/// The §3.2 constant-wire-length argument, measured: route one random
/// permutation with unit wires and with layout wires. The RMB and the
/// mesh use unit wires by construction; the hypercube and fat tree pay
/// for their long wires.
pub fn wire_delay_experiment(n: u32, k: u16, flits: u32, seed: u64) -> Vec<WireDelayRow> {
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, seed).with_sizes(SizeDistribution::Fixed(flits)),
    );
    let msgs = suite.permutation(PermutationKind::Random);
    let max_ticks = 4_000_000;
    let run = |net: &mut dyn Network| {
        let out = net.route_messages(&msgs, max_ticks);
        assert_eq!(out.delivered.len(), msgs.len(), "{} stalled", net.label());
        out.makespan()
    };
    let rmb_cfg = RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .expect("valid");
    let mut rows = Vec::new();
    let rmb = run(&mut RmbRing::new(rmb_cfg));
    rows.push(WireDelayRow {
        network: "rmb".into(),
        unit_wires: rmb,
        layout_wires: rmb, // constant unit wires by construction (§3.2)
    });
    rows.push(WireDelayRow {
        network: "hypercube".into(),
        unit_wires: run(&mut Hypercube::new(n)),
        layout_wires: run(&mut Hypercube::new_with_layout_wires(n)),
    });
    rows.push(WireDelayRow {
        network: "fat-tree".into(),
        unit_wires: run(&mut FatTree::new(n, k)),
        layout_wires: run(&mut FatTree::new_with_layout_wires(n, k)),
    });
    let mesh = run(&mut Mesh2D::square(n));
    rows.push(WireDelayRow {
        network: "mesh".into(),
        unit_wires: mesh,
        layout_wires: mesh, // unit wires by construction
    });
    rows
}

/// Renders wire-delay rows.
pub fn wire_delay_table(rows: &[WireDelayRow]) -> Table {
    let mut t = Table::new(vec!["network", "unit wires", "layout wires", "slowdown"]);
    for r in rows {
        t.row(vec![
            r.network.clone(),
            r.unit_wires.to_string(),
            r.layout_wires.to_string(),
            format!("{:.2}x", r.slowdown()),
        ]);
    }
    t
}

/// One row of the grid-composition experiment.
#[derive(Debug, Clone)]
pub struct GridRow {
    /// Network label.
    pub network: String,
    /// Total bus segments (the wiring budget).
    pub segments: u64,
    /// Makespan (0 = incomplete).
    pub makespan: u64,
}

/// Compares one big ring against the 2-D grid of rings at equal wiring on
/// far traffic. `side` must be at least 2; the system has `side²` nodes.
pub fn grid_experiment(side: u32, k: u16, flits: u32) -> Vec<GridRow> {
    let n = side * side;
    let msgs: Vec<MessageSpec> = (0..n)
        .map(|s| {
            MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 2 + 1) % n), flits)
                .at(u64::from(s) * 24)
        })
        .filter(|m| m.source != m.destination)
        .collect();
    let ring_cfg = RmbConfig::builder(n, 2 * k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .expect("valid");
    let grid_cfg = RmbConfig::builder(side.max(2), k)
        .head_timeout(16 * u64::from(side))
        .retry_backoff(u64::from(side))
        .build()
        .expect("valid");
    let mut out = Vec::new();
    let mut ring = RmbRing::new(ring_cfg);
    let r = ring.route_messages(&msgs, 8_000_000);
    out.push(GridRow {
        network: ring.label(),
        segments: ring.link_count(),
        makespan: if r.delivered.len() == msgs.len() {
            r.makespan()
        } else {
            0
        },
    });
    let mut grid = RmbGrid::new(side, side, grid_cfg);
    let g = grid.route_messages(&msgs, 8_000_000);
    out.push(GridRow {
        network: grid.label(),
        segments: grid.link_count(),
        makespan: if g.delivered.len() == msgs.len() {
            g.makespan()
        } else {
            0
        },
    });
    // A 3-D lattice over the same node count, when N is a perfect cube
    // (§4 names 3-D grids explicitly). Wiring is higher (three rings per
    // node); the segments column keeps the comparison honest.
    let cbrt = (n as f64).cbrt().round() as u32;
    if cbrt >= 2 && cbrt * cbrt * cbrt == n {
        let lat_cfg = RmbConfig::builder(cbrt.max(2), k)
            .head_timeout(16 * u64::from(cbrt))
            .retry_backoff(u64::from(cbrt))
            .build()
            .expect("valid");
        let mut lat = RmbLattice::new(vec![cbrt, cbrt, cbrt], lat_cfg);
        let l = lat.route_messages(&msgs, 8_000_000);
        out.push(GridRow {
            network: lat.label(),
            segments: lat.link_count(),
            makespan: if l.delivered.len() == msgs.len() {
                l.makespan()
            } else {
                0
            },
        });
    }
    out
}

/// Renders grid rows.
pub fn grid_table(rows: &[GridRow]) -> Table {
    let mut t = Table::new(vec!["network", "segments", "makespan"]);
    for r in rows {
        t.row(vec![
            r.network.clone(),
            r.segments.to_string(),
            if r.makespan == 0 {
                "incomplete".into()
            } else {
                r.makespan.to_string()
            },
        ]);
    }
    t
}

/// One row of the multi-send experiment.
#[derive(Debug, Clone)]
pub struct MultiSendRow {
    /// Concurrent sends allowed per PE.
    pub sends: u32,
    /// Makespan of the shared workload.
    pub makespan: u64,
}

/// The §4 multiple-sends extension: one hot source fanning out messages
/// to many receivers, with 1, 2 and 4 concurrent send slots.
pub fn multi_send_experiment(n: u32, k: u16, flits: u32) -> Vec<MultiSendRow> {
    let mut rows = Vec::new();
    for sends in [1u32, 2, 4] {
        let cfg = RmbConfig::builder(n, k)
            .max_concurrent_sends(sends)
            .head_timeout(16 * u64::from(n))
            .build()
            .expect("valid");
        let mut net = RmbNetwork::new(cfg);
        for i in 1..n {
            net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(i), flits))
                .expect("valid");
        }
        let report = net.run_to_quiescence(4_000_000);
        assert_eq!(report.delivered, (n - 1) as usize);
        rows.push(MultiSendRow {
            sends,
            makespan: report.makespan(),
        });
    }
    rows
}

/// Renders multi-send rows.
pub fn multi_send_table(rows: &[MultiSendRow]) -> Table {
    let mut t = Table::new(vec!["send slots per PE", "makespan"]);
    for r in rows {
        t.row(vec![r.sends.to_string(), r.makespan.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_beats_unicast_series() {
        let rows = multicast_experiment(16, 2, 32);
        assert!(rows.len() >= 3);
        for r in &rows {
            assert!(
                r.multicast < r.unicast_series,
                "group {}: multicast {} vs series {}",
                r.group,
                r.multicast,
                r.unicast_series
            );
        }
        // The advantage grows with the group size.
        let first = &rows[0];
        let last = rows.last().unwrap();
        let gain_first = first.unicast_series as f64 / first.multicast as f64;
        let gain_last = last.unicast_series as f64 / last.multicast as f64;
        assert!(gain_last > gain_first);
        assert_eq!(multicast_table(&rows).len(), rows.len());
    }

    #[test]
    fn layout_wires_hurt_cube_and_tree_but_not_rmb() {
        let rows = wire_delay_experiment(16, 4, 8, 31);
        let get = |name: &str| rows.iter().find(|r| r.network == name).unwrap();
        assert_eq!(get("rmb").slowdown(), 1.0);
        assert_eq!(get("mesh").slowdown(), 1.0);
        assert!(get("hypercube").slowdown() > 1.1);
        assert!(get("fat-tree").slowdown() > 1.1);
        assert_eq!(wire_delay_table(&rows).len(), 4);
    }

    #[test]
    fn grid_composition_scales_past_one_ring() {
        let rows = grid_experiment(5, 2, 8);
        assert_eq!(rows.len(), 2, "25 nodes: no cube row");
        assert_eq!(rows[0].segments, rows[1].segments, "equal wiring budget");
        assert!(rows[0].makespan > 0, "ring incomplete");
        assert!(rows[1].makespan > 0, "grid incomplete");
        assert!(
            rows[1].makespan < rows[0].makespan,
            "grid {} vs ring {}",
            rows[1].makespan,
            rows[0].makespan
        );
        assert_eq!(grid_table(&rows).len(), 2);
    }

    #[test]
    fn cube_sizes_add_a_lattice_row() {
        // 64 = 8^2 = 4^3: ring, grid and 3-D lattice all present.
        let rows = grid_experiment(8, 2, 4);
        assert_eq!(rows.len(), 3);
        let lat = rows.iter().find(|r| r.network.contains("lattice")).unwrap();
        assert!(lat.makespan > 0, "lattice incomplete");
        // Diameter 3 * (4/2) = 6 vs the grid's 8: the lattice is at least
        // competitive on far traffic.
        let grid = rows.iter().find(|r| r.network.contains("grid")).unwrap();
        assert!(lat.makespan <= 2 * grid.makespan);
    }

    #[test]
    fn more_receive_slots_relieve_a_hot_spot() {
        let rows = hotspot_experiment(16, 4, 0.004, 0.6, 41);
        assert_eq!(rows.len(), 3);
        // Everything eventually delivers in every configuration.
        let total = rows[0].delivered;
        assert!(rows.iter().all(|r| r.delivered == total));
        // More receive slots -> fewer refusals and lower hot latency.
        assert!(rows[2].refusals <= rows[0].refusals, "{rows:?}");
        assert!(rows[2].hot_latency <= rows[0].hot_latency * 1.05, "{rows:?}");
        assert_eq!(hotspot_table(&rows).len(), 3);
    }

    #[test]
    fn more_send_slots_speed_up_a_hot_source() {
        let rows = multi_send_experiment(12, 4, 16);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].makespan < rows[0].makespan, "{rows:?}");
        assert!(rows[2].makespan <= rows[1].makespan, "{rows:?}");
        assert_eq!(multi_send_table(&rows).len(), 3);
    }
}
