//! Fault-tolerance sweep: throughput degradation under randomly failing
//! bus segments.
//!
//! The paper's reliability pitch (§1: multiple buses provide "graceful
//! degradation in case of faults") is qualitative; this experiment
//! measures it. For each (N, k) and each fault fraction, a random
//! [`FaultScenario`] knocks out that fraction of the `N * k` physical
//! segments at random times early in the run, each for a `16 N`-tick
//! outage, and a full rotation workload is routed across the degraded
//! ring with bounded retries. Faults are transient rather than permanent
//! because the paper's insertion rule admits headers only on the top
//! bus: a top-lane segment that never recovers makes every circuit
//! crossing that hop unroutable, a cliff rather than a curve. With
//! repairs, struck circuits are torn down, back off and re-establish —
//! the interesting output is how much throughput the waiting costs and
//! how many messages still exhaust their retry budget as the fraction
//! grows.

use rmb_analysis::Table;
use rmb_core::RmbNetwork;
use rmb_sim::SimRng;
use rmb_types::{MessageSpec, NodeId, RmbConfig};
use rmb_workloads::FaultScenario;

/// One (N, k, fault-fraction) measurement.
#[derive(Debug, Clone)]
pub struct FaultToleranceRow {
    /// Ring size.
    pub n: u32,
    /// Buses per hop.
    pub k: u16,
    /// Fraction of the `n * k` segments failed.
    pub fraction: f64,
    /// Concrete number of segments the scenario killed.
    pub faulted_segments: usize,
    /// Messages submitted (one per node).
    pub messages: usize,
    /// Messages delivered in full.
    pub delivered: usize,
    /// Messages dropped after exhausting the retry budget.
    pub aborted: usize,
    /// Requeue events (fault kills and ordinary refusals).
    pub retries: u64,
    /// Live circuits torn down by a fault.
    pub fault_kills: u64,
    /// Delivered messages per thousand ticks.
    pub throughput: f64,
    /// Mean end-to-end latency of the delivered messages.
    pub mean_latency: f64,
    /// `true` if the run deadlocked (it must not).
    pub stalled: bool,
}

/// Sweeps fault fraction over each `(n, k)` size. Every cell is an
/// independent deterministic simulation (seed + cell label), fanned out
/// over worker threads; rows come back in input order.
pub fn fault_tolerance_experiment(
    sizes: &[(u32, u16)],
    fractions: &[f64],
    flits: u32,
    seed: u64,
) -> Vec<FaultToleranceRow> {
    let cells: Vec<(u32, u16, f64)> = sizes
        .iter()
        .flat_map(|&(n, k)| fractions.iter().map(move |&f| (n, k, f)))
        .collect();
    rmb_sim::par::par_map(&cells, |&(n, k, fraction)| {
        let scenario = FaultScenario {
            fraction,
            horizon: 4 * u64::from(n),
            outage: Some(16 * u64::from(n)),
        };
        let mut rng = SimRng::seed(seed).fork(&format!("fault-tolerance/{n}x{k}/{fraction}"));
        let plan = scenario.draw(n, k, &mut rng);
        let faulted_segments = plan.events().len();

        let msgs: Vec<MessageSpec> = (0..n)
            .map(|s| {
                MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 2) % n), flits)
                    .at(u64::from(s) * 8)
            })
            .filter(|m| m.source != m.destination)
            .collect();
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(16 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .expect("valid");
        let mut net = RmbNetwork::builder(cfg)
            .fault_plan(plan)
            .fault_seed(seed ^ 0x5eed_fa17)
            .max_retries(16)
            .build();
        net.submit_all(msgs.iter().copied()).expect("valid workload");
        let report = net.run_to_quiescence(8_000_000);
        FaultToleranceRow {
            n,
            k,
            fraction,
            faulted_segments,
            messages: msgs.len(),
            delivered: report.delivered,
            aborted: report.aborted,
            retries: report.retries,
            fault_kills: report.fault_kills,
            throughput: if report.ticks == 0 {
                0.0
            } else {
                report.delivered as f64 * 1_000.0 / report.ticks as f64
            },
            mean_latency: report.mean_latency(),
            stalled: report.stalled,
        }
    })
}

/// Renders fault-tolerance rows.
pub fn fault_tolerance_table(rows: &[FaultToleranceRow]) -> Table {
    let mut t = Table::new(vec![
        "N", "k", "fraction", "faulted", "delivered", "aborted", "retries", "thr/kt", "latency",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.k.to_string(),
            format!("{:.2}", r.fraction),
            r.faulted_segments.to_string(),
            format!("{}/{}", r.delivered, r.messages),
            r.aborted.to_string(),
            r.retries.to_string(),
            format!("{:.3}", r.throughput),
            format!("{:.1}", r.mean_latency),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrades_gracefully_up_to_twenty_percent() {
        let fractions = [0.0, 0.1, 0.2];
        let rows = fault_tolerance_experiment(&[(16, 4)], &fractions, 8, 1996);
        assert_eq!(rows.len(), fractions.len());
        for r in &rows {
            assert!(!r.stalled, "no deadlock at fraction {}", r.fraction);
            assert_eq!(
                r.delivered + r.aborted,
                r.messages,
                "every message accounted for at fraction {}",
                r.fraction
            );
        }
        // The healthy ring delivers everything without drops.
        assert_eq!(rows[0].aborted, 0);
        assert_eq!(rows[0].delivered, rows[0].messages);
        assert_eq!(rows[0].fault_kills, 0);
        // Degradation, not collapse: even at 20% the ring still delivers.
        let worst = &rows[fractions.len() - 1];
        assert!(worst.delivered > 0, "20% faults must not kill the ring");
        assert!(worst.throughput <= rows[0].throughput);
        assert_eq!(fault_tolerance_table(&rows).len(), rows.len());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = fault_tolerance_experiment(&[(12, 3)], &[0.15], 4, 7);
        let b = fault_tolerance_experiment(&[(12, 3)], &[0.15], 4, 7);
        assert_eq!(a[0].delivered, b[0].delivered);
        assert_eq!(a[0].retries, b[0].retries);
        assert_eq!(a[0].faulted_segments, b[0].faulted_segments);
    }
}
