//! Hierarchical scaling sweep: bridged local rings vs one flat ring of
//! equal node count.
//!
//! The flat RMB's weakness at scale is that every circuit contends for
//! the same `N·k` segments and spans average `N/2` hops. The hierarchy
//! splits the node set into `R` local rings joined through a global
//! bridge ring, so intra-ring traffic — the fraction the `locality`
//! knob controls — runs on short spans and in parallel across rings.
//! This experiment offers the *same* workload to both organisations
//! (hierarchical addresses are mapped onto the flat ring with
//! [`HierConfig::flatten`], injection times untouched) and compares
//! aggregate throughput. The expected picture: at high locality the
//! hierarchy wins by a widening margin as `R` grows; at locality 0 every
//! message pays three legs plus two bridge dwells and the flat ring
//! catches back up.

use rmb_analysis::Table;
use rmb_core::RmbNetwork;
use rmb_hier::HierNetwork;
use rmb_sim::SimRng;
use rmb_types::{ExecMode, HierConfig, MessageSpec, RmbConfig};
use rmb_workloads::LocalityTraffic;

/// `Serial` for one thread, `Sharded` otherwise — the shared convention
/// for mapping a `--threads` count onto the hierarchy engine.
pub(crate) fn exec_mode_for(threads: usize) -> ExecMode {
    if threads <= 1 {
        ExecMode::Serial
    } else {
        ExecMode::Sharded(threads)
    }
}

/// One topology's measurement for a `(rings, n, k, locality)` cell.
#[derive(Debug, Clone)]
pub struct HierScalingRow {
    /// `"hier"` or `"flat"`.
    pub topology: String,
    /// Local rings in the hierarchy (the flat row keeps the cell's value
    /// for grouping).
    pub rings: u32,
    /// Nodes per local ring, bridge included.
    pub n: u32,
    /// Total ring positions (`rings * n`; the flat ring's size).
    pub total_nodes: u32,
    /// Buses per hop on every ring.
    pub k: u16,
    /// Fraction of traffic staying on its source ring.
    pub locality: f64,
    /// Messages offered.
    pub messages: usize,
    /// Messages delivered in full.
    pub delivered: usize,
    /// Messages aborted.
    pub aborted: usize,
    /// Bridge-queue refusals (0 for the flat ring).
    pub bridge_refusals: u64,
    /// Tick of the last delivery.
    pub makespan: u64,
    /// Delivered messages per thousand ticks of makespan.
    pub throughput: f64,
    /// Mean end-to-end latency of delivered messages.
    pub mean_latency: f64,
    /// `true` if the run deadlocked (it must not).
    pub stalled: bool,
    /// Engine threads the hierarchy ran on (1 for the flat row — the
    /// flat ring has no sharded engine).
    pub threads: u32,
    /// Wall-clock milliseconds of the run. Host measurement metadata:
    /// the one nondeterministic column in the row (absent for rows built
    /// without timing).
    pub wall_ms: Option<f64>,
    /// Simulated ticks per wall second. Same caveat as `wall_ms`.
    pub sim_ticks_per_sec: Option<f64>,
}

fn throughput(delivered: usize, makespan: u64) -> f64 {
    if makespan == 0 {
        0.0
    } else {
        delivered as f64 * 1_000.0 / makespan as f64
    }
}

/// Sweeps `(rings, nodes-per-ring, k)` shapes against locality fractions.
/// Each cell offers an identical workload to the hierarchy and to a flat
/// ring of `rings * n` nodes, and yields one row per topology (hier
/// first). Cells run in parallel; rows come back in input order.
///
/// `threads` selects the hierarchy's engine (1 = serial oracle, more =
/// sharded); every column except the wall-clock pair is independent of
/// it.
pub fn hier_scaling_experiment(
    shapes: &[(u32, u32, u16)],
    localities: &[f64],
    flits: u32,
    seed: u64,
    threads: usize,
) -> Vec<HierScalingRow> {
    let cells: Vec<(u32, u32, u16, f64)> = shapes
        .iter()
        .flat_map(|&(r, n, k)| localities.iter().map(move |&p| (r, n, k, p)))
        .collect();
    rmb_sim::par::par_map(&cells, |&(rings, n, k, locality)| {
        // Saturated rings need the head-timeout extension to break the
        // verbatim protocol's circular waits (see the deadlock study);
        // both organisations get the same rule, scaled to their ring.
        let cfg = HierConfig::builder(rings, n, k)
            .head_timeout(16 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .expect("valid shape");
        // Four messages per compute node, injected over a window tight
        // enough that the network, not the arrival process, is the
        // bottleneck.
        let count = 4 * cfg.compute_nodes() as usize;
        let spread = 2 * count as u64;
        let mut rng = SimRng::seed(seed).fork(&format!("hier-scaling/{rings}x{n}x{k}/{locality}"));
        let msgs = LocalityTraffic {
            rings,
            nodes: n,
            bridge: cfg.bridge(),
            locality,
            flits,
        }
        .generate(count, spread, &mut rng);

        let mut hier = HierNetwork::builder(cfg).exec_mode(exec_mode_for(threads)).build();
        hier.submit_all(msgs.iter().copied()).expect("valid workload");
        let hr = hier.run_to_quiescence(64_000_000);
        let hier_row = HierScalingRow {
            topology: "hier".to_string(),
            rings,
            n,
            total_nodes: cfg.total_nodes(),
            k,
            locality,
            messages: count,
            delivered: hr.delivered,
            aborted: hr.aborted,
            bridge_refusals: hr.bridge_refusals,
            makespan: hr.makespan,
            throughput: throughput(hr.delivered, hr.makespan),
            mean_latency: hr.mean_latency(),
            stalled: hr.stalled,
            threads: hr.perf.map_or(1, |p| p.threads),
            wall_ms: hr.perf.map(|p| p.wall_ms),
            sim_ticks_per_sec: hr.perf.map(|p| p.sim_ticks_per_sec),
        };

        // Same messages on one flat ring: addresses flattened ring-major,
        // arrival times identical, so the offered load matches exactly.
        let flat_cfg = RmbConfig::builder(cfg.total_nodes(), k)
            .head_timeout(16 * u64::from(cfg.total_nodes()))
            .retry_backoff(u64::from(cfg.total_nodes()))
            .build()
            .expect("valid flat ring");
        let mut flat = RmbNetwork::new(flat_cfg);
        flat.submit_all(msgs.iter().map(|m| {
            MessageSpec::new(cfg.flatten(m.source), cfg.flatten(m.destination), m.data_flits)
                .at(m.inject_at)
        }))
        .expect("valid flat workload");
        let fr = flat.run_to_quiescence(64_000_000);
        let flat_row = HierScalingRow {
            topology: "flat".to_string(),
            rings,
            n,
            total_nodes: cfg.total_nodes(),
            k,
            locality,
            messages: count,
            delivered: fr.delivered,
            aborted: fr.aborted,
            bridge_refusals: 0,
            makespan: fr.makespan(),
            throughput: throughput(fr.delivered, fr.makespan()),
            mean_latency: fr.mean_latency(),
            stalled: fr.stalled,
            threads: 1,
            wall_ms: None,
            sim_ticks_per_sec: None,
        };
        [hier_row, flat_row]
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders hierarchical-scaling rows.
pub fn hier_scaling_table(rows: &[HierScalingRow]) -> Table {
    let mut t = Table::new(vec![
        "topology", "rings", "N/ring", "total", "k", "locality", "delivered", "makespan", "thr/kt",
        "latency",
    ]);
    for r in rows {
        t.row(vec![
            r.topology.clone(),
            r.rings.to_string(),
            r.n.to_string(),
            r.total_nodes.to_string(),
            r.k.to_string(),
            format!("{:.2}", r.locality),
            format!("{}/{}", r.delivered, r.messages),
            r.makespan.to_string(),
            format!("{:.3}", r.throughput),
            format!("{:.1}", r.mean_latency),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_beats_the_flat_ring_at_high_locality() {
        // The acceptance shape: 4 rings of 16 (flat N = 64), k = 4,
        // locality 0.8.
        let rows = hier_scaling_experiment(&[(4, 16, 4)], &[0.8], 8, 1996, 1);
        assert_eq!(rows.len(), 2);
        let (hier, flat) = (&rows[0], &rows[1]);
        assert_eq!(hier.topology, "hier");
        assert_eq!(flat.topology, "flat");
        for r in &rows {
            assert!(!r.stalled, "{}: must not stall", r.topology);
            assert_eq!(r.delivered + r.aborted, r.messages);
            assert_eq!(r.aborted, 0, "{}: no faults, no drops", r.topology);
        }
        assert!(
            hier.throughput > flat.throughput,
            "hier {:.3}/kt must beat flat {:.3}/kt",
            hier.throughput,
            flat.throughput
        );
        assert_eq!(hier_scaling_table(&rows).len(), rows.len());
    }

    #[test]
    fn sweep_is_deterministic_and_conserves_messages() {
        let a = hier_scaling_experiment(&[(2, 8, 2)], &[0.5], 4, 7, 1);
        let b = hier_scaling_experiment(&[(2, 8, 2)], &[0.5], 4, 7, 1);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delivered, y.delivered);
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.delivered + x.aborted, x.messages);
        }
    }

    #[test]
    fn threads_change_wall_columns_only() {
        let serial = hier_scaling_experiment(&[(2, 8, 2)], &[0.5], 4, 7, 1);
        let sharded = hier_scaling_experiment(&[(2, 8, 2)], &[0.5], 4, 7, 2);
        for (s, p) in serial.iter().zip(&sharded) {
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.aborted, p.aborted);
            assert_eq!(s.bridge_refusals, p.bridge_refusals);
            assert_eq!(s.makespan, p.makespan);
            assert_eq!(s.mean_latency, p.mean_latency);
        }
        assert_eq!(serial[0].threads, 1);
        assert_eq!(sharded[0].threads, 2, "hier row records its pool size");
        assert_eq!(sharded[1].threads, 1, "flat row has no sharded engine");
        assert!(sharded[0].wall_ms.is_some());
    }
}
