//! Shard-scaling study: wall-clock speedup of the conservative parallel
//! hierarchy engine across a `threads × shape × locality` grid.
//!
//! Every cell runs the *same* workload (same seed, same fault-free
//! hierarchy) under `ExecMode::Serial` and under `ExecMode::Sharded(t)`
//! for each requested thread count, and checks the reports are equal
//! before recording the timing — a speedup number for a run that diverged
//! from the oracle would be meaningless. Rows carry the serial baseline
//! (threads = 1) so plots can normalise, plus `host_threads` (what the OS
//! actually offers) so numbers collected on a starved CI box are legible
//! as such: on a single-core host every mode time-slices one CPU and the
//! honest expectation is speedup ≈ 1, not 2.
//!
//! Locality matters to scaling: at high locality nearly all work lives in
//! the parallel ring-advance phase, while at locality 0 every message
//! crosses the (serial) coordinator twice, so the curve flattens — an
//! Amdahl knob the grid makes visible.

use crate::experiments::hier_scaling::exec_mode_for;
use rmb_analysis::Table;
use rmb_hier::{HierNetwork, HierReport};
use rmb_sim::SimRng;
use rmb_types::{ExecMode, HierConfig};
use rmb_workloads::LocalityTraffic;

/// One `(threads, shape, locality)` cell of the shard-scaling grid.
#[derive(Debug, Clone)]
pub struct HierShardRow {
    /// Engine threads (1 = the serial oracle row).
    pub threads: u32,
    /// Local rings.
    pub rings: u32,
    /// Nodes per local ring, bridge included.
    pub n: u32,
    /// Buses per hop.
    pub k: u16,
    /// Total ring positions (`rings * n` plus the global ring's).
    pub total_nodes: u32,
    /// Fraction of traffic staying on its source ring.
    pub locality: f64,
    /// Messages offered (all delivered; the run checks).
    pub messages: usize,
    /// Ticks simulated.
    pub ticks: u64,
    /// Wall-clock milliseconds of this cell's run.
    pub wall_ms: f64,
    /// Simulated ticks per wall second.
    pub sim_ticks_per_sec: f64,
    /// `wall_ms(serial) / wall_ms(this)` for the same shape and
    /// locality; 1.0 on the serial row by construction.
    pub speedup: f64,
    /// `true` when this run's report compared equal to the serial
    /// oracle's (must always hold; recorded so the JSON is self-checking).
    pub matches_serial: bool,
    /// Worker threads the host actually offers
    /// (`std::thread::available_parallelism`); speedup is only physically
    /// possible up to this.
    pub host_threads: u32,
}

fn run_cell(shape: (u32, u32, u16), locality: f64, seed: u64, mode: ExecMode) -> HierReport {
    let (rings, n, k) = shape;
    let cfg = HierConfig::builder(rings, n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .expect("valid shape");
    let count = 4 * cfg.compute_nodes() as usize;
    let mut rng = SimRng::seed(seed).fork(&format!("hier-shard/{rings}x{n}x{k}/{locality}"));
    let msgs = LocalityTraffic {
        rings,
        nodes: n,
        bridge: cfg.bridge(),
        locality,
        flits: 8,
    }
    .generate(count, 2 * count as u64, &mut rng);
    let mut net = HierNetwork::builder(cfg).exec_mode(mode).build();
    net.submit_all(msgs).expect("valid workload");
    net.run_to_quiescence(64_000_000)
}

/// Runs the shard-scaling grid. For each shape and locality the serial
/// oracle runs first, then every entry of `threads_axis`; each sharded
/// report is asserted equal to the oracle's before its timing is kept.
///
/// Cells run **sequentially** on purpose: this experiment measures wall
/// time, and overlapping cells (the `RMB_THREADS` sweep parallelism used
/// elsewhere) would contend for the very cores under test.
pub fn hier_shard_experiment(
    shapes: &[(u32, u32, u16)],
    localities: &[f64],
    threads_axis: &[usize],
    seed: u64,
) -> Vec<HierShardRow> {
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get()) as u32;
    let mut rows = Vec::new();
    for &shape in shapes {
        let (rings, n, k) = shape;
        let cfg = HierConfig::builder(rings, n, k).build().expect("valid shape");
        for &locality in localities {
            let serial = run_cell(shape, locality, seed, ExecMode::Serial);
            assert!(!serial.stalled, "serial cell stalled: {serial:?}");
            let serial_perf = serial.perf.expect("timed run");
            let mut push = |threads: u32, report: &HierReport, matches: bool| {
                let perf = report.perf.expect("timed run");
                rows.push(HierShardRow {
                    threads,
                    rings,
                    n,
                    k,
                    total_nodes: cfg.total_nodes(),
                    locality,
                    messages: report.submitted,
                    ticks: report.ticks,
                    wall_ms: perf.wall_ms,
                    sim_ticks_per_sec: perf.sim_ticks_per_sec,
                    speedup: if perf.wall_ms > 0.0 {
                        serial_perf.wall_ms / perf.wall_ms
                    } else {
                        1.0
                    },
                    matches_serial: matches,
                    host_threads,
                });
            };
            push(1, &serial, true);
            for &t in threads_axis {
                if t <= 1 {
                    continue; // the serial row already covers threads = 1
                }
                let sharded = run_cell(shape, locality, seed, exec_mode_for(t));
                // Byte-identity is the precondition for a meaningful
                // speedup number; `HierReport` equality ignores perf.
                let matches = sharded == serial;
                assert!(matches, "sharded({t}) diverged from serial at {shape:?}/{locality}");
                push(t as u32, &sharded, matches);
            }
        }
    }
    rows
}

/// Renders shard-scaling rows.
pub fn hier_shard_table(rows: &[HierShardRow]) -> Table {
    let mut t = Table::new(vec![
        "threads", "rings", "N/ring", "k", "locality", "ticks", "wall ms", "Mticks/s", "speedup",
        "matches",
    ]);
    for r in rows {
        t.row(vec![
            r.threads.to_string(),
            r.rings.to_string(),
            r.n.to_string(),
            r.k.to_string(),
            format!("{:.2}", r.locality),
            r.ticks.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.3}", r.sim_ticks_per_sec / 1e6),
            format!("{:.2}", r.speedup),
            r.matches_serial.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_cell_and_matches_the_oracle() {
        let rows = hier_shard_experiment(&[(2, 8, 2)], &[0.5, 0.9], &[2], 11);
        // Two localities x (serial + one sharded row).
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.matches_serial, "{r:?}");
            assert!(r.wall_ms >= 0.0);
            assert!(r.speedup > 0.0);
            assert_eq!(r.messages, 4 * 2 * 7); // 4 per compute node
        }
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12, "serial row normalises to 1");
        assert_eq!(hier_shard_table(&rows).len(), 4);
    }

    #[test]
    fn threads_axis_deduplicates_the_serial_row() {
        let rows = hier_shard_experiment(&[(2, 8, 2)], &[0.8], &[1, 2], 3);
        // threads=1 in the axis must not duplicate the oracle row.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
    }
}
