//! Experiment L1 — Lemma 1: neighbouring INCs' cycle-transition counts
//! never differ by more than one, measured under skewed clocks in both
//! the tick simulator and the threaded implementation.

use rmb_analysis::Table;
use rmb_async::ThreadedCycleRing;
use rmb_core::{CompactionMode, RmbNetwork};
use rmb_sim::SimRng;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// Result of the Lemma 1 experiment.
#[derive(Debug, Clone)]
pub struct Lemma1Result {
    /// Ring size.
    pub n: u32,
    /// Max skew observed in the tick simulator with jittered activation.
    pub sim_max_skew: u64,
    /// Minimum transitions completed in the tick simulator.
    pub sim_min_transitions: u64,
    /// Max skew observed across real threads, checked at each transition.
    pub threaded_max_skew: u64,
    /// Minimum transitions completed by any thread.
    pub threaded_min_transitions: u64,
    /// `true` when both runs stayed within the Lemma 1 bound.
    pub bound_held: bool,
}

/// Runs Lemma 1 under (a) the handshake-mode tick simulator with random
/// activation periods and live traffic, and (b) the threaded cycle ring
/// with pathological pacing.
pub fn lemma1_experiment(n: u32, seed: u64) -> Lemma1Result {
    // (a) Tick simulator with jittered per-INC activation and traffic.
    let mut rng = SimRng::seed(seed);
    let periods: Vec<u64> = (0..n).map(|_| 1 + rng.index(6).unwrap() as u64).collect();
    let mut net = RmbNetwork::builder(RmbConfig::new(n, 4).expect("valid"))
        .compaction_mode(CompactionMode::Handshake { periods })
        .build();
    for s in 0..n {
        let dst = (s + 1 + rng.index((n - 1) as usize).unwrap() as u32) % n;
        if dst != s {
            net.submit(MessageSpec::new(NodeId::new(s), NodeId::new(dst), 16))
                .expect("valid");
        }
    }
    let mut sim_max_skew = 0;
    while !net.is_quiescent() && net.now().get() < 200_000 {
        net.tick();
        sim_max_skew = sim_max_skew.max(net.max_cycle_skew().unwrap_or(0));
    }
    // Let the cycles keep running a while after traffic drains.
    for _ in 0..2_000 {
        net.tick();
        sim_max_skew = sim_max_skew.max(net.max_cycle_skew().unwrap_or(0));
    }
    let sim_transitions = net.cycle_transitions().unwrap_or_default();
    let sim_min_transitions = sim_transitions.iter().copied().min().unwrap_or(0);

    // (b) Real threads.
    let stats = ThreadedCycleRing::new(n as usize)
        .pacing(vec![0, 2_000, 10, 500, 0, 100])
        .min_transitions(400)
        .run();
    let threaded_min_transitions = stats.transitions.iter().copied().min().unwrap_or(0);

    Lemma1Result {
        n,
        sim_max_skew,
        sim_min_transitions,
        threaded_max_skew: stats.max_observed_skew,
        threaded_min_transitions,
        bound_held: sim_max_skew <= 1 && stats.lemma1_held,
    }
}

impl Lemma1Result {
    /// Renders the result as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["setting", "max neighbour skew", "min transitions"]);
        t.row(vec![
            format!("tick simulator, jittered clocks (N={})", self.n),
            self.sim_max_skew.to_string(),
            self.sim_min_transitions.to_string(),
        ]);
        t.row(vec![
            format!("OS threads, pathological pacing (N={})", self.n),
            self.threaded_max_skew.to_string(),
            self.threaded_min_transitions.to_string(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_bound_holds() {
        let r = lemma1_experiment(10, 42);
        assert!(r.bound_held, "{r:?}");
        assert!(r.sim_max_skew <= 1);
        assert!(r.threaded_max_skew <= 1);
        assert!(r.sim_min_transitions > 0);
        assert!(r.threaded_min_transitions >= 400);
        assert_eq!(r.table().len(), 2);
    }
}
