//! Open-loop load sweep: delivered throughput, latency and bus
//! utilisation as functions of offered load — the figure-style series
//! behind the paper's "full utilisation" narrative.

use rmb_analysis::Table;
use rmb_core::{LogRetention, RmbNetwork};
use rmb_types::RmbConfig;
use rmb_workloads::{SizeDistribution, WorkloadConfig, WorkloadSuite};

/// One point of the load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered per-node injection probability per tick.
    pub offered: f64,
    /// Messages offered within the window.
    pub messages: usize,
    /// Messages delivered by the end of the (extended) run.
    pub delivered: usize,
    /// Delivered flits per tick across the network, measured over the
    /// injection window.
    pub throughput: f64,
    /// Mean end-to-end latency of delivered messages.
    pub mean_latency: f64,
    /// Mean fraction of busy bus segments.
    pub utilization: f64,
}

/// Sweeps Bernoulli offered load over `rates`, each for `window` ticks of
/// injection plus a drain phase.
///
/// Each rate is an independent simulation seeded only by `(n, seed)`, so
/// the points run in parallel; the output order (and any serialized
/// report) is identical to a sequential sweep.
pub fn load_sweep(
    n: u32,
    k: u16,
    rates: &[f64],
    window: u64,
    flits: u32,
    seed: u64,
) -> Vec<LoadPoint> {
    rmb_sim::par::par_map(rates, |&rate| {
        let suite = WorkloadSuite::new(
            WorkloadConfig::new(n, seed).with_sizes(SizeDistribution::Fixed(flits)),
        );
        let msgs = suite.bernoulli(rate, window);
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(16 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .expect("valid");
        // Message sizes are fixed, so the flit count follows from the
        // delivered counter alone — counters-only retention keeps a long
        // sweep's memory flat without changing any output value.
        let mut net = RmbNetwork::builder(cfg)
            .log_retention(LogRetention::CountersOnly)
            .build();
        net.submit_all(msgs.iter().copied()).expect("valid workload");
        let report = net.run_to_quiescence(window * 40 + 100_000);
        let delivered_flits = report.delivered as u64 * (u64::from(flits) + 2);
        LoadPoint {
            offered: rate,
            messages: msgs.len(),
            delivered: report.delivered,
            throughput: delivered_flits as f64 / report.ticks.max(1) as f64,
            mean_latency: report.mean_latency(),
            utilization: report.mean_utilization,
        }
    })
}

/// Renders load-sweep points as a table.
pub fn load_table(points: &[LoadPoint]) -> Table {
    let mut t = Table::new(vec![
        "offered rate",
        "msgs",
        "delivered",
        "flits/tick",
        "mean latency",
        "utilization",
    ]);
    for p in points {
        t.row(vec![
            format!("{:.4}", p.offered),
            p.messages.to_string(),
            p.delivered.to_string(),
            format!("{:.3}", p.throughput),
            format!("{:.1}", p.mean_latency),
            format!("{:.3}", p.utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_utilization_grow_with_load() {
        // Both rates sit below saturation: past it, delivered flits/tick
        // over the (drain-extended) run stops growing with offered load.
        let points = load_sweep(16, 4, &[0.001, 0.004], 3_000, 8, 21);
        assert_eq!(points.len(), 2);
        let (lo, hi) = (&points[0], &points[1]);
        assert_eq!(lo.delivered, lo.messages, "light load fully drains");
        assert_eq!(hi.delivered, hi.messages, "heavier load fully drains");
        assert!(hi.mean_latency > lo.mean_latency);
        assert!(hi.utilization > lo.utilization);
        assert!(hi.throughput > lo.throughput);
        assert_eq!(load_table(&points).len(), 2);
    }
}
