//! The measured experiments of the reproduction (see DESIGN.md §4).
//!
//! Every function here is deterministic given its seed, returns a
//! structured result, and renders to the text tables recorded in
//! EXPERIMENTS.md.

mod ablation;
mod compare;
mod competitive;
mod deadlock;
mod extensions;
mod fault_tolerance;
mod hier_scaling;
mod hier_shard;
mod lemma1;
mod load;
mod open_loop;
mod permutation;
mod scaling;
mod theorem1;

pub use ablation::{ablation_suite, ablation_table, AblationResult};
pub use compare::{comparison_table, cross_check_table, Metric};
pub use competitive::{competitiveness, competitiveness_table, CompetitivenessRow};
pub use deadlock::{deadlock_study, DeadlockResult};
pub use extensions::{
    grid_experiment, grid_table, hotspot_experiment, hotspot_table, multi_send_experiment,
    multi_send_table, multicast_experiment, multicast_table, wire_delay_experiment,
    wire_delay_table, GridRow, HotspotRow, MulticastRow, MultiSendRow, WireDelayRow,
};
pub use fault_tolerance::{
    fault_tolerance_experiment, fault_tolerance_table, FaultToleranceRow,
};
pub use hier_scaling::{hier_scaling_experiment, hier_scaling_table, HierScalingRow};
pub use hier_shard::{hier_shard_experiment, hier_shard_table, HierShardRow};
pub use lemma1::{lemma1_experiment, Lemma1Result};
pub use load::{load_sweep, load_table, LoadPoint};
pub use open_loop::{
    open_loop_experiment, open_loop_soak, open_loop_table, soak_table, OpenLoopRow, SoakRow,
};
pub use permutation::{permutation_comparison, permutation_table, PermutationRow};
pub use scaling::{scaling_experiment, scaling_table, ScalingRow};
pub use theorem1::{theorem1_experiment, Theorem1Result};
