//! Experiment E2 — measured permutation routing: the RMB ring against the
//! hypercube, fat tree and mesh on the paper's §3 workload (permutations),
//! all at the same flit-per-tick wire speed.

use rmb_analysis::{DualRmbRing, RmbRing, Table};
use rmb_baselines::{FatTree, Hypercube, KAryNCube, Mesh2D, Network};
use rmb_types::RmbConfig;
use rmb_workloads::{PermutationKind, WorkloadConfig, WorkloadSuite};

/// One (network, permutation) measurement.
#[derive(Debug, Clone)]
pub struct PermutationRow {
    /// Network label.
    pub network: String,
    /// Permutation family.
    pub permutation: String,
    /// Messages routed.
    pub messages: usize,
    /// Makespan in ticks (0 if the run stalled).
    pub makespan: u64,
    /// Mean message latency.
    pub mean_latency: f64,
    /// Whether the run stalled.
    pub stalled: bool,
}

/// Routes each permutation family over the RMB (single and dual ring) and
/// the three comparators. `n` must be an even power of two and a perfect
/// square to satisfy every topology (16, 64, 256, ...).
pub fn permutation_comparison(n: u32, k: u16, flits: u32, seed: u64) -> Vec<PermutationRow> {
    assert!(n.is_power_of_two(), "comparison needs power-of-two N");
    let side = (n as f64).sqrt().round() as u32;
    assert_eq!(side * side, n, "comparison needs a perfect-square N");

    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, seed)
            .with_sizes(rmb_workloads::SizeDistribution::Fixed(flits)),
    );
    let kinds = [
        PermutationKind::Random,
        PermutationKind::Rotation(1),
        PermutationKind::Opposite,
        PermutationKind::Reversal,
        PermutationKind::BitReversal,
        PermutationKind::Transpose,
    ];
    let rmb_cfg = RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .expect("valid");

    // Generate the (cheap, deterministic) workloads up front, then fan
    // every (permutation, network) simulation out over worker threads.
    // Results return in input order, so the rows match a serial sweep.
    let workloads: Vec<(PermutationKind, Vec<_>)> = kinds
        .iter()
        .map(|&kind| (kind, suite.permutation(kind)))
        .collect();
    let net_count = if side >= 3 { 6 } else { 5 };
    let cells: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..net_count).map(move |which| (w, which)))
        .collect();
    rmb_sim::par::par_map(&cells, |&(w, which)| {
        let (kind, ref msgs) = workloads[w];
        let max_ticks = 4_000_000;
        let mut net: Box<dyn Network> = match which {
            0 => Box::new(RmbRing::new(rmb_cfg)),
            1 => Box::new(DualRmbRing::new(rmb_cfg)),
            2 => Box::new(Hypercube::new(n)),
            3 => Box::new(FatTree::new(n, k)),
            4 => Box::new(Mesh2D::square(n)),
            // §4's k-ary n-cube, as the square torus.
            _ => Box::new(KAryNCube::new(side, 2)),
        };
        let out = net.route_messages(msgs, max_ticks);
        PermutationRow {
            network: net.label(),
            permutation: kind.to_string(),
            messages: msgs.len(),
            makespan: if out.delivered.len() == msgs.len() {
                out.makespan()
            } else {
                0
            },
            mean_latency: out.mean_latency(),
            stalled: out.stalled || out.delivered.len() != msgs.len(),
        }
    })
}

/// Renders permutation-comparison rows as a table.
pub fn permutation_table(rows: &[PermutationRow]) -> Table {
    let mut t = Table::new(vec![
        "permutation",
        "network",
        "msgs",
        "makespan",
        "mean latency",
    ]);
    for r in rows {
        t.row(vec![
            r.permutation.clone(),
            r.network.clone(),
            r.messages.to_string(),
            if r.stalled {
                "stalled".into()
            } else {
                r.makespan.to_string()
            },
            format!("{:.1}", r.mean_latency),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_all_networks_on_small_instance() {
        let rows = permutation_comparison(16, 4, 8, 3);
        assert_eq!(rows.len(), 6 * 6);
        // Everything completes at this size.
        for r in &rows {
            assert!(!r.stalled, "{} stalled on {}", r.network, r.permutation);
            assert!(r.makespan > 0);
        }
        // Shape check (paper §3): for the nearest-neighbour rotation the
        // ring is unbeatable-ish; for the opposite permutation the
        // hypercube's log-distance wins over the one-way ring.
        let find = |perm: &str, net_prefix: &str| {
            rows.iter()
                .find(|r| r.permutation == perm && r.network.starts_with(net_prefix))
                .unwrap()
        };
        let ring_rot = find("rotation(1)", "rmb");
        let cube_rot = find("rotation(1)", "hypercube");
        assert!(ring_rot.makespan <= cube_rot.makespan * 2);
        let ring_opp = find("opposite", "rmb");
        let cube_opp = find("opposite", "hypercube");
        assert!(cube_opp.makespan < ring_opp.makespan);
        // Dual ring at least matches the single ring on the reversal.
        let single_rev = find("reversal", "rmb");
        let dual_rev = find("reversal", "dual-rmb");
        assert!(dual_rev.makespan <= single_rev.makespan);
        // The torus (mesh + wraps) never loses to the plain mesh by much.
        let torus_opp = find("opposite", "torus");
        let mesh_opp = find("opposite", "mesh");
        assert!(torus_opp.makespan <= 2 * mesh_opp.makespan);
        let t = permutation_table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
