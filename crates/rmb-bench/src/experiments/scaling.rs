//! Scaling sweep: how the ring, dual-ring and grid-of-rings makespans
//! grow with N on far traffic — the measured version of the paper's
//! scalability discussion (§1: modules composed into larger systems;
//! §4: 2-D grids as future work).

use rmb_analysis::{DualRmbRing, RmbGrid, RmbRing, Table};
use rmb_baselines::Network;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// One (N, network) scaling point.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// System size.
    pub n: u32,
    /// Network label.
    pub network: String,
    /// Makespan on the shared workload (0 = incomplete).
    pub makespan: u64,
}

/// Sweeps square system sizes. For each `side` in `sides`, routes a
/// staggered rotation-by-(N/2+1) workload (far traffic) over one ring
/// with `2k` buses and a `side × side` grid of `k`-bus rings — equal
/// wiring — plus the dual ring at `k` buses per direction.
///
/// Every (side, network) cell is an independent simulation, so the grid
/// fans out over worker threads; results come back in input order, so the
/// rows (and any serialized report) are identical to a sequential sweep.
pub fn scaling_experiment(sides: &[u32], k: u16, flits: u32) -> Vec<ScalingRow> {
    let cells: Vec<(u32, usize)> = sides
        .iter()
        .flat_map(|&side| (0..3).map(move |which| (side, which)))
        .collect();
    rmb_sim::par::par_map(&cells, |&(side, which)| {
        let n = side * side;
        let msgs: Vec<MessageSpec> = (0..n)
            .map(|s| {
                MessageSpec::new(NodeId::new(s), NodeId::new((s + n / 2 + 1) % n), flits)
                    .at(u64::from(s) * 24)
            })
            .filter(|m| m.source != m.destination)
            .collect();
        let max_ticks = 16_000_000;
        let cfg = |nodes: u32, buses: u16| {
            RmbConfig::builder(nodes, buses)
                .head_timeout(16 * u64::from(nodes))
                .retry_backoff(u64::from(nodes))
                .build()
                .expect("valid")
        };
        let mut net: Box<dyn Network> = match which {
            0 => Box::new(RmbRing::new(cfg(n, 2 * k))),
            1 => Box::new(DualRmbRing::new(cfg(n, k))),
            _ => Box::new(RmbGrid::new(side, side, cfg(side, k))),
        };
        let out = net.route_messages(&msgs, max_ticks);
        ScalingRow {
            n,
            network: net.label(),
            makespan: if out.delivered.len() == msgs.len() {
                out.makespan()
            } else {
                0
            },
        }
    })
}

/// Renders scaling rows.
pub fn scaling_table(rows: &[ScalingRow]) -> Table {
    let mut t = Table::new(vec!["N", "network", "makespan"]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.network.clone(),
            if r.makespan == 0 {
                "incomplete".into()
            } else {
                r.makespan.to_string()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_scales_better_than_the_ring() {
        let rows = scaling_experiment(&[4, 6], 2, 8);
        assert_eq!(rows.len(), 6);
        let get = |n: u32, prefix: &str| {
            rows.iter()
                .find(|r| r.n == n && r.network.starts_with(prefix))
                .unwrap()
                .makespan
        };
        for n in [16u32, 36] {
            assert!(get(n, "rmb(") > 0, "ring incomplete at N={n}");
            assert!(get(n, "rmb-grid") > 0, "grid incomplete at N={n}");
        }
        // The ring's makespan grows faster than the grid's between the
        // two sizes.
        let ring_growth = get(36, "rmb(") as f64 / get(16, "rmb(") as f64;
        let grid_growth = get(36, "rmb-grid") as f64 / get(16, "rmb-grid") as f64;
        assert!(
            grid_growth < ring_growth,
            "grid {grid_growth:.2}x vs ring {ring_growth:.2}x"
        );
        assert_eq!(scaling_table(&rows).len(), 6);
    }
}
