//! Experiment TH1 — Theorem 1: full utilisation of the multiple bus
//! system. A probe request whose clockwise path has a free segment on
//! every hop (the availability oracle) must be served without refusal,
//! however the existing circuits happen to be placed.

use rmb_analysis::Table;
use rmb_core::RmbNetwork;
use rmb_sim::SimRng;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// Result of the Theorem 1 admission experiment.
#[derive(Debug, Clone)]
pub struct Theorem1Result {
    /// Trials in which the oracle said the probe's path was feasible.
    pub feasible_trials: u32,
    /// Of those, probes delivered without a single refusal.
    pub admitted_without_refusal: u32,
    /// Trials the oracle rejected (left unsubmitted — no claim applies).
    pub infeasible_trials: u32,
    /// Mean probe admission latency (request to circuit) in ticks.
    pub mean_setup_latency: f64,
}

impl Theorem1Result {
    /// Fraction of oracle-feasible probes served refusal-free; Theorem 1
    /// asserts this is 1.
    pub fn admission_rate(&self) -> f64 {
        if self.feasible_trials == 0 {
            return 1.0;
        }
        f64::from(self.admitted_without_refusal) / f64::from(self.feasible_trials)
    }

    /// Renders the result as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec![
            "oracle-feasible probe trials".into(),
            self.feasible_trials.to_string(),
        ]);
        t.row(vec![
            "admitted without refusal".into(),
            self.admitted_without_refusal.to_string(),
        ]);
        t.row(vec![
            "admission rate".into(),
            format!("{:.3}", self.admission_rate()),
        ]);
        t.row(vec![
            "oracle-infeasible (skipped)".into(),
            self.infeasible_trials.to_string(),
        ]);
        t.row(vec![
            "mean probe setup latency".into(),
            format!("{:.1}", self.mean_setup_latency),
        ]);
        t
    }
}

/// Runs `trials` probe experiments on an `n`-node, `k`-bus RMB loaded
/// with random background circuits.
pub fn theorem1_experiment(n: u32, k: u16, trials: u32, seed: u64) -> Theorem1Result {
    let mut rng = SimRng::seed(seed);
    let mut feasible = 0;
    let mut admitted = 0;
    let mut infeasible = 0;
    let mut setup_sum = 0.0;
    for trial in 0..trials {
        let mut net = RmbNetwork::new(RmbConfig::new(n, k).expect("valid"));
        // Background: a random batch of long-running circuits, staggered
        // so they establish cleanly, then allowed to settle.
        let background = 1 + rng.index(k as usize).unwrap() as u32;
        for b in 0..background {
            let src = rng.index(n as usize).unwrap() as u32;
            let dst = (src + 1 + rng.index((n - 1) as usize).unwrap() as u32) % n;
            net.submit(
                MessageSpec::new(NodeId::new(src), NodeId::new(dst), 100_000).at(u64::from(b) * 8),
            )
            .expect("valid");
        }
        net.run(u64::from(background) * 8 + 4 * u64::from(n));
        // Theorem 1 speaks about circuits already in place. A background
        // request still retrying injection here is invisible to the oracle
        // below but may claim the probe's destination later, so such
        // trials fall outside the theorem's premise: skip them.
        if net.virtual_buses().count() != background as usize {
            infeasible += 1;
            continue;
        }

        // Probe: a random message between idle endpoints.
        let (mut src, mut dst) = (0u32, 0u32);
        let mut found = false;
        for _ in 0..50 {
            src = rng.index(n as usize).unwrap() as u32;
            dst = (src + 1 + rng.index((n - 1) as usize).unwrap() as u32) % n;
            let busy_endpoint = net.virtual_buses().any(|b| {
                b.spec.source.index() == src || b.spec.destination.index() == dst
            });
            if !busy_endpoint {
                found = true;
                break;
            }
        }
        if !found {
            infeasible += 1;
            continue;
        }
        if !net.path_feasible(NodeId::new(src), NodeId::new(dst)) {
            infeasible += 1;
            continue;
        }
        feasible += 1;
        let probe_at = net.now().get();
        net.submit(MessageSpec::new(NodeId::new(src), NodeId::new(dst), 4).at(probe_at))
            .expect("valid");
        // Run until the probe finishes (background circuits are huge and
        // keep streaming).
        let deadline = probe_at + 10_000;
        let mut probe_done = None;
        while net.now().get() < deadline {
            net.tick();
            if let Some(d) = net
                .delivered_log()
                .iter()
                .find(|d| d.spec.source == NodeId::new(src) && d.spec.data_flits == 4)
            {
                probe_done = Some(*d);
                break;
            }
        }
        if let Some(d) = probe_done {
            if d.refusals == 0 {
                admitted += 1;
                setup_sum += d.setup_latency() as f64;
            }
        }
        let _ = trial;
    }
    Theorem1Result {
        feasible_trials: feasible,
        admitted_without_refusal: admitted,
        infeasible_trials: infeasible,
        mean_setup_latency: if admitted > 0 {
            setup_sum / f64::from(admitted)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_probes_are_always_admitted() {
        let r = theorem1_experiment(12, 3, 40, 7);
        assert!(r.feasible_trials > 10, "{r:?}");
        assert_eq!(
            r.admission_rate(),
            1.0,
            "Theorem 1 violated: {r:?}"
        );
        assert!(r.mean_setup_latency > 0.0);
        assert!(r.table().len() >= 5);
    }
}
