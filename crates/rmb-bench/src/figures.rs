//! Regeneration of the paper's Figures 1–11 as text, each produced by
//! driving the *live* implementation rather than by printing canned
//! strings (except for captions).

use rmb_analysis::Table;
use rmb_baselines::FatTree;
use rmb_core::{
    assessed_in_phase, mbb_stages_downstream, mbb_stages_upstream, render_occupancy,
    render_virtual_buses, CycleController, CycleFlags, Phase, RmbNetwork, SourceDir,
};
use rmb_types::{BusIndex, MessageSpec, NodeId, RmbConfig};
use std::fmt::Write as _;

/// Renders one figure by number (1–11). Figures 9 and 10 share the cycle
/// state machine and both map to the same walk.
///
/// # Panics
///
/// Panics for numbers outside 1..=11.
pub fn figure(n: u32) -> String {
    match n {
        1 => fig1_multiple_bus_system(),
        2 => fig2_physical_vs_virtual(),
        3 => fig3_compaction_process(),
        4 => fig4_make_before_break(),
        5 => fig5_two_cycle_move(),
        6 => fig6_port_mapping(),
        7 => fig7_four_conditions(),
        8 => fig8_assessment_pattern(),
        9 | 10 => fig10_state_machine_walk(),
        11 => fig11_fat_tree(),
        _ => panic!("the paper has figures 1 through 11"),
    }
}

fn fig1_multiple_bus_system() -> String {
    let net = RmbNetwork::new(RmbConfig::new(8, 4).expect("valid"));
    format!(
        "Figure 1 — A multiple bus system (N = 8 nodes, k = 4 bus segments\n\
         between each pair of adjacent INCs; column i is the segment array\n\
         between INC i and INC i+1, data flows clockwise):\n\n{}",
        render_occupancy(&net)
    )
}

fn fig2_physical_vs_virtual() -> String {
    let mut net = RmbNetwork::new(RmbConfig::new(10, 4).expect("valid"));
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(6), 200))
        .expect("valid");
    net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(8), 200))
        .expect("valid");
    net.submit(MessageSpec::new(NodeId::new(4), NodeId::new(9), 200))
        .expect("valid");
    net.run(40);
    format!(
        "Figure 2 — Physical bus segments and virtual buses: three live\n\
         circuits after compaction; each letter marks the physical segments\n\
         one virtual bus currently occupies.\n\n{}\n{}",
        render_occupancy(&net),
        render_virtual_buses(&net)
    )
}

fn fig3_compaction_process() -> String {
    let mut net = RmbNetwork::new(RmbConfig::new(10, 4).expect("valid"));
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(7), 300))
        .expect("valid");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — Buses and the compaction process: a request enters on\n\
         the top bus and is moved down to the lowest free segments while it\n\
         keeps running.\n"
    );
    for checkpoint in [3u64, 6, 10, 24] {
        while net.now().get() < checkpoint {
            net.tick();
        }
        let _ = writeln!(out, "t = {checkpoint}:");
        let _ = writeln!(out, "{}", render_occupancy(&net));
    }
    out
}

fn fig4_make_before_break() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — Make-Before-Break connection strategy. Moving one hop\n\
         from bus l to bus l-1: the upstream INC first drives both output\n\
         ports with the same data (make), then drops the old one (break).\n\
         Status-register codes per Table 1 (old port at l / new port at l-1):\n"
    );
    let stages = mbb_stages_upstream(SourceDir::Straight).expect("straight input is movable");
    for s in stages {
        let _ = writeln!(
            out,
            "  {:<10} old-port={} new-port={}",
            s.label, s.old_port, s.new_port
        );
    }
    let _ = writeln!(
        out,
        "\nDownstream INC (its consuming output port, old input l then both\n\
         then only the new input l-1):\n"
    );
    for s in mbb_stages_downstream(SourceDir::Below).expect("down output is movable") {
        let _ = writeln!(out, "  {:<10} port={}", s.label, s.old_port);
    }
    out
}

fn fig5_two_cycle_move() -> String {
    // One established circuit parked at the top with everything below
    // free: one even plus one odd cycle move the whole bus down a level.
    let mut net = RmbNetwork::new(RmbConfig::new(8, 4).expect("valid"));
    net.submit(MessageSpec::new(NodeId::new(1), NodeId::new(6), 300))
        .expect("valid");
    // Let the circuit establish without compacting: run with compaction
    // off first is not configurable post-hoc, so instead capture right
    // after establishment and show the next two phases.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — Moving an entire virtual bus down in two cycles: the\n\
         odd/even assessment rule moves alternating hops in one cycle and\n\
         the remaining hops in the next.\n"
    );
    net.run(6);
    let _ = writeln!(out, "after establishment (t = {}):", net.now());
    let _ = writeln!(out, "{}", render_occupancy(&net));
    net.tick();
    let _ = writeln!(out, "after one further cycle (t = {}):", net.now());
    let _ = writeln!(out, "{}", render_occupancy(&net));
    net.tick();
    let _ = writeln!(out, "after the second cycle (t = {}):", net.now());
    let _ = writeln!(out, "{}", render_occupancy(&net));
    out
}

fn fig6_port_mapping() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — Mapping between I/O ports of an INC (k = 4): each\n\
         output port l may receive from input ports {{l-1, l, l+1}}:\n"
    );
    let k = 4u16;
    for l in (0..k).rev() {
        let inputs: Vec<String> = SourceDir::ALL
            .iter()
            .filter_map(|d| {
                let inp = i32::from(l) + d.offset();
                (inp >= 0 && inp < i32::from(k)).then(|| format!("in{inp} ({d})"))
            })
            .collect();
        let _ = writeln!(out, "  out{l} <- {}", inputs.join(", "));
    }
    out
}

fn fig7_four_conditions() -> String {
    use rmb_core::{EndpointHeight, HopContext};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — The four conditions for moving a transaction from bus l\n\
         to bus l-1 (l = 2 shown). 'up' is the neighbouring hop on the\n\
         upstream side, 'down' on the downstream side; exactly the four\n\
         combinations with both neighbours at l or l-1 are switchable:\n"
    );
    let l = BusIndex::new(2);
    for up in [1u16, 2, 3] {
        for down in [1u16, 2, 3] {
            let ctx = HopContext {
                height: l,
                top: BusIndex::new(3),
                upstream: EndpointHeight::At(BusIndex::new(up)),
                downstream: EndpointHeight::At(BusIndex::new(down)),
                below_free: true,
            };
            match ctx.switchable_down() {
                Some(cond) => {
                    let _ = writeln!(
                        out,
                        "  up=b{up} down=b{down}: condition {} ({cond})",
                        cond.number()
                    );
                }
                None => {
                    let _ = writeln!(out, "  up=b{up} down=b{down}: not switchable");
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "\nUpstream register sequences (old port / new port), per Table 1:"
    );
    for (name, dir) in [("straight in", SourceDir::Straight), ("low in", SourceDir::Below)] {
        if let Some(stages) = mbb_stages_upstream(dir) {
            let seq_old: Vec<String> = stages.iter().map(|s| s.old_port.to_string()).collect();
            let seq_new: Vec<String> = stages.iter().map(|s| s.new_port.to_string()).collect();
            let _ = writeln!(
                out,
                "  {name:<12} old: {}   new: {}",
                seq_old.join(" -> "),
                seq_new.join(" -> ")
            );
        }
    }
    let _ = writeln!(out, "Downstream register sequences:");
    for (name, dir) in [("straight out", SourceDir::Straight), ("down out", SourceDir::Below)] {
        if let Some(stages) = mbb_stages_downstream(dir) {
            let seq: Vec<String> = stages.iter().map(|s| s.old_port.to_string()).collect();
            let _ = writeln!(out, "  {name:<12} {}", seq.join(" -> "));
        }
    }
    out
}

fn fig8_assessment_pattern() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — Which (INC, segment) pairs are assessed for compaction\n\
         in each cycle ('E' = assessed in even cycles, 'O' = in odd):\n"
    );
    let (n, k) = (8u32, 4u16);
    for l in (0..k).rev() {
        let _ = write!(out, "  b{l} |");
        for i in 0..n {
            let c = if assessed_in_phase(NodeId::new(i), BusIndex::new(l), Phase::Even) {
                'E'
            } else {
                'O'
            };
            let _ = write!(out, " {c}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "      {}", (0..n).map(|i| format!("{i} ")).collect::<String>());
    out
}

fn fig10_state_machine_walk() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figures 9/10 — The four switching states of each INC and the\n\
         odd/even transition rules, walked on a live controller with both\n\
         neighbours mirroring the same protocol:\n"
    );
    let mut ctl = CycleController::new(Phase::Even);
    ctl.set_internal_done(true);
    let steps: [(&str, CycleFlags); 4] = [
        ("neighbours idle (LD=LC=RD=RC=0)", CycleFlags { data: false, cycle: false }),
        ("neighbours' datapaths done (LD=RD=1)", CycleFlags { data: true, cycle: false }),
        ("neighbours' cycles changed (LC=RC=1)", CycleFlags { data: true, cycle: true }),
        ("neighbours' data flags low (LD=RD=0)", CycleFlags { data: false, cycle: true }),
    ];
    for (label, nb) in steps {
        let before = ctl.state();
        let step = ctl.step(nb, nb);
        let _ = writeln!(
            out,
            "  {before:<20} --[{label}]--> {:<20} ({step:?}, phase {})",
            ctl.state().to_string(),
            ctl.phase()
        );
    }
    let _ = writeln!(
        out,
        "\nRules: OD<-1 if ID & !LC & !RC;  OC<-1 if OD & LD & RD;\n\
         OD<-0 if OD & LC & RC;  OC<-0 if OC & !LD & !RD."
    );
    out
}

fn fig11_fat_tree() -> String {
    let tree = FatTree::new(16, 4);
    let mut t = Table::new(vec!["level (subtree leaves)", "edges", "capacity each"]);
    let mut s = 1u32;
    while s < 16 {
        t.row(vec![
            format!("{s}"),
            format!("{}", 16 / s),
            format!("{}", tree.capacity_above_subtree(s)),
        ]);
        s *= 2;
    }
    format!(
        "Figure 11 — A fat tree supporting a k-permutation (N = 16, k = 4):\n\
         channel capacities double going up and are capped at k.\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_render_nonempty() {
        for n in 1..=11 {
            let s = figure(n);
            assert!(s.len() > 80, "figure {n} too short:\n{s}");
            assert!(s.contains("Figure"), "figure {n} missing caption");
        }
    }

    #[test]
    #[should_panic(expected = "figures 1 through 11")]
    fn figure_zero_panics() {
        let _ = figure(0);
    }

    #[test]
    fn fig7_names_exactly_four_conditions() {
        let s = figure(7);
        assert_eq!(s.matches(": condition").count(), 4);
        assert_eq!(s.matches("not switchable").count(), 5);
        // The emblematic downstream sequence from the paper.
        assert!(s.contains("100 -> 110 -> 010"));
    }

    #[test]
    fn fig8_alternates_by_parity() {
        let s = figure(8);
        assert!(s.contains("E O") || s.contains("O E"));
    }

    #[test]
    fn fig5_shows_descent() {
        let s = figure(5);
        // Occupancy art at three checkpoints.
        assert_eq!(s.matches("b3 |").count(), 3);
    }

    #[test]
    fn fig10_walks_all_four_states() {
        let s = figure(10);
        for state in [
            "ready-for-datapath",
            "datapath-switched",
            "cycle-switched",
            "preparing-next",
        ] {
            assert!(s.contains(state), "missing {state}:\n{s}");
        }
    }
}
