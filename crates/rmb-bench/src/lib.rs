//! The experiment harness for the RMB reproduction.
//!
//! Every table and figure of the paper maps to a function here (see
//! DESIGN.md's experiment index); the `tables`, `figures`, `compare` and
//! `experiments` binaries are thin command-line wrappers around this
//! library so that everything they print is also exercised by tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod registry;
pub mod rows;
pub mod tables;
