//! Registry of runnable experiments.
//!
//! The `experiments` binary used to be a hand-rolled `if`-chain: every
//! new experiment meant editing the argument parser, the usage string and
//! the dispatch logic in three places. The registry replaces that with a
//! list of [`Experiment`] trait objects — one entry per experiment,
//! carrying its name, a one-line description and its run logic (including
//! the size clamps each study needs). The binary just iterates; `--list`
//! and the usage string fall out of the same table.

use crate::experiments::{
    ablation_suite, ablation_table, competitiveness, competitiveness_table, deadlock_study,
    fault_tolerance_experiment, fault_tolerance_table, grid_experiment, grid_table,
    hier_scaling_experiment, hier_scaling_table, hier_shard_experiment, hier_shard_table,
    hotspot_experiment, hotspot_table,
    lemma1_experiment, load_sweep, load_table, multi_send_experiment, multi_send_table,
    multicast_experiment, multicast_table, open_loop_experiment, open_loop_soak, open_loop_table,
    permutation_comparison, permutation_table, scaling_experiment, scaling_table, soak_table,
    theorem1_experiment, wire_delay_experiment, wire_delay_table,
};
use crate::rows::JsonReport;

/// Knobs shared by every experiment, parsed once by the binary.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Node count (experiments clamp as their study requires).
    pub n: u32,
    /// Buses per ring.
    pub k: u16,
    /// Data flits per message.
    pub flits: u32,
    /// Deterministic seed.
    pub seed: u64,
    /// `true` when running the whole suite (`--exp all`); some
    /// experiments pick a smaller default size in that case.
    pub all: bool,
    /// Optional tick budget override (`--ticks`), used by the open-loop
    /// sweep and soak.
    pub ticks: Option<u64>,
    /// Optional single offered rate override (`--rate`) for rate sweeps.
    pub rate: Option<f64>,
    /// Engine threads (`--threads`, default 1 = serial) for experiments
    /// driving the sharded hierarchy engine. Orthogonal to `RMB_THREADS`,
    /// which parallelises sweep *cells*; this parallelises ring advancement
    /// *inside* one simulation. Results are identical either way — only
    /// the wall-clock columns move.
    pub threads: usize,
    /// Scenario file for the `scenario` experiment (`--scenario`). The
    /// arm is a no-op when absent, so `--exp all` skips it.
    pub scenario: Option<String>,
}

/// One emitted result: a JSON row set plus its rendered text table.
#[derive(Debug, Clone)]
pub struct ExpOutput {
    /// Name used in the JSON envelope (usually the experiment name; the
    /// deadlock study emits three differently-named outputs).
    pub name: String,
    /// Text-mode heading printed before the table (empty = none).
    pub heading: String,
    /// JSON body for `{"experiment": name, "rows": ...}`.
    pub rows_json: String,
    /// Rendered text table.
    pub table: String,
    /// Text-mode footer printed after the table (empty = none).
    pub footer: String,
}

impl ExpOutput {
    fn new(
        name: &str,
        heading: String,
        rows: &impl JsonReport,
        table: impl std::fmt::Display,
    ) -> Self {
        ExpOutput {
            name: name.to_string(),
            heading,
            rows_json: rows.to_json(),
            table: table.to_string(),
            footer: String::new(),
        }
    }
}

/// A runnable, listable experiment.
pub trait Experiment {
    /// CLI name (`--exp <name>`).
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Runs the experiment and returns its outputs (usually one).
    fn run(&self, cx: &ExpContext) -> Vec<ExpOutput>;
}

macro_rules! experiment {
    ($ty:ident, $name:literal, $desc:literal, |$cx:ident| $body:expr) => {
        struct $ty;
        impl Experiment for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn description(&self) -> &'static str {
                $desc
            }
            fn run(&self, $cx: &ExpContext) -> Vec<ExpOutput> {
                $body
            }
        }
    };
}

experiment!(
    Lemma1,
    "lemma1",
    "cycle-transition skew bound (Lemma 1)",
    |cx| {
        let r = lemma1_experiment(cx.n.min(24), cx.seed);
        let mut out = ExpOutput::new(
            "lemma1",
            "Experiment L1 — Lemma 1 (cycle-transition skew bound):".into(),
            &r,
            r.table(),
        );
        out.footer = format!("bound held: {}", r.bound_held);
        vec![out]
    }
);

experiment!(
    Theorem1,
    "theorem1",
    "full utilisation / admission (Theorem 1)",
    |cx| {
        let r = theorem1_experiment(cx.n.min(32), cx.k, 60, cx.seed);
        vec![ExpOutput::new(
            "theorem1",
            "Experiment TH1 — Theorem 1 (full utilisation / admission):".into(),
            &r,
            r.table(),
        )]
    }
);

experiment!(
    Permutation,
    "permutation",
    "measured permutation routing across five networks",
    |cx| {
        let n = if cx.all { 16 } else { cx.n };
        let rows = permutation_comparison(n, cx.k.min(8), cx.flits, cx.seed);
        vec![ExpOutput::new(
            "permutation",
            format!(
                "Experiment E2 — measured permutation routing (N = {n}, k = {}):",
                cx.k.min(8)
            ),
            &rows,
            permutation_table(&rows),
        )]
    }
);

experiment!(
    Competitiveness,
    "competitiveness",
    "online schedule vs offline bound",
    |cx| {
        let rows = competitiveness(cx.n.min(32), cx.k, cx.flits, cx.seed);
        vec![ExpOutput::new(
            "competitiveness",
            format!(
                "Experiment E1 — competitiveness vs offline schedule (N = {}, k = {}):",
                cx.n.min(32),
                cx.k
            ),
            &rows,
            competitiveness_table(&rows),
        )]
    }
);

experiment!(Ablation, "ablation", "feature ablation suite", |cx| {
    let rows = ablation_suite(cx.n.min(32), cx.k.min(4), cx.flits, cx.seed);
    vec![ExpOutput::new(
        "ablation",
        format!("Ablations (N = {}, k = {}):", cx.n.min(32), cx.k.min(4)),
        &rows,
        ablation_table(&rows),
    )]
});

experiment!(
    Load,
    "load",
    "closed-loop load sweep (batch to quiescence)",
    |cx| {
        let rates = [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05];
        let points = load_sweep(cx.n.min(32), cx.k, &rates, 4_000, cx.flits, cx.seed);
        vec![ExpOutput::new(
            "load",
            format!("Load sweep (N = {}, k = {}):", cx.n.min(32), cx.k),
            &points,
            load_table(&points),
        )]
    }
);

experiment!(
    Multicast,
    "multicast",
    "multicast extension vs unicast series",
    |cx| {
        let rows = multicast_experiment(cx.n.min(32), cx.k.min(4), cx.flits);
        vec![ExpOutput::new(
            "multicast",
            format!(
                "Multicast extension (N = {}, k = {}):",
                cx.n.min(32),
                cx.k.min(4)
            ),
            &rows,
            multicast_table(&rows),
        )]
    }
);

experiment!(
    WireDelay,
    "wire-delay",
    "wire-length effects under layout-aware delays",
    |cx| {
        let n = if cx.n.is_power_of_two() {
            cx.n.min(64)
        } else {
            16
        };
        let rows = wire_delay_experiment(n, cx.k.min(8), cx.flits, cx.seed);
        vec![ExpOutput::new(
            "wire-delay",
            format!("Wire-length effects (N = {n}, k = {}):", cx.k.min(8)),
            &rows,
            wire_delay_table(&rows),
        )]
    }
);

experiment!(Grid, "grid", "2-D grid of rings vs one ring", |cx| {
    let rows = grid_experiment(6, cx.k.min(4), cx.flits);
    vec![ExpOutput::new(
        "grid",
        "2-D grid of rings vs one ring (36 nodes, equal wiring):".into(),
        &rows,
        grid_table(&rows),
    )]
});

experiment!(
    Scaling,
    "scaling",
    "scaling sweep: ring vs dual ring vs grid",
    |cx| {
        let rows = scaling_experiment(&[4, 6, 8], cx.k.min(2), cx.flits.min(8));
        vec![ExpOutput::new(
            "scaling",
            "Scaling sweep — ring vs dual ring vs grid of rings:".into(),
            &rows,
            scaling_table(&rows),
        )]
    }
);

experiment!(
    Hotspot,
    "hotspot",
    "hot-spot traffic vs receive slots",
    |cx| {
        let rows = hotspot_experiment(cx.n.min(24), cx.k.min(4), 0.004, 0.6, cx.seed);
        vec![ExpOutput::new(
            "hotspot",
            format!("Hot-spot traffic vs receive slots (N = {}):", cx.n.min(24)),
            &rows,
            hotspot_table(&rows),
        )]
    }
);

experiment!(
    MultiSend,
    "multi-send",
    "multiple sends per PE (hot source)",
    |cx| {
        let rows = multi_send_experiment(cx.n.min(16), cx.k.min(4), cx.flits);
        vec![ExpOutput::new(
            "multi-send",
            format!("Multiple sends per PE (hot source, N = {}):", cx.n.min(16)),
            &rows,
            multi_send_table(&rows),
        )]
    }
);

experiment!(
    FaultTolerance,
    "fault-tolerance",
    "throughput under failing bus segments",
    |cx| {
        let n = cx.n.min(32);
        let k = cx.k.min(8);
        let fractions = [0.0, 0.05, 0.1, 0.15, 0.2];
        let mut sizes = vec![(n, k.min(4))];
        if k > 4 {
            sizes.push((n, k));
        }
        let rows = fault_tolerance_experiment(&sizes, &fractions, cx.flits, cx.seed);
        vec![ExpOutput::new(
            "fault-tolerance",
            format!("Fault tolerance — throughput under failing segments (N = {n}, k = {k}):"),
            &rows,
            fault_tolerance_table(&rows),
        )]
    }
);

experiment!(
    HierScaling,
    "hier-scaling",
    "bridged rings vs flat ring across localities",
    |cx| {
        // Per-ring size from --n (capped), buses from --k; flat total is
        // rings * n.
        let n = cx.n.min(16);
        let k = cx.k.min(4);
        let shapes = [(2, n, k), (4, n, k)];
        let localities = [0.0, 0.5, 0.8, 0.95];
        let rows = hier_scaling_experiment(&shapes, &localities, cx.flits.min(8), cx.seed, cx.threads);
        vec![ExpOutput::new(
            "hier-scaling",
            format!("Hierarchical scaling — bridged rings vs flat ring (n/ring = {n}, k = {k}):"),
            &rows,
            hier_scaling_table(&rows),
        )]
    }
);

experiment!(
    HierShard,
    "hier-shard",
    "sharded-engine speedup grid: threads x rings x locality",
    |cx| {
        // Per-ring size from --n (capped), buses from --k. The thread
        // axis comes from --threads: every power of two up to it, so
        // `--threads 4` measures {1, 2, 4}. Shapes reach 64 rings so the
        // parallel phase dominates the coordinator.
        let n = cx.n.min(16);
        let k = cx.k.min(4);
        let shapes: &[(u32, u32, u16)] = if cx.all {
            &[(8, 8, 2)]
        } else {
            &[(16, n, k), (64, n, k)]
        };
        let localities = [0.5, 0.9];
        let mut axis = vec![];
        let mut t = 2usize;
        while t <= cx.threads.max(2) {
            axis.push(t);
            t *= 2;
        }
        let rows = hier_shard_experiment(shapes, &localities, &axis, cx.seed);
        vec![ExpOutput::new(
            "hier-shard",
            format!(
                "Sharded hierarchy engine — wall-clock speedup vs serial (n/ring = {n}, k = {k}):"
            ),
            &rows,
            hier_shard_table(&rows),
        )]
    }
);

experiment!(
    Deadlock,
    "deadlock",
    "deadlock study: saturated, symmetric, staggered",
    |_cx| {
        let saturated = deadlock_study(16, 4, 8, 0);
        let symmetric = deadlock_study(8, 8, 4, 0);
        let staggered = deadlock_study(8, 8, 4, 16);
        vec![
            ExpOutput::new(
                "deadlock-saturated",
                "Deadlock study — saturated simultaneous injection (N = 16, k = 4):".into(),
                &saturated,
                saturated.table(),
            ),
            ExpOutput::new(
                "deadlock-symmetric",
                "Below saturation, simultaneous symmetric injection (N = 8, k = 8):".into(),
                &symmetric,
                symmetric.table(),
            ),
            ExpOutput::new(
                "deadlock-staggered",
                "Same workload, injections staggered by 16 ticks:".into(),
                &staggered,
                staggered.table(),
            ),
        ]
    }
);

experiment!(
    OpenLoop,
    "open_loop",
    "open-loop serving sweep: latency percentiles vs offered load",
    |cx| {
        let n = cx.n.min(16);
        let k = cx.k.min(4);
        let duration = cx.ticks.unwrap_or(15_000);
        let default_rates = [0.002, 0.005, 0.01, 0.02, 0.04, 0.08];
        let rates: Vec<f64> = match cx.rate {
            Some(r) => vec![r],
            None => default_rates.to_vec(),
        };
        let rows = open_loop_experiment(n, k, cx.flits.min(8), &rates, duration, cx.seed, cx.threads);
        vec![ExpOutput::new(
            "open_loop",
            format!(
                "Open-loop serving — latency vs offered load (N = {n}, k = {k}, {} ticks/cell):",
                duration + 2_000
            ),
            &rows,
            open_loop_table(&rows),
        )]
    }
);

experiment!(
    OpenLoopSoak,
    "open-loop-soak",
    "bounded-memory serving soak under counters-only retention",
    |cx| {
        let n = cx.n.min(16);
        let k = cx.k.min(4);
        let ticks = cx.ticks.unwrap_or(200_000);
        let rate = cx.rate.unwrap_or(0.004);
        let row = open_loop_soak(n, k, rate, ticks, cx.seed);
        vec![ExpOutput::new(
            "open-loop-soak",
            format!("Open-loop soak — counters-only retention (N = {n}, k = {k}, {ticks} ticks):"),
            &row,
            soak_table(&row),
        )]
    }
);

experiment!(
    ScenarioExp,
    "scenario",
    "declarative scenario file (--scenario file.toml)",
    |cx| {
        match cx.scenario.as_deref() {
            Some(path) => run_scenario_file(path),
            None => vec![],
        }
    }
);

/// Loads, validates and runs one scenario file, writing any recorded
/// trace next to the scenario. Exits with status 2 on any error — the
/// scenario arm only runs from the CLI, and the whole point of the
/// schema layer is that the message already names the key and line.
fn run_scenario_file(path: &str) -> Vec<ExpOutput> {
    use std::path::Path;
    fn fail(path: &str, msg: impl std::fmt::Display) -> ! {
        eprintln!("scenario `{path}`: {msg}");
        std::process::exit(2);
    }
    let file = Path::new(path);
    let base = file.parent().filter(|p| !p.as_os_str().is_empty());
    let base = base.unwrap_or_else(|| Path::new("."));
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| fail(path, e));
    let scenario = rmb_scenario::parse_scenario(&text).unwrap_or_else(|e| fail(path, e));
    let out = rmb_scenario::run_scenario(&scenario, base).unwrap_or_else(|e| fail(path, e));
    if let Some(rec) = &out.recorded {
        let target = base.join(&rec.path);
        if let Some(dir) = target.parent() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(path, format_args!("creating `{}`: {e}", dir.display())));
        }
        std::fs::write(&target, &rec.content)
            .unwrap_or_else(|e| fail(path, format_args!("writing `{}`: {e}", target.display())));
    }
    vec![ExpOutput {
        name: "scenario".to_string(),
        heading: format!(
            "Scenario `{}` — {} workload on {} ({} mode):",
            out.name, out.workload, out.topology, out.mode
        ),
        rows_json: format!("[{}]", out.row_json),
        table: out.table,
        footer: String::new(),
    }]
}

/// All registered experiments, in suite order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Lemma1),
        Box::new(Theorem1),
        Box::new(Permutation),
        Box::new(Competitiveness),
        Box::new(Ablation),
        Box::new(Load),
        Box::new(Multicast),
        Box::new(WireDelay),
        Box::new(Grid),
        Box::new(Scaling),
        Box::new(Hotspot),
        Box::new(MultiSend),
        Box::new(FaultTolerance),
        Box::new(HierScaling),
        Box::new(HierShard),
        Box::new(Deadlock),
        Box::new(OpenLoop),
        Box::new(OpenLoopSoak),
        Box::new(ScenarioExp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_described() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|e| e.name()).collect();
        assert!(names.contains(&"open_loop"));
        assert!(names.contains(&"deadlock"));
        assert!(names.contains(&"scenario"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate experiment names");
        assert!(reg.iter().all(|e| !e.description().is_empty()));
    }

    #[test]
    fn small_experiment_runs_through_the_registry() {
        let cx = ExpContext {
            n: 8,
            k: 2,
            flits: 4,
            seed: 7,
            all: false,
            ticks: None,
            rate: None,
            threads: 1,
            scenario: None,
        };
        let reg = registry();
        let grid = reg.iter().find(|e| e.name() == "grid").unwrap();
        let out = grid.run(&cx);
        assert_eq!(out.len(), 1);
        assert!(out[0].rows_json.starts_with('['));
        assert!(!out[0].table.is_empty());
        let deadlock = reg.iter().find(|e| e.name() == "deadlock").unwrap();
        assert_eq!(deadlock.run(&cx).len(), 3, "deadlock emits three outputs");
    }

    #[test]
    fn scenario_arm_is_a_no_op_without_a_file() {
        let cx = ExpContext {
            n: 8,
            k: 2,
            flits: 4,
            seed: 7,
            all: true,
            ticks: None,
            rate: None,
            threads: 1,
            scenario: None,
        };
        let reg = registry();
        let arm = reg.iter().find(|e| e.name() == "scenario").unwrap();
        assert!(arm.run(&cx).is_empty(), "`--exp all` must skip the arm");
    }

    #[test]
    fn rate_and_ticks_overrides_reach_the_open_loop_sweep() {
        let cx = ExpContext {
            n: 8,
            k: 2,
            flits: 4,
            seed: 7,
            all: false,
            ticks: Some(1_500),
            rate: Some(0.003),
            threads: 1,
            scenario: None,
        };
        let reg = registry();
        let open = reg.iter().find(|e| e.name() == "open_loop").unwrap();
        let out = open.run(&cx);
        assert_eq!(out.len(), 1);
        // One rate x two processes x three topologies.
        let v = rmb_types::json::Value::parse(&out[0].rows_json).unwrap();
        match v {
            rmb_types::json::Value::Arr(items) => assert_eq!(items.len(), 6),
            _ => panic!("expected array"),
        }
    }
}
