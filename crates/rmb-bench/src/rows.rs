//! JSON emission for experiment rows.
//!
//! The `--json` mode of the `experiments` binary needs a machine-readable
//! encoding of each result struct. With no serde in the hermetic build,
//! this module provides a tiny [`JsonReport`] trait plus the
//! [`json_report!`](crate::json_report) macro that implements it
//! field-by-field, emitting keys in declaration order so serial and
//! parallel sweeps produce byte-identical reports.

use rmb_types::json::escape;

/// A scalar that knows its JSON spelling.
pub trait JsonScalar {
    /// JSON literal for this value.
    fn json_scalar(&self) -> String;
}

macro_rules! int_scalar {
    ($($ty:ty),+) => {
        $(impl JsonScalar for $ty {
            fn json_scalar(&self) -> String {
                self.to_string()
            }
        })+
    };
}

int_scalar!(u16, u32, u64, usize, i32, i64);

impl JsonScalar for bool {
    fn json_scalar(&self) -> String {
        self.to_string()
    }
}

impl JsonScalar for f64 {
    fn json_scalar(&self) -> String {
        // JSON has no NaN/Infinity literal; represent them as null.
        if self.is_finite() {
            self.to_string()
        } else {
            "null".to_string()
        }
    }
}

impl JsonScalar for String {
    fn json_scalar(&self) -> String {
        escape(self)
    }
}

impl JsonScalar for &str {
    fn json_scalar(&self) -> String {
        escape(self)
    }
}

impl<T: JsonScalar> JsonScalar for Option<T> {
    fn json_scalar(&self) -> String {
        match self {
            Some(v) => v.json_scalar(),
            None => "null".to_string(),
        }
    }
}

/// An experiment result that serializes itself to JSON.
pub trait JsonReport {
    /// JSON encoding (an object for a row, an array for a row set).
    fn to_json(&self) -> String;
}

impl<T: JsonReport> JsonReport for Vec<T> {
    fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&row.to_json());
        }
        if !self.is_empty() {
            out.push('\n');
        }
        out.push(']');
        out
    }
}

/// Implements [`JsonReport`] for a struct by listing its fields; keys are
/// emitted in the listed order.
#[macro_export]
macro_rules! json_report {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::rows::JsonReport for $ty {
            fn to_json(&self) -> String {
                let mut out = String::from("{");
                let mut first = true;
                $(
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = &first;
                    out.push('"');
                    out.push_str(stringify!($field));
                    out.push_str("\": ");
                    out.push_str(&$crate::rows::JsonScalar::json_scalar(&self.$field));
                )+
                out.push('}');
                out
            }
        }
    };
}

use crate::experiments::{
    AblationResult, CompetitivenessRow, DeadlockResult, FaultToleranceRow, GridRow,
    HierScalingRow, HierShardRow, HotspotRow, Lemma1Result, LoadPoint, MultiSendRow, MulticastRow,
    OpenLoopRow, PermutationRow, ScalingRow, SoakRow, Theorem1Result, WireDelayRow,
};

json_report!(AblationResult { variant, makespan, mean_latency, refusals, stalled });
json_report!(CompetitivenessRow { workload, online, offline, lower_bound, ratio });
json_report!(DeadlockResult {
    n,
    k,
    verbatim_stalled,
    verbatim_delivered,
    timeout_completed,
    timeout_makespan,
    timeout_refusals,
});
json_report!(Lemma1Result {
    n,
    sim_max_skew,
    sim_min_transitions,
    threaded_max_skew,
    threaded_min_transitions,
    bound_held,
});
json_report!(LoadPoint { offered, messages, delivered, throughput, mean_latency, utilization });
json_report!(PermutationRow { network, permutation, messages, makespan, mean_latency, stalled });
json_report!(ScalingRow { n, network, makespan });
json_report!(Theorem1Result {
    feasible_trials,
    admitted_without_refusal,
    infeasible_trials,
    mean_setup_latency,
});
json_report!(HotspotRow { receives, delivered, hot_latency, refusals });
json_report!(MulticastRow { group, multicast, unicast_series });
json_report!(WireDelayRow { network, unit_wires, layout_wires });
json_report!(GridRow { network, segments, makespan });
json_report!(MultiSendRow { sends, makespan });
json_report!(HierScalingRow {
    topology,
    rings,
    n,
    total_nodes,
    k,
    locality,
    messages,
    delivered,
    aborted,
    bridge_refusals,
    makespan,
    throughput,
    mean_latency,
    stalled,
    threads,
    wall_ms,
    sim_ticks_per_sec,
});
json_report!(HierShardRow {
    threads,
    rings,
    n,
    k,
    total_nodes,
    locality,
    messages,
    ticks,
    wall_ms,
    sim_ticks_per_sec,
    speedup,
    matches_serial,
    host_threads,
});
json_report!(OpenLoopRow {
    topology,
    arrivals,
    rate,
    offered,
    shed,
    shed_rate,
    delivered,
    aborted,
    in_flight,
    throughput,
    mean_latency,
    p50,
    p99,
    p999,
    utilization,
    ticks,
    threads,
});
json_report!(SoakRow {
    topology,
    rate,
    ticks,
    offered,
    shed,
    delivered,
    aborted,
    in_flight,
    p50,
    p99,
    p999,
    loss_accounted,
    retained_records,
});
json_report!(FaultToleranceRow {
    n,
    k,
    fraction,
    faulted_segments,
    messages,
    delivered,
    aborted,
    retries,
    fault_kills,
    throughput,
    mean_latency,
    stalled,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_emit_valid_json() {
        let rows = vec![
            ScalingRow {
                n: 4,
                network: "RMB".to_string(),
                makespan: 120,
            },
            ScalingRow {
                n: 6,
                network: "ring \"quoted\"".to_string(),
                makespan: 0,
            },
        ];
        let s = rows.to_json();
        let v = rmb_types::json::Value::parse(&s).expect("valid json");
        match v {
            rmb_types::json::Value::Arr(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].get("n").and_then(|x| x.as_u32()), Some(4));
                assert_eq!(
                    items[1].get("network").and_then(|x| x.as_str()),
                    Some("ring \"quoted\"")
                );
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn nan_becomes_null() {
        let p = LoadPoint {
            offered: 0.1,
            messages: 0,
            delivered: 0,
            throughput: 0.0,
            mean_latency: f64::NAN,
            utilization: 0.5,
        };
        let s = p.to_json();
        assert!(rmb_types::json::Value::parse(&s).is_ok());
        assert!(s.contains("\"mean_latency\": null"));
    }

    #[test]
    fn option_scalars_emit_value_or_null() {
        assert_eq!(Some(41u64).json_scalar(), "41");
        assert_eq!(None::<u64>.json_scalar(), "null");
    }

    #[test]
    fn empty_row_set_is_an_empty_array() {
        let rows: Vec<ScalingRow> = Vec::new();
        assert_eq!(rows.to_json(), "[]");
    }
}
