//! Regeneration of the paper's Tables 1 and 2 from the live types.

use rmb_analysis::Table;
use rmb_core::{CycleController, PortStatus};

/// Renders Table 1 — "Interconnections between input and output ports of
/// an INC (viewed from the output port)" — from the live
/// [`PortStatus`] encoding.
pub fn table1() -> Table {
    let mut t = Table::new(vec!["code", "allowed", "interpretation"]);
    for (code, allowed, interp) in PortStatus::table1() {
        t.row(vec![
            format!("{code:03b}"),
            if allowed { "yes" } else { "NO" }.to_owned(),
            interp.to_owned(),
        ]);
    }
    t
}

/// Renders Table 2 — "States/signals used in odd-even cycle control" —
/// from the live [`CycleController`] definitions.
pub fn table2() -> Table {
    let mut t = Table::new(vec!["mnemonic", "kind", "interpretation"]);
    for (mnemonic, kind, interp) in CycleController::table2() {
        t.row(vec![mnemonic.to_owned(), kind.to_owned(), interp.to_owned()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_rows_two_forbidden() {
        let t = table1();
        assert_eq!(t.len(), 8);
        let s = t.to_string();
        assert_eq!(s.matches("NO").count(), 2);
        assert!(s.contains("Port receives from above and straight"));
    }

    #[test]
    fn table2_lists_all_mnemonics() {
        let s = table2().to_string();
        for m in ["OD", "OC", "LD", "LC", "RD", "RC", "ID"] {
            assert!(s.contains(m), "missing {m}");
        }
    }
}
