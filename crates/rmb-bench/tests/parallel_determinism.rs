//! The parallel experiment sweeps must be pure functions of their inputs:
//! the serialized JSON report produced with one worker thread is
//! byte-for-byte identical to the report produced with many. One test
//! function covers all sweeps so the `RMB_THREADS` pin (process-global
//! environment) is never toggled concurrently.

use rmb_bench::experiments::{
    competitiveness, load_sweep, permutation_comparison, scaling_experiment,
};
use rmb_bench::rows::JsonReport;

fn with_threads<R>(threads: &str, f: impl FnOnce() -> R) -> R {
    std::env::set_var("RMB_THREADS", threads);
    let r = f();
    std::env::remove_var("RMB_THREADS");
    r
}

#[test]
fn sweeps_serialize_identically_serial_and_parallel() {
    // Small instances of each sweep; enough cells that scheduling order
    // would show if any result leaked across cells.
    type Run = (&'static str, fn() -> String);
    let runs: Vec<Run> = vec![
        ("scaling", || scaling_experiment(&[3, 4], 2, 6).to_json()),
        ("load", || {
            load_sweep(12, 3, &[0.001, 0.002, 0.004], 1_500, 6, 9).to_json()
        }),
        ("competitive", || competitiveness(12, 3, 8, 5).to_json()),
        ("permutation", || {
            permutation_comparison(16, 4, 6, 3).to_json()
        }),
    ];
    for (name, run) in runs {
        let serial = with_threads("1", run);
        let parallel = with_threads("8", run);
        assert!(
            !serial.is_empty() && serial.contains('{'),
            "{name}: report should contain rows"
        );
        assert_eq!(serial, parallel, "{name}: parallel sweep diverged");
    }
}
