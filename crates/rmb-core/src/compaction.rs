//! The compaction protocol: switchability, the four legal transitions
//! (Fig. 7), the make-before-break sequence (Fig. 4), and the odd/even
//! assessment rule (Fig. 8).
//!
//! Compaction moves one *hop* of a virtual bus — the stretch it occupies on
//! one physical segment between a pair of adjacent INCs — from bus `l` down
//! to bus `l - 1`. The paper's constraint is that each INC can only switch
//! an input port `l` to output ports `{l-1, l, l+1}`, so a hop may move
//! down only if **both** of its neighbouring hops sit at a height the new
//! position can still reach (§2.4). There are exactly four such scenarios
//! (Fig. 7), enumerated by [`MoveCondition`].

use crate::status::{PortStatus, SourceDir};
use rmb_types::{BusIndex, NodeId};
use std::fmt;

/// The height of the connection on one side of a hop, as seen by the
/// switchability rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointHeight {
    /// The hop attaches to a PE through the node interface, which can read
    /// from / write to *any* bus port (§2.1) — no height constraint.
    Pe,
    /// The hop ends at a parked (blocked) header flit latched in the next
    /// INC. When that INC's top output frees, it re-drives the HF onto the
    /// top bus — INCs monitor only the top segment for header flits
    /// (§2.2) — so this hop must stay within switching reach of the top:
    /// it may sink exactly one level, to `top - 1`, and no further.
    ParkedHead,
    /// The adjacent hop of the same virtual bus sits at this height.
    At(BusIndex),
}

impl EndpointHeight {
    /// Whether this endpoint permits the hop to move from `from` down to
    /// `from - 1`, on a bus array whose top segment is `top`.
    ///
    /// * `Pe` always permits (the PE interface reaches every port).
    /// * `ParkedHead` permits only the single move `top → top - 1`, which
    ///   keeps the future top-bus extension within the INC's `±1`
    ///   switching range.
    /// * `At(h)` permits when `h ∈ {from - 1, from}`: after the move, the
    ///   INC between the two hops must connect heights differing by at most
    ///   one, and before the move they already differ by at most one, which
    ///   leaves exactly these two cases — this is where Fig. 7's "four
    ///   conditions" come from (two choices on each side).
    pub fn permits_move_down(self, from: BusIndex, top: BusIndex) -> bool {
        match self {
            EndpointHeight::Pe => true,
            EndpointHeight::ParkedHead => from == top,
            EndpointHeight::At(h) => h == from || (from.lower() == Some(h)),
        }
    }
}

impl fmt::Display for EndpointHeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointHeight::Pe => f.write_str("PE"),
            EndpointHeight::ParkedHead => f.write_str("head"),
            EndpointHeight::At(h) => write!(f, "{h}"),
        }
    }
}

/// One of the four legal transition scenarios of Fig. 7 for moving a hop
/// from bus `l` to `l - 1`, classified by where the neighbouring hops sit.
///
/// `Straight` means the neighbour is at `l` (the connection through the
/// shared INC is currently straight); `Down` means the neighbour is already
/// at `l - 1`. PE endpoints behave like `Straight` for naming purposes: the
/// interface simply re-attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveCondition {
    /// Upstream at `l`, downstream at `l` — both sides straight.
    StraightStraight,
    /// Upstream at `l`, downstream already at `l - 1`.
    StraightDown,
    /// Upstream already at `l - 1`, downstream at `l`.
    DownStraight,
    /// Both neighbours already at `l - 1`.
    DownDown,
}

impl MoveCondition {
    /// All four conditions, in Fig. 7 order.
    pub const ALL: [MoveCondition; 4] = [
        MoveCondition::StraightStraight,
        MoveCondition::StraightDown,
        MoveCondition::DownStraight,
        MoveCondition::DownDown,
    ];

    /// Condition number as used when citing Fig. 7 (1-based).
    pub const fn number(self) -> u8 {
        match self {
            MoveCondition::StraightStraight => 1,
            MoveCondition::StraightDown => 2,
            MoveCondition::DownStraight => 3,
            MoveCondition::DownDown => 4,
        }
    }
}

impl fmt::Display for MoveCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MoveCondition::StraightStraight => "straight/straight",
            MoveCondition::StraightDown => "straight/down",
            MoveCondition::DownStraight => "down/straight",
            MoveCondition::DownDown => "down/down",
        };
        f.write_str(s)
    }
}

/// The full context needed to decide whether one hop may move down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopContext {
    /// Current height of the hop.
    pub height: BusIndex,
    /// The top bus segment of the array (`k - 1`).
    pub top: BusIndex,
    /// Connection height on the upstream (counter-clockwise) side.
    pub upstream: EndpointHeight,
    /// Connection height on the downstream (clockwise) side.
    pub downstream: EndpointHeight,
    /// Whether the segment directly below the hop is free on this hop's
    /// stretch of the bus array.
    pub below_free: bool,
}

impl HopContext {
    /// Decides whether the hop is *switchable down* (§2.4), and if so under
    /// which of the four Fig. 7 conditions.
    ///
    /// Returns `None` when the hop is at the bottom bus, the segment below
    /// is occupied, or either neighbour is out of reach of the new height.
    ///
    /// The decision is table-driven: each endpoint reduces to one of three
    /// codes (stays straight / already down / forbids the move), and the
    /// 3×3 code product indexes [`MOVE_TABLE`] — no per-endpoint branching
    /// in the hot assessment loop.
    pub fn switchable_down(&self) -> Option<MoveCondition> {
        self.height.lower()?;
        if !self.below_free {
            return None;
        }
        let u = endpoint_code(self.upstream, self.height, self.top);
        let d = endpoint_code(self.downstream, self.height, self.top);
        MOVE_TABLE[u * 3 + d]
    }
}

/// Collapses an endpoint's relation to a hop moving down from `from` into
/// a table index: `0` = the endpoint permits the move and stays straight
/// (at `from`, or a PE interface that simply re-attaches), `1` = the
/// endpoint already sits at `from - 1` (the "down" cases of Fig. 7),
/// `2` = the endpoint forbids the move.
#[inline]
fn endpoint_code(e: EndpointHeight, from: BusIndex, top: BusIndex) -> usize {
    match e {
        EndpointHeight::Pe => 0,
        EndpointHeight::ParkedHead => {
            if from == top {
                0
            } else {
                2
            }
        }
        EndpointHeight::At(h) => {
            if h == from {
                0
            } else if from.lower() == Some(h) {
                1
            } else {
                2
            }
        }
    }
}

/// Fig. 7's four legal transitions as a 3×3 lookup over
/// `(upstream code, downstream code)`; any pairing that involves a
/// forbidding endpoint (code 2) maps to `None`.
const MOVE_TABLE: [Option<MoveCondition>; 9] = [
    Some(MoveCondition::StraightStraight), // (straight, straight)
    Some(MoveCondition::StraightDown),     // (straight, down)
    None,                                  // (straight, forbid)
    Some(MoveCondition::DownStraight),     // (down, straight)
    Some(MoveCondition::DownDown),         // (down, down)
    None,                                  // (down, forbid)
    None,                                  // (forbid, _)
    None,
    None,
];

/// The odd/even assessment rule (Fig. 8, §2.4): INC `node` considers moving
/// the transaction on bus segment `bus` during `phase` iff node parity,
/// segment parity and cycle parity line up.
///
/// * An even INC considers **even** segments in **even** cycles and odd
///   segments in odd cycles.
/// * An odd INC considers **even** segments in **odd** cycles and odd
///   segments in even cycles.
///
/// Equivalently: `(node + bus + phase) ≡ 0 (mod 2)`.
///
/// # Examples
///
/// ```
/// use rmb_core::{assessed_in_phase, Phase};
/// use rmb_types::{BusIndex, NodeId};
///
/// // Even INC, even segment, even cycle: assessed.
/// assert!(assessed_in_phase(NodeId::new(0), BusIndex::new(2), Phase::Even));
/// // Even INC, even segment, odd cycle: not assessed.
/// assert!(!assessed_in_phase(NodeId::new(0), BusIndex::new(2), Phase::Odd));
/// ```
pub fn assessed_in_phase(node: NodeId, bus: BusIndex, phase: Phase) -> bool {
    (node.index() as u64 + bus.index() as u64 + phase.as_bit()).is_multiple_of(2)
}

/// The two-phase local synchronisation cycle (§2.4): odd and even.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// The even cycle.
    #[default]
    Even,
    /// The odd cycle.
    Odd,
}

impl Phase {
    /// 0 for even, 1 for odd.
    pub const fn as_bit(self) -> u64 {
        match self {
            Phase::Even => 0,
            Phase::Odd => 1,
        }
    }

    /// The other phase.
    #[must_use]
    pub const fn flipped(self) -> Phase {
        match self {
            Phase::Even => Phase::Odd,
            Phase::Odd => Phase::Even,
        }
    }

    /// Phase of global tick `t` in the synchronous compactor (even ticks
    /// run even cycles).
    pub const fn of_tick(t: u64) -> Phase {
        if t.is_multiple_of(2) {
            Phase::Even
        } else {
            Phase::Odd
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Even => f.write_str("even"),
            Phase::Odd => f.write_str("odd"),
        }
    }
}

/// One stage of the make-before-break sequence at one INC (Fig. 4), as a
/// pair of output-port register codes: the code of the *old* output port
/// (height `l`) and of the *new* output port (height `l - 1`).
///
/// The three stages are: existing connection, make the parallel connection,
/// break the original connection. The intermediate codes are exactly the
/// ones Fig. 7 prints between the before/after states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbbStage {
    /// Human label for the stage ("existing", "make", "break").
    pub label: &'static str,
    /// Status register of the output port the hop is moving *from*.
    pub old_port: PortStatus,
    /// Status register of the output port the hop is moving *to*.
    pub new_port: PortStatus,
}

/// Computes the three make-before-break stages for the *upstream* INC of a
/// moving hop: the INC whose output ports drive the hop's segment.
///
/// `incoming` is the direction the INC's old output port (`l`) currently
/// receives from; it is also what the new output port (`l - 1`) will
/// receive from, expressed relative to *its* index — so the direction
/// shifts by one (what was "straight" into port `l` is "above" into port
/// `l - 1`).
///
/// Returns `None` if the incoming connection would be out of switching
/// range for the new port (i.e. `incoming == Below`, which would need the
/// new port to reach two ports down).
pub fn mbb_stages_upstream(incoming: SourceDir) -> Option<[MbbStage; 3]> {
    // Direction into the new port, one index lower: offset shifts by +1.
    let into_new = SourceDir::from_offset(incoming.offset() + 1)?;
    let old = PortStatus::UNUSED.with(incoming);
    let new = PortStatus::UNUSED.with(into_new);
    Some([
        MbbStage {
            label: "existing",
            old_port: old,
            new_port: PortStatus::UNUSED,
        },
        MbbStage {
            label: "make",
            old_port: old,
            new_port: new,
        },
        MbbStage {
            label: "break",
            old_port: PortStatus::UNUSED,
            new_port: new,
        },
    ])
}

/// Computes the three make-before-break stages for the *downstream* INC of
/// a moving hop: the INC whose output port consumes the hop's segment.
///
/// The hop arrives on input `l` before the move and input `l - 1` after;
/// the consuming output port (at `out_height` relative to `l`: `Straight`
/// for `l`, `Below` for `l - 1`) first receives from both, then drops the
/// old input. This is the `100 → 110 → 010` sequence printed in Fig. 7.
///
/// Returns `None` for `out_height == Above`: an output at `l + 1` cannot
/// reach the new input at `l - 1`, which is exactly why such hops are not
/// switchable down.
pub fn mbb_stages_downstream(out_height: SourceDir) -> Option<[MbbStage; 3]> {
    // Direction of old input `l` into the output port.
    let old_in = SourceDir::from_offset(-out_height.offset())?;
    // Direction of new input `l - 1` into the output port.
    let new_in = SourceDir::from_offset(-out_height.offset() - 1)?;
    let before = PortStatus::UNUSED.with(old_in);
    let during = before.with(new_in);
    let after = PortStatus::UNUSED.with(new_in);
    Some([
        MbbStage {
            label: "existing",
            old_port: before,
            new_port: before,
        },
        MbbStage {
            label: "make",
            old_port: during,
            new_port: during,
        },
        MbbStage {
            label: "break",
            old_port: after,
            new_port: after,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(height: u16, up: EndpointHeight, down: EndpointHeight, below_free: bool) -> HopContext {
        HopContext {
            height: BusIndex::new(height),
            top: BusIndex::new(7),
            upstream: up,
            downstream: down,
            below_free,
        }
    }

    #[test]
    fn bottom_bus_never_switchable() {
        let c = ctx(0, EndpointHeight::Pe, EndpointHeight::Pe, true);
        assert_eq!(c.switchable_down(), None);
    }

    #[test]
    fn occupied_segment_below_blocks() {
        let c = ctx(3, EndpointHeight::Pe, EndpointHeight::Pe, false);
        assert_eq!(c.switchable_down(), None);
    }

    #[test]
    fn parked_head_allows_exactly_one_sink_from_top() {
        // At the top (7, given ctx() uses top = 7), the hop feeding a
        // parked head may sink once ...
        let c = ctx(
            7,
            EndpointHeight::Pe,
            EndpointHeight::ParkedHead,
            true,
        );
        assert!(c.switchable_down().is_some());
        // ... but from top-1 it may not sink further: the latched HF must
        // stay within switching reach of the top output.
        let c = ctx(
            6,
            EndpointHeight::Pe,
            EndpointHeight::ParkedHead,
            true,
        );
        assert_eq!(c.switchable_down(), None);
        let c = ctx(
            3,
            EndpointHeight::At(BusIndex::new(3)),
            EndpointHeight::ParkedHead,
            true,
        );
        assert_eq!(c.switchable_down(), None);
    }

    #[test]
    fn exactly_four_conditions_exist() {
        // Enumerate every neighbour height within switching range of a hop
        // at l = 4 and check that precisely the four Fig. 7 combinations
        // are movable.
        let l = 4u16;
        let mut conditions = Vec::new();
        for up in [l - 1, l, l + 1] {
            for down in [l - 1, l, l + 1] {
                let c = ctx(
                    l,
                    EndpointHeight::At(BusIndex::new(up)),
                    EndpointHeight::At(BusIndex::new(down)),
                    true,
                );
                if let Some(cond) = c.switchable_down() {
                    conditions.push(((up, down), cond));
                }
            }
        }
        assert_eq!(conditions.len(), 4, "Fig. 7 names exactly four conditions");
        assert_eq!(
            conditions,
            vec![
                ((l - 1, l - 1), MoveCondition::DownDown),
                ((l - 1, l), MoveCondition::DownStraight),
                ((l, l - 1), MoveCondition::StraightDown),
                ((l, l), MoveCondition::StraightStraight),
            ]
        );
    }

    #[test]
    fn pe_endpoints_act_as_wildcards() {
        let c = ctx(
            2,
            EndpointHeight::Pe,
            EndpointHeight::At(BusIndex::new(2)),
            true,
        );
        assert_eq!(c.switchable_down(), Some(MoveCondition::StraightStraight));
        let c = ctx(
            2,
            EndpointHeight::At(BusIndex::new(1)),
            EndpointHeight::Pe,
            true,
        );
        assert_eq!(c.switchable_down(), Some(MoveCondition::DownStraight));
    }

    #[test]
    fn neighbour_above_blocks_move() {
        let c = ctx(
            2,
            EndpointHeight::At(BusIndex::new(3)),
            EndpointHeight::At(BusIndex::new(2)),
            true,
        );
        assert_eq!(c.switchable_down(), None);
        let c = ctx(
            2,
            EndpointHeight::At(BusIndex::new(2)),
            EndpointHeight::At(BusIndex::new(3)),
            true,
        );
        assert_eq!(c.switchable_down(), None);
    }

    #[test]
    fn condition_numbers_are_stable() {
        let nums: Vec<u8> = MoveCondition::ALL.iter().map(|c| c.number()).collect();
        assert_eq!(nums, vec![1, 2, 3, 4]);
    }

    /// The lookup table must encode exactly the predicate-based rule it
    /// replaced: permit iff both endpoints permit, with the condition
    /// named by which endpoints already sit at `from - 1`.
    #[test]
    fn move_table_matches_the_predicate_rule() {
        let top = BusIndex::new(7);
        let mut endpoints = vec![EndpointHeight::Pe, EndpointHeight::ParkedHead];
        for h in 0..8 {
            endpoints.push(EndpointHeight::At(BusIndex::new(h)));
        }
        for from_h in 0..8u16 {
            let from = BusIndex::new(from_h);
            for &up in &endpoints {
                for &down in &endpoints {
                    let c = HopContext {
                        height: from,
                        top,
                        upstream: up,
                        downstream: down,
                        below_free: true,
                    };
                    let expected = if from.lower().is_none()
                        || !up.permits_move_down(from, top)
                        || !down.permits_move_down(from, top)
                    {
                        None
                    } else {
                        let target = from.lower().unwrap();
                        let u = matches!(up, EndpointHeight::At(h) if h == target);
                        let d = matches!(down, EndpointHeight::At(h) if h == target);
                        Some(match (u, d) {
                            (false, false) => MoveCondition::StraightStraight,
                            (false, true) => MoveCondition::StraightDown,
                            (true, false) => MoveCondition::DownStraight,
                            (true, true) => MoveCondition::DownDown,
                        })
                    };
                    assert_eq!(
                        c.switchable_down(),
                        expected,
                        "from {from}, up {up}, down {down}"
                    );
                }
            }
        }
    }

    #[test]
    fn assessment_rule_matches_paper_text() {
        // Even INC i considers even segment l in even cycles (§2.4).
        assert!(assessed_in_phase(
            NodeId::new(2),
            BusIndex::new(4),
            Phase::Even
        ));
        // ... and odd segments in odd cycles.
        assert!(assessed_in_phase(
            NodeId::new(2),
            BusIndex::new(3),
            Phase::Odd
        ));
        // Odd INC considers even segments in odd cycles ...
        assert!(assessed_in_phase(
            NodeId::new(3),
            BusIndex::new(4),
            Phase::Odd
        ));
        // ... and odd segments in even cycles.
        assert!(assessed_in_phase(
            NodeId::new(3),
            BusIndex::new(3),
            Phase::Even
        ));
        // Complements are not assessed.
        assert!(!assessed_in_phase(
            NodeId::new(2),
            BusIndex::new(4),
            Phase::Odd
        ));
        assert!(!assessed_in_phase(
            NodeId::new(3),
            BusIndex::new(4),
            Phase::Even
        ));
    }

    #[test]
    fn adjacent_same_height_hops_assessed_in_different_phases() {
        // The race the paper circumvents: both hops of a bus at the same
        // height at adjacent INCs must not move in the same cycle.
        for i in 0..10u32 {
            for l in 0..8u16 {
                let a = assessed_in_phase(NodeId::new(i), BusIndex::new(l), Phase::Even);
                let b = assessed_in_phase(NodeId::new(i + 1), BusIndex::new(l), Phase::Even);
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn phase_alternation() {
        assert_eq!(Phase::of_tick(0), Phase::Even);
        assert_eq!(Phase::of_tick(1), Phase::Odd);
        assert_eq!(Phase::Even.flipped(), Phase::Odd);
        assert_eq!(Phase::Odd.flipped(), Phase::Even);
        assert_eq!(Phase::Even.to_string(), "even");
    }

    #[test]
    fn mbb_upstream_straight_reproduces_fig7_codes() {
        // Old port receives straight (010); new port one lower receives the
        // same input, now "from above" (100): the 000 -> 100 -> 100 column
        // of Fig. 7, while the old port goes 010 -> 010 -> 000.
        let stages = mbb_stages_upstream(SourceDir::Straight).unwrap();
        assert_eq!(stages[0].old_port.bits(), 0b010);
        assert_eq!(stages[0].new_port.bits(), 0b000);
        assert_eq!(stages[1].old_port.bits(), 0b010);
        assert_eq!(stages[1].new_port.bits(), 0b100);
        assert_eq!(stages[2].old_port.bits(), 0b000);
        assert_eq!(stages[2].new_port.bits(), 0b100);
    }

    #[test]
    fn mbb_upstream_from_below_reproduces_fig7_codes() {
        // Upstream neighbour already at l-1: old port l receives from below
        // (001); new port l-1 receives straight (010): Fig. 7's
        // "000 -> 010 -> 010" with "001 -> 001 -> 000".
        let stages = mbb_stages_upstream(SourceDir::Below).unwrap();
        assert_eq!(stages[0].old_port.bits(), 0b001);
        assert_eq!(stages[1].new_port.bits(), 0b010);
        assert_eq!(stages[2].old_port.bits(), 0b000);
        assert_eq!(stages[2].new_port.bits(), 0b010);
    }

    #[test]
    fn mbb_upstream_from_above_is_impossible() {
        // An input at l+1 cannot reach output l-1.
        assert!(mbb_stages_upstream(SourceDir::Above).is_none());
    }

    #[test]
    fn mbb_downstream_straight_out_reproduces_fig7_codes() {
        // Downstream INC keeps its output at l: it goes
        // 010 (straight from input l) -> 011 (add input l-1, "below")
        // -> 001 (only below).
        let stages = mbb_stages_downstream(SourceDir::Straight).unwrap();
        assert_eq!(stages[0].old_port.bits(), 0b010);
        assert_eq!(stages[1].old_port.bits(), 0b011);
        assert_eq!(stages[2].old_port.bits(), 0b001);
        for s in &stages {
            assert!(s.old_port.is_allowed());
        }
    }

    #[test]
    fn mbb_downstream_down_out_reproduces_fig7_codes() {
        // Downstream INC's output already at l-1: 100 -> 110 -> 010, the
        // exact sequence printed twice in Fig. 7.
        let stages = mbb_stages_downstream(SourceDir::Below).unwrap();
        assert_eq!(stages[0].old_port.bits(), 0b100);
        assert_eq!(stages[1].old_port.bits(), 0b110);
        assert_eq!(stages[2].old_port.bits(), 0b010);
    }

    #[test]
    fn mbb_downstream_above_out_is_impossible() {
        assert!(mbb_stages_downstream(SourceDir::Above).is_none());
    }

    #[test]
    fn all_mbb_intermediate_states_are_allowed_codes() {
        for dir in [SourceDir::Below, SourceDir::Straight] {
            for s in mbb_stages_upstream(dir).unwrap() {
                assert!(s.old_port.is_allowed());
                assert!(s.new_port.is_allowed());
            }
            for s in mbb_stages_downstream(dir).unwrap() {
                assert!(s.old_port.is_allowed());
                assert!(s.new_port.is_allowed());
            }
        }
    }
}
