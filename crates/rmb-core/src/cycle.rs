//! The odd/even cycle controller (§2.5, Table 2, Fig. 9–10).
//!
//! INCs run off independent clocks; the timing of communications on the
//! virtual buses is entirely independent of those clocks. What *is*
//! coordinated is the alternation between odd and even compaction cycles:
//! an INC moves virtual buses only when it and both neighbours are ready,
//! and switches cycle only when it and both neighbours have finished their
//! moves. Two state flags per INC drive this:
//!
//! * `OD` — "own datapaths have switched" (this cycle's virtual-bus moves
//!   are complete),
//! * `OC` — "own cycle has changed" (odd→even or vice versa),
//!
//! read by the neighbours as `LD`/`RD` and `LC`/`RC`, plus the internal
//! signal `ID` raised by the compaction engine when all datapath switches
//! for the current cycle are done.
//!
//! The transition rules (Fig. 10, and the Lemma 1 proof):
//!
//! 1. at reset, `OD = OC = 0` for all INCs;
//! 2. `OD ← 1` if `ID = 1` and `LC = 0` and `RC = 0`;
//! 3. `OC ← 1` if `OD = 1` and `LD = 1` and `RD = 1`;
//! 4. `OD ← 0` if `OD = 1` and `LC = 1` and `RC = 1`;
//! 5. `OC ← 0` if `OC = 1` and `LD = 0` and `RD = 0`.
//!
//! (§2.5's prose prints rule 3 as `OC = 1 if OD = 1 and LC = 0 and RC = 0`,
//! but both Fig. 10 and the Lemma 1 proof — "a node changes state between
//! odd and even only when both of its neighbors are ready to change
//! (LD=RD=1)" — use the `LD/RD` form, which we follow.)

use crate::compaction::Phase;
use std::fmt;

/// The externally visible flags of one INC's cycle controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CycleFlags {
    /// `OD` — own datapaths switched.
    pub data: bool,
    /// `OC` — own cycle changed.
    pub cycle: bool,
}

impl fmt::Display for CycleFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OD={} OC={}",
            u8::from(self.data),
            u8::from(self.cycle)
        )
    }
}

/// The four switching states of an INC (Fig. 9), derived from `(OD, OC)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchState {
    /// `OD=0, OC=0` — ready for / performing its own datapath switches,
    /// waiting for neighbours to be ready for a datapath switch.
    ReadyForDatapath,
    /// `OD=1, OC=0` — own datapath switched; waiting for neighbours to be
    /// ready for a cycle switch.
    DatapathSwitched,
    /// `OD=1, OC=1` — own cycle switched; waiting for neighbours' cycle
    /// switches to complete.
    CycleSwitched,
    /// `OD=0, OC=1` — preparing for the next datapath switch; waiting for
    /// neighbours to lower their data flags.
    PreparingNext,
}

impl SwitchState {
    /// Classifies a flag pair.
    pub const fn of(flags: CycleFlags) -> SwitchState {
        match (flags.data, flags.cycle) {
            (false, false) => SwitchState::ReadyForDatapath,
            (true, false) => SwitchState::DatapathSwitched,
            (true, true) => SwitchState::CycleSwitched,
            (false, true) => SwitchState::PreparingNext,
        }
    }
}

impl fmt::Display for SwitchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SwitchState::ReadyForDatapath => "ready-for-datapath",
            SwitchState::DatapathSwitched => "datapath-switched",
            SwitchState::CycleSwitched => "cycle-switched",
            SwitchState::PreparingNext => "preparing-next",
        };
        f.write_str(s)
    }
}

/// What a controller observed / did in one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleStep {
    /// No rule fired.
    Idle,
    /// Rule 2 fired: `OD` rose; the INC's moves for this cycle are locked
    /// in.
    DataSwitched,
    /// Rule 3 fired: `OC` rose and the local phase flipped.
    CycleSwitched,
    /// Rule 4 fired: `OD` fell.
    DataCleared,
    /// Rule 5 fired: `OC` fell; the controller is ready for the next
    /// cycle's datapath work.
    CycleCleared,
}

/// One INC's cycle controller.
///
/// Drive it by calling [`step`](Self::step) with a snapshot of both
/// neighbours' flags whenever the INC's local clock fires. The controller
/// itself never touches the datapath; the caller raises `ID` (via
/// [`set_internal_done`](Self::set_internal_done)) once it has performed
/// the virtual-bus moves for the current local phase.
///
/// # Examples
///
/// ```
/// use rmb_core::{CycleController, CycleFlags, Phase};
///
/// let mut c = CycleController::new(Phase::Even);
/// c.set_internal_done(true);
/// // Lone INC with idle neighbours: OD rises, then with both neighbours'
/// // data flags also up it would switch cycle.
/// c.step(CycleFlags::default(), CycleFlags::default());
/// assert!(c.flags().data);
/// ```
#[derive(Debug, Clone)]
pub struct CycleController {
    flags: CycleFlags,
    phase: Phase,
    internal_done: bool,
    transitions: u64,
}

impl CycleController {
    /// Creates a controller at reset (`OD = OC = 0`, rule 1) in the given
    /// initial phase.
    pub fn new(initial: Phase) -> Self {
        CycleController {
            flags: CycleFlags::default(),
            phase: initial,
            internal_done: false,
            transitions: 0,
        }
    }

    /// Current externally visible flags (what neighbours read).
    pub const fn flags(&self) -> CycleFlags {
        self.flags
    }

    /// Current local phase (which segments this INC assesses).
    pub const fn phase(&self) -> Phase {
        self.phase
    }

    /// Current Fig. 9 state.
    pub const fn state(&self) -> SwitchState {
        SwitchState::of(self.flags)
    }

    /// Number of completed cycle transitions (Lemma 1's measure).
    pub const fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Raises / lowers the internal `ID` signal: all datapath switches for
    /// the current cycle have completed.
    pub fn set_internal_done(&mut self, done: bool) {
        self.internal_done = done;
    }

    /// Whether the datapath work for the current phase has been flagged
    /// complete.
    pub const fn internal_done(&self) -> bool {
        self.internal_done
    }

    /// `true` while the controller is in the window where the INC may
    /// perform datapath switches for the current phase: `OD = OC = 0`.
    pub const fn may_switch_datapath(&self) -> bool {
        matches!(self.state(), SwitchState::ReadyForDatapath)
    }

    /// Applies at most one transition rule against a snapshot of the
    /// neighbours' flags, modelling one asynchronous hardware evaluation.
    ///
    /// `left` and `right` are the flags of the counter-clockwise and
    /// clockwise neighbours respectively (their `OD`/`OC` are this INC's
    /// `LD`/`LC` and `RD`/`RC`).
    pub fn step(&mut self, left: CycleFlags, right: CycleFlags) -> CycleStep {
        let (ld, lc) = (left.data, left.cycle);
        let (rd, rc) = (right.data, right.cycle);
        match self.state() {
            // Rule 2: OD <- 1 if ID and !LC and !RC.
            SwitchState::ReadyForDatapath => {
                if self.internal_done && !lc && !rc {
                    self.flags.data = true;
                    CycleStep::DataSwitched
                } else {
                    CycleStep::Idle
                }
            }
            // Rule 3: OC <- 1 if OD and LD and RD; the local phase flips.
            SwitchState::DatapathSwitched => {
                if ld && rd {
                    self.flags.cycle = true;
                    self.phase = self.phase.flipped();
                    self.transitions += 1;
                    CycleStep::CycleSwitched
                } else {
                    CycleStep::Idle
                }
            }
            // Rule 4: OD <- 0 if OD and LC and RC.
            SwitchState::CycleSwitched => {
                if lc && rc {
                    self.flags.data = false;
                    // The next cycle's datapath work has not happened yet.
                    self.internal_done = false;
                    CycleStep::DataCleared
                } else {
                    CycleStep::Idle
                }
            }
            // Rule 5: OC <- 0 if OC and !LD and !RD.
            SwitchState::PreparingNext => {
                if !ld && !rd {
                    self.flags.cycle = false;
                    CycleStep::CycleCleared
                } else {
                    CycleStep::Idle
                }
            }
        }
    }

    /// Table 2 of the paper: the mnemonics, kinds and interpretations of
    /// the states and signals used by odd/even cycle control. Used by the
    /// table-regeneration harness.
    pub fn table2() -> [(&'static str, &'static str, &'static str); 7] {
        [
            (
                "OD",
                "state",
                "Own Datapaths have switched (virtual bus switch)",
            ),
            ("LD", "state", "Left neighbour's Datapaths switched"),
            ("RD", "state", "Right neighbour's Datapaths switched"),
            (
                "OC",
                "state",
                "Own Cycle has changed (odd to even or vice versa)",
            ),
            ("LC", "state", "Left neighbour's Cycle has changed"),
            ("RC", "state", "Right neighbour's Cycle has changed"),
            (
                "ID",
                "signal",
                "Internal signal to INC indicating all Datapath switches \
                 (virtual bus movements) have been completed",
            ),
        ]
    }
}

/// A ring of cycle controllers with per-INC activation, used to validate
/// Lemma 1 under arbitrary (fair) interleavings and to drive the
/// handshake-mode compactor.
///
/// # Examples
///
/// ```
/// use rmb_core::CycleRing;
///
/// let mut ring = CycleRing::new(6);
/// // Activate INCs round-robin with ID always asserted; phases advance.
/// for round in 0..100 {
///     for i in 0..6 {
///         ring.set_internal_done(i, true);
///         ring.activate(i);
///     }
/// }
/// assert!(ring.min_transitions() > 0);
/// assert!(ring.max_neighbour_skew() <= 1);
/// ```
#[derive(Debug, Clone)]
pub struct CycleRing {
    controllers: Vec<CycleController>,
}

impl CycleRing {
    /// Creates `n` controllers, all reset into the even phase.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; the handshake needs at least two INCs.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "cycle ring needs at least two INCs");
        CycleRing {
            controllers: (0..n).map(|_| CycleController::new(Phase::Even)).collect(),
        }
    }

    /// Number of INCs.
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// `false`; a ring always has at least two controllers.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable access to controller `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn controller(&self, i: usize) -> &CycleController {
        &self.controllers[i]
    }

    /// Raises/lowers the `ID` signal of controller `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_internal_done(&mut self, i: usize, done: bool) {
        self.controllers[i].set_internal_done(done);
    }

    /// Activates controller `i` once (its local clock fired): it reads its
    /// neighbours' current flags and applies at most one rule.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn activate(&mut self, i: usize) -> CycleStep {
        let n = self.controllers.len();
        let left = self.controllers[(i + n - 1) % n].flags();
        let right = self.controllers[(i + 1) % n].flags();
        self.controllers[i].step(left, right)
    }

    /// Smallest transition count across the ring.
    pub fn min_transitions(&self) -> u64 {
        self.controllers
            .iter()
            .map(|c| c.transitions())
            .min()
            .unwrap_or(0)
    }

    /// Largest difference in completed transitions between any pair of
    /// neighbouring INCs — Lemma 1 asserts this never exceeds one.
    pub fn max_neighbour_skew(&self) -> u64 {
        let n = self.controllers.len();
        (0..n)
            .map(|i| {
                let a = self.controllers[i].transitions();
                let b = self.controllers[(i + 1) % n].transitions();
                a.abs_diff(b)
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_rule_one() {
        let c = CycleController::new(Phase::Even);
        assert_eq!(c.flags(), CycleFlags::default());
        assert_eq!(c.state(), SwitchState::ReadyForDatapath);
        assert_eq!(c.transitions(), 0);
        assert!(c.may_switch_datapath());
    }

    #[test]
    fn od_requires_id_and_quiet_neighbour_cycles() {
        let mut c = CycleController::new(Phase::Even);
        // Without ID nothing happens.
        assert_eq!(
            c.step(CycleFlags::default(), CycleFlags::default()),
            CycleStep::Idle
        );
        c.set_internal_done(true);
        // With a neighbour mid cycle-change, rule 2 is blocked.
        let busy = CycleFlags {
            data: false,
            cycle: true,
        };
        assert_eq!(c.step(busy, CycleFlags::default()), CycleStep::Idle);
        assert_eq!(c.step(CycleFlags::default(), busy), CycleStep::Idle);
        // Quiet neighbours: OD rises.
        assert_eq!(
            c.step(CycleFlags::default(), CycleFlags::default()),
            CycleStep::DataSwitched
        );
        assert_eq!(c.state(), SwitchState::DatapathSwitched);
    }

    #[test]
    fn oc_requires_both_neighbour_datapaths() {
        let mut c = CycleController::new(Phase::Even);
        c.set_internal_done(true);
        c.step(CycleFlags::default(), CycleFlags::default());
        let up = CycleFlags {
            data: true,
            cycle: false,
        };
        assert_eq!(c.step(up, CycleFlags::default()), CycleStep::Idle);
        assert_eq!(c.step(CycleFlags::default(), up), CycleStep::Idle);
        assert_eq!(c.step(up, up), CycleStep::CycleSwitched);
        assert_eq!(c.phase(), Phase::Odd);
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn full_four_state_walk() {
        let mut c = CycleController::new(Phase::Even);
        c.set_internal_done(true);
        let dq = CycleFlags::default(); // data quiet, cycle quiet
        let du = CycleFlags {
            data: true,
            cycle: false,
        };
        let cu = CycleFlags {
            data: true,
            cycle: true,
        };
        let dn = CycleFlags {
            data: false,
            cycle: true,
        };
        assert_eq!(c.step(dq, dq), CycleStep::DataSwitched);
        assert_eq!(c.step(du, du), CycleStep::CycleSwitched);
        assert_eq!(c.state(), SwitchState::CycleSwitched);
        assert_eq!(c.step(cu, cu), CycleStep::DataCleared);
        assert_eq!(c.state(), SwitchState::PreparingNext);
        // ID was auto-lowered when OD fell.
        assert!(!c.internal_done());
        // dn has data=false on both sides, so rule 5 fires.
        assert_eq!(c.step(dn, dn), CycleStep::CycleCleared);
        assert_eq!(c.state(), SwitchState::ReadyForDatapath);
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn ring_lockstep_progresses_and_alternates() {
        let mut ring = CycleRing::new(4);
        for _ in 0..200 {
            for i in 0..4 {
                ring.set_internal_done(i, true);
                ring.activate(i);
            }
        }
        assert!(ring.min_transitions() >= 10);
        assert!(ring.max_neighbour_skew() <= 1);
        // All controllers alternate phases; with symmetric activation they
        // stay within one transition of each other.
        let phases: Vec<Phase> = (0..4).map(|i| ring.controller(i).phase()).collect();
        for w in phases.windows(2) {
            // Neighbouring phases differ by at most one transition, so
            // they are equal or opposite; both are fine.
            let _ = w;
        }
    }

    #[test]
    fn lemma1_skew_bound_under_skewed_activation() {
        // Activate node 0 ten times as often as the others: Lemma 1 must
        // still hold.
        let mut ring = CycleRing::new(5);
        for round in 0..2000 {
            for i in 0..5 {
                ring.set_internal_done(i, true);
                if i == 0 || round % 10 == i {
                    ring.activate(i);
                }
            }
        }
        assert!(ring.max_neighbour_skew() <= 1);
    }

    #[test]
    fn no_progress_without_internal_done() {
        // An INC whose compaction engine never reports completion stalls
        // the whole ring at most one transition ahead (Lemma 1).
        let mut ring = CycleRing::new(4);
        for _ in 0..500 {
            for i in 0..4 {
                ring.set_internal_done(i, i != 2);
                ring.activate(i);
            }
        }
        assert_eq!(ring.controller(2).transitions(), 0);
        assert!(ring.max_neighbour_skew() <= 1);
        // Its neighbours can be at most 1 transition ahead.
        assert!(ring.controller(1).transitions() <= 1);
        assert!(ring.controller(3).transitions() <= 1);
    }

    #[test]
    fn table2_lists_six_states_and_one_signal() {
        let rows = CycleController::table2();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows.iter().filter(|(_, k, _)| *k == "state").count(), 6);
        assert_eq!(rows.iter().filter(|(_, k, _)| *k == "signal").count(), 1);
        assert_eq!(rows[6].0, "ID");
    }

    #[test]
    fn switch_state_display() {
        assert_eq!(
            SwitchState::ReadyForDatapath.to_string(),
            "ready-for-datapath"
        );
        assert_eq!(
            CycleFlags {
                data: true,
                cycle: false
            }
            .to_string(),
            "OD=1 OC=0"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn ring_of_one_panics() {
        let _ = CycleRing::new(1);
    }
}
