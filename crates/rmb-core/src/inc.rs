//! Deriving an INC's port view from the network state.
//!
//! The simulator keeps virtual buses as ground truth; this module projects
//! one INC's output-port status registers (Table 1) and PE attachment out
//! of them — the view a hardware INC would actually hold. The invariant
//! checker uses it to confirm every derived code is one Table 1 allows.

use crate::network::RmbNetwork;
use crate::status::{PortStatus, SourceDir};
use rmb_types::{BusIndex, NodeId, VirtualBusId};

/// The projection of one INC: status register per output port, plus the
/// PE-side attachments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncView {
    /// The INC's ring position.
    pub node: NodeId,
    /// Status register for each output port, index 0 = bottom bus.
    /// Ports driven by the local PE (a circuit originating here) read as
    /// `UNUSED` in Table 1 terms — the PE interface is a separate
    /// attachment, reported in [`pe_drives`](Self::pe_drives).
    pub outputs: Vec<PortStatus>,
    /// Which virtual bus occupies each output port (drives the outgoing
    /// segment), regardless of where it is fed from.
    pub output_owner: Vec<Option<VirtualBusId>>,
    /// The output port the local PE is writing to, if a circuit starts
    /// here.
    pub pe_drives: Vec<(BusIndex, VirtualBusId)>,
    /// The input port(s) the local PE is reading from, if circuits end
    /// here.
    pub pe_reads: Vec<(BusIndex, VirtualBusId)>,
}

/// Projects the port view of `node` out of the network state.
///
/// # Panics
///
/// Panics if `node` is outside the ring.
pub fn derive_inc(net: &RmbNetwork, node: NodeId) -> IncView {
    let ring = net.ring();
    assert!(ring.contains(node), "node {node} outside the ring");
    let k = net.config().buses() as usize;
    let mut view = IncView {
        node,
        outputs: vec![PortStatus::UNUSED; k],
        output_owner: vec![None; k],
        pe_drives: Vec::new(),
        pe_reads: Vec::new(),
    };
    for (bus, state) in net.virtual_buses_with_state() {
        let active = bus.active_hops(state);
        if active == 0 {
            continue;
        }
        // Hop j's upstream INC is advance(src, j); this INC drives hop j
        // when node == advance(src, j), i.e. j = distance(src, node).
        let j_out = ring.clockwise_distance(bus.spec.source, node) as usize;
        if j_out < active {
            let out = bus.heights[j_out];
            view.output_owner[out.as_usize()] = Some(bus.id);
            if j_out == 0 {
                // The circuit starts here: the PE drives this port.
                view.pe_drives.push((out, bus.id));
            } else {
                let inp = bus.heights[j_out - 1];
                let offset = inp.index() as i32 - out.index() as i32;
                let dir = SourceDir::from_offset(offset)
                    .expect("continuity invariant keeps hops within switching range");
                view.outputs[out.as_usize()] = view.outputs[out.as_usize()].with(dir);
            }
        }
        // The circuit's final hop delivers into the destination INC, where
        // the PE reads it.
        let span_to_here = ring.clockwise_distance(bus.spec.source, node) as usize;
        if node == bus.spec.destination && span_to_here == active && span_to_here >= 1 {
            view.pe_reads.push((bus.heights[active - 1], bus.id));
        }
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RmbNetwork;
    use rmb_types::{MessageSpec, RmbConfig};

    #[test]
    fn idle_network_has_all_ports_unused() {
        let net = RmbNetwork::new(RmbConfig::new(6, 3).unwrap());
        for i in 0..6 {
            let view = derive_inc(&net, NodeId::new(i));
            assert!(view.outputs.iter().all(|s| s.is_unused()));
            assert!(view.pe_drives.is_empty());
            assert!(view.pe_reads.is_empty());
        }
    }

    #[test]
    fn single_circuit_ports_read_as_expected() {
        let mut net = RmbNetwork::new(RmbConfig::new(8, 2).unwrap());
        net.submit(MessageSpec::new(NodeId::new(1), NodeId::new(4), 4))
            .unwrap();
        // Run a few ticks so the header extends through node 2.
        net.run(3);
        let src = derive_inc(&net, NodeId::new(1));
        assert_eq!(src.pe_drives.len(), 1, "source PE drives its INC");
        let mid = derive_inc(&net, NodeId::new(2));
        // Node 2 forwards the circuit: exactly one output in use, fed from
        // an adjacent input.
        let used: Vec<_> = mid.outputs.iter().filter(|s| !s.is_unused()).collect();
        assert_eq!(used.len(), 1);
        assert!(used[0].is_allowed());
    }

    #[test]
    #[should_panic(expected = "outside the ring")]
    fn derive_inc_rejects_foreign_nodes() {
        let net = RmbNetwork::new(RmbConfig::new(4, 2).unwrap());
        let _ = derive_inc(&net, NodeId::new(9));
    }
}
