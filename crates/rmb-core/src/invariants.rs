//! Structural invariant checking for the RMB network.
//!
//! These are the properties the paper's correctness argument rests on
//! (§2.4–2.5, Lemma 1, Theorem 1), checked directly against the simulator
//! state:
//!
//! 1. **Consistency** — the segment occupancy array and the virtual buses'
//!    height vectors describe the same configuration.
//! 2. **Continuity** — every live virtual bus occupies one segment per hop
//!    with adjacent heights differing by at most one (the INC switching
//!    range), i.e. the circuit is electrically continuous.
//! 3. **Head pinning** — while a header flit is parked short of its
//!    destination, the hop feeding it stays within switching reach of the
//!    top bus, on which the HF will be re-driven (INCs monitor only the
//!    top segment for header flits).
//! 4. **Legal port codes** — every derived INC status register is one of
//!    Table 1's allowed codes.
//! 5. **Fault isolation** — no *live* circuit (establishing, awaiting the
//!    Hack, or streaming data flits) occupies a faulted segment. A faulted
//!    segment owned by no bus is legal (it simply sits out of the
//!    availability pool), and so is one still owned by a circuit that is
//!    tearing down — the Nack/Fack frees it tail-first over the following
//!    ticks — but a data flit crossing a faulted segment is not.
//! 6. **Bitmap lockstep** — the packed occupancy bitmaps the hot path
//!    queries (per-bus occupied / faulted bits, the full-hop mask) agree
//!    bit-for-bit with the authoritative segment owner and fault tables.
//!
//! A fifth property — *downward-only motion* (§2.2: "The motion of
//! virtual-buses for the purpose of compaction is only downwards") — needs
//! history and is checked tick-over-tick by the network's checked mode
//! rather than here. Note that the paper's "this feature provides an order
//! on the virtual buses" remark is *not* a global no-crossing property:
//! two circuits may legally hold crossing height profiles when one's trail
//! sank behind a blocked header while the other extended along the top bus
//! (both INC connections stay within the ±1 switching range).

use crate::inc::derive_inc;
use crate::network::RmbNetwork;
use crate::virtual_bus::BusState;
use rmb_types::InsertionPolicy;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant failed (stable short name).
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

impl Error for InvariantViolation {}

fn fail(invariant: &'static str, detail: String) -> Result<(), InvariantViolation> {
    Err(InvariantViolation { invariant, detail })
}

/// Checks all structural invariants of a network.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_network(net: &RmbNetwork) -> Result<(), InvariantViolation> {
    let ring = net.ring();
    let n = ring.as_usize();
    let k = net.config().buses() as usize;
    let buses = net.buses_raw();

    // 1. Consistency, both directions.
    let mut expected: HashMap<(usize, usize), u64> = HashMap::new();
    for (bus, state) in buses.values_with_state() {
        let active = bus.active_hops(state);
        for j in 0..active {
            let hop = bus.hop_upstream_node(ring, j).as_usize();
            let l = bus.heights[j].as_usize();
            if expected.insert((hop, l), bus.id.get()).is_some() {
                return fail(
                    "consistency",
                    format!("two virtual buses claim segment (hop {hop}, bus {l})"),
                );
            }
            match net.segment_slot(hop, l) {
                Some(id) if id == bus.id => {}
                other => {
                    return fail(
                        "consistency",
                        format!(
                            "bus {} hop {j} expects segment (hop {hop}, bus {l}), found {other:?}",
                            bus.id
                        ),
                    )
                }
            }
        }
    }
    for hop in 0..n {
        for l in 0..k {
            if let Some(id) = net.segment_slot(hop, l) {
                if expected.get(&(hop, l)) != Some(&id.get()) {
                    return fail(
                        "consistency",
                        format!("segment (hop {hop}, bus {l}) holds {id} but no bus claims it"),
                    );
                }
            }
        }
    }

    // 2. Continuity: adjacent active heights within the INC switch range.
    for (bus, state) in buses.values_with_state() {
        let active = bus.active_hops(state);
        for j in 1..active {
            let a = bus.heights[j - 1];
            let b = bus.heights[j];
            if !a.is_adjacent_or_equal(b) {
                return fail(
                    "continuity",
                    format!(
                        "bus {} jumps from {a} to {b} between hops {} and {j}",
                        bus.id,
                        j - 1
                    ),
                );
            }
        }
    }

    // 3. Head pinning (only meaningful under the paper's insertion rule):
    // a blocked header's feeding hop stays within switching reach of the
    // top bus, on which the HF will be re-driven.
    if net.config().insertion == InsertionPolicy::TopBusOnly {
        let top = net.config().top_bus();
        for (bus, state) in buses.values_with_state() {
            if matches!(state, BusState::Establishing)
                && bus.head_node(ring) != bus.spec.destination
            {
                let last = *bus.heights.last().expect("live bus has hops");
                if !last.is_adjacent_or_equal(top) {
                    return fail(
                        "head-pinning",
                        format!(
                            "bus {} is establishing but its head hop sits at {last}, \
                             out of reach of {top}",
                            bus.id
                        ),
                    );
                }
            }
        }
    }

    // 4. Legal port codes at every INC.
    for node in ring.nodes() {
        let view = derive_inc(net, node);
        for (l, status) in view.outputs.iter().enumerate() {
            if !status.is_allowed() {
                return fail(
                    "port-codes",
                    format!("INC {node} output {l} holds forbidden code {status}"),
                );
            }
        }
    }

    // 5. Fault isolation: live circuits never occupy faulted segments.
    // (Unowned faulted segments are legal, as are dying circuits whose
    // teardown has not yet swept past the fault.)
    for (bus, state) in buses.values_with_state() {
        if !state.compactable() {
            continue;
        }
        for j in 0..bus.heights.len() {
            let hop = bus.hop_upstream_node(ring, j);
            let height = bus.heights[j];
            if net.is_segment_faulted(hop, height) {
                return fail(
                    "fault-isolation",
                    format!(
                        "live bus {} ({}) occupies faulted segment (hop {hop}, {height})",
                        bus.id, state
                    ),
                );
            }
        }
    }

    // 6. Bitmap lockstep: the packed occupancy mirror the hot path
    // queries must agree bit-for-bit with the owner / fault tables it
    // shadows.
    if let Err(detail) = net.verify_occupancy() {
        return fail("bitmap-lockstep", detail);
    }

    Ok(())
}

