//! The RMB core: an executable model of *"RMB — A Reconfigurable Multiple
//! Bus Network"* (ElGindy, Schröder, Spray, Somani, Schmeck — HPCA 1996).
//!
//! The RMB connects `N` nodes in a ring with `k` parallel physical bus
//! segments between every pair of adjacent interconnection network
//! controllers (INCs). Circuits ("virtual buses") are set up by a
//! wormhole-derived protocol — header flit on the top bus, data only after
//! the header acknowledgement — while an independent *compaction* protocol
//! continuously migrates live circuits down to the lowest free segments,
//! releasing the top bus for new requests. Synchronisation between
//! neighbouring INCs uses the paper's five-rule odd/even cycle handshake.
//!
//! Module map:
//!
//! * [`PortStatus`] / [`SourceDir`] — Table 1's 3-bit output-port codes.
//! * [`HopContext`] / [`MoveCondition`] — Fig. 7's four legal downward
//!   transitions; [`assessed_in_phase`] — Fig. 8's odd/even assessment.
//! * [`mbb_stages_upstream`] / [`mbb_stages_downstream`] — Fig. 4's
//!   make-before-break sequences, as status-register codes.
//! * [`CycleController`] / [`CycleRing`] — §2.5's state machine
//!   (Table 2, Fig. 9–10) with Lemma 1 instrumentation.
//! * [`RmbNetwork`] — the ring simulator: routing protocol, synchronous or
//!   handshake compaction, statistics, tracing, invariant checking.
//! * [`microsim::FlitLevelRmb`] — an independent flit-object engine with
//!   explicit Table 1 registers, used to cross-validate `RmbNetwork`.
//! * [`derive_inc`] — projects Table 1 registers out of the network state.
//! * [`render_occupancy`] — ASCII occupancy art for the paper's figures.
//!
//! # Examples
//!
//! ```
//! use rmb_core::RmbNetwork;
//! use rmb_types::{MessageSpec, NodeId, RmbConfig};
//!
//! // 16 nodes, 4 buses; send two overlapping messages.
//! let cfg = RmbConfig::new(16, 4)?;
//! let mut net = RmbNetwork::new(cfg);
//! net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(9), 32))?;
//! net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(11), 32))?;
//! let report = net.run_to_quiescence(100_000);
//! assert_eq!(report.delivered, 2);
//! assert!(report.compaction_moves > 0); // the second circuit compacted down
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compaction;
mod cycle;
mod inc;
pub mod invariants;
pub mod microsim;
mod network;
mod occupancy;
mod options;
mod render;
mod status;
mod virtual_bus;

pub use compaction::{
    assessed_in_phase, mbb_stages_downstream, mbb_stages_upstream, EndpointHeight, HopContext,
    MbbStage, MoveCondition, Phase,
};
pub use cycle::{CycleController, CycleFlags, CycleRing, CycleStep, SwitchState};
pub use inc::{derive_inc, IncView};
pub use invariants::InvariantViolation;
pub use network::{CompactionMode, RmbNetwork, RunReport};
pub use options::{FeasibilityMode, LogRetention, RmbNetworkBuilder, SchedulerMode, SimOptions};
pub use render::{bus_letter, render_inc_status, render_occupancy, render_virtual_buses};
pub use status::{PortStatus, SourceDir};
pub use virtual_bus::{BusState, StreamState, VirtualBus};
