//! A flit-level micro-simulator used to cross-validate [`RmbNetwork`].
//!
//! [`RmbNetwork`] models the data plane arithmetically (send-time queues);
//! this engine models it *explicitly*: every header, data and final flit
//! is an object advancing one segment per tick, every acknowledgement is
//! an object walking back along the circuit, and — crucially — each INC's
//! output-port status registers (Table 1) are real state, updated through
//! the make-before-break micro-steps of Fig. 4 with legality asserted at
//! every intermediate stage.
//!
//! The two engines implement the same protocol independently; the
//! `microsim` test suite runs both on identical workloads and requires
//! *identical* per-message delivery times. Divergence in either
//! implementation fails the cross-check.
//!
//! Scope: the paper's base protocol — top-bus insertion, synchronous
//! odd/even compaction, unlimited Dack window, unicast, no head timeout.

use crate::compaction::{assessed_in_phase, EndpointHeight, HopContext, Phase};
use crate::status::{PortStatus, SourceDir};
use rmb_sim::IdSlab;
use rmb_types::{
    BusIndex, DeliveredMessage, MessageSpec, NodeId, ProtocolError, RequestId, RingSize,
    RmbConfig, VirtualBusId,
};
use std::collections::VecDeque;

/// One in-flight flit of a circuit: its sequence number (0 = header,
/// 1..=m data, m+1 = final) and the hop index it currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlitPos {
    seq: u32,
    hop: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum CircuitState {
    /// Header drawing the circuit; parked at `head_node`.
    Establishing,
    /// Accepted; the Hack object is at hop boundary `pos` (counting back
    /// from the destination; reaches the source at `pos == span`).
    HackReturning { pos: u32 },
    /// Source streaming; `next_seq` is the next data flit to emit.
    Streaming { next_seq: u32, ff_emitted: bool },
    /// Refused; the Nack is tearing hops down tail-first.
    NackReturning { freed: usize },
    /// Final flit consumed; the Fack is tearing hops down tail-first.
    FackReturning { freed: usize },
}

#[derive(Debug, Clone)]
struct Circuit {
    request: RequestId,
    spec: MessageSpec,
    requested_at: u64,
    refusals: u32,
    heights: Vec<BusIndex>,
    flits: VecDeque<FlitPos>,
    delivered_data: u32,
    circuit_at: u64,
    state: CircuitState,
}

impl Circuit {
    fn span(&self, ring: RingSize) -> u32 {
        ring.clockwise_distance(self.spec.source, self.spec.destination)
    }
    fn head_node(&self, ring: RingSize) -> NodeId {
        ring.advance(self.spec.source, self.heights.len() as u32)
    }
}

#[derive(Debug, Clone, Default)]
struct Node {
    pending: VecDeque<(RequestId, MessageSpec, u64, u32)>, // (req, spec, requested_at, refusals)
    sending: bool,
    receiving: bool,
}

/// The explicit flit-level RMB engine. See the module docs for scope.
#[derive(Debug)]
pub struct FlitLevelRmb {
    cfg: RmbConfig,
    now: u64,
    /// Output-port status registers, `[node][port]` — the Table 1 state.
    out_status: Vec<Vec<PortStatus>>,
    /// Segment occupancy, `[hop][bus]`.
    seg_owner: Vec<Vec<Option<VirtualBusId>>>,
    /// Live circuits, keyed by `VirtualBusId::get` (ids are monotone, so
    /// the slab's sorted id list iterates in creation order for free).
    circuits: IdSlab<Circuit>,
    nodes: Vec<Node>,
    next_request: u64,
    next_circuit: u64,
    delivered: Vec<DeliveredMessage>,
    refusals: u64,
    moves: u64,
    /// Reusable compaction plan buffer (no per-tick allocation).
    scratch_plan: Vec<(VirtualBusId, usize, BusIndex, BusIndex)>,
}

impl FlitLevelRmb {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration uses features outside this engine's
    /// scope (see module docs): non-default insertion, ack mode, head
    /// timeout, multi-send/receive, or disabled compaction is allowed but
    /// early-compaction off is not.
    pub fn new(cfg: RmbConfig) -> Self {
        assert_eq!(
            cfg.insertion,
            rmb_types::InsertionPolicy::TopBusOnly,
            "microsim scope: top-bus insertion only"
        );
        assert_eq!(
            cfg.ack_mode,
            rmb_types::AckMode::Unlimited,
            "microsim scope: unlimited ack window only"
        );
        assert!(cfg.head_timeout.is_none(), "microsim scope: no head timeout");
        assert_eq!(cfg.node.max_concurrent_sends, 1, "microsim scope: single send");
        assert_eq!(
            cfg.node.max_concurrent_receives, 1,
            "microsim scope: single receive"
        );
        assert!(cfg.early_compaction, "microsim scope: early compaction on");
        let n = cfg.nodes().as_usize();
        let k = cfg.buses() as usize;
        FlitLevelRmb {
            cfg,
            now: 0,
            out_status: vec![vec![PortStatus::UNUSED; k]; n],
            seg_owner: vec![vec![None; k]; n],
            circuits: IdSlab::new(),
            nodes: vec![Node::default(); n],
            next_request: 0,
            next_circuit: 0,
            delivered: Vec::new(),
            refusals: 0,
            moves: 0,
            scratch_plan: Vec::new(),
        }
    }

    /// Submits a message.
    ///
    /// # Errors
    ///
    /// Mirrors [`RmbNetwork::submit`](crate::RmbNetwork::submit).
    pub fn submit(&mut self, spec: MessageSpec) -> Result<RequestId, ProtocolError> {
        let ring = self.cfg.nodes();
        if !ring.contains(spec.source) {
            return Err(ProtocolError::unknown_node(spec.source));
        }
        if !ring.contains(spec.destination) {
            return Err(ProtocolError::unknown_node(spec.destination));
        }
        if spec.source == spec.destination {
            return Err(ProtocolError::self_message(spec.source));
        }
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        self.nodes[spec.source.as_usize()]
            .pending
            .push_back((request, spec, spec.inject_at, 0));
        Ok(request)
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> &[DeliveredMessage] {
        &self.delivered
    }

    /// Total compaction moves performed.
    pub const fn compaction_moves(&self) -> u64 {
        self.moves
    }

    /// Total refusals issued.
    pub const fn refusals(&self) -> u64 {
        self.refusals
    }

    /// `true` when nothing is in flight or waiting.
    pub fn is_quiescent(&self) -> bool {
        self.circuits.is_empty() && self.nodes.iter().all(|n| n.pending.is_empty())
    }

    /// Runs until quiescent or `max_ticks`.
    pub fn run_to_quiescence(&mut self, max_ticks: u64) {
        while !self.is_quiescent() && self.now < max_ticks {
            self.tick();
        }
    }

    /// Advances one tick, mirroring `RmbNetwork::tick`'s phase order:
    /// acks/flits, destination decisions, head extension, injection,
    /// compaction.
    pub fn tick(&mut self) {
        self.move_acks_and_flits();
        self.decide();
        self.extend();
        self.inject();
        self.compact();
        self.now += 1;
        self.check_registers();
    }

    // ---------------------------------------------------------------

    fn move_acks_and_flits(&mut self) {
        let ring = self.cfg.nodes();
        let now = self.now;
        // The only phase that removes circuits: detach the slab so each
        // circuit mutates in place (no remove/re-insert churn) while the
        // node and register state stays freely borrowable; removals are
        // lazy and pruned in one pass at the end.
        let mut circuits = std::mem::replace(&mut self.circuits, IdSlab::new());
        for i in 0..circuits.active().len() {
            let id = VirtualBusId::new(circuits.active()[i]);
            let c = circuits.get_mut(id.get()).expect("active ids are live");
            let span = c.span(ring) as usize;
            let mut remove = false;
            match c.state {
                CircuitState::Establishing => {}
                CircuitState::HackReturning { ref mut pos } => {
                    // The Hack object crosses one segment per tick.
                    *pos += 1;
                    if *pos as usize == span {
                        c.circuit_at = now;
                        c.state = CircuitState::Streaming {
                            next_seq: 0,
                            ff_emitted: false,
                        };
                    }
                }
                CircuitState::Streaming { .. } => {
                    // Advance every in-flight flit one segment; consume at
                    // the destination (in place, preserving flit order).
                    let data_flits = c.spec.data_flits;
                    let total = data_flits + 1; // data + FF (header long gone)
                    let mut completed = false;
                    let mut arrived_data = 0;
                    c.flits.retain_mut(|f| {
                        f.hop += 1;
                        if f.hop == span {
                            if f.seq <= data_flits && f.seq >= 1 {
                                arrived_data += 1;
                            }
                            if f.seq == total {
                                completed = true;
                            }
                            false
                        } else {
                            true
                        }
                    });
                    c.delivered_data += arrived_data;
                    if completed {
                        self.delivered.push(DeliveredMessage {
                            request: c.request,
                            spec: c.spec,
                            requested_at: c.requested_at,
                            circuit_at: c.circuit_at,
                            delivered_at: now,
                            refusals: c.refusals,
                        });
                        self.nodes[c.spec.destination.as_usize()].receiving = false;
                        c.state = CircuitState::FackReturning { freed: 0 };
                    } else {
                        // Source emits the next flit into hop 0.
                        if let CircuitState::Streaming {
                            ref mut next_seq,
                            ref mut ff_emitted,
                        } = c.state
                        {
                            if *next_seq < c.spec.data_flits {
                                *next_seq += 1;
                                c.flits.push_back(FlitPos {
                                    seq: *next_seq,
                                    hop: 0,
                                });
                            } else if !*ff_emitted {
                                *ff_emitted = true;
                                c.flits.push_back(FlitPos {
                                    seq: c.spec.data_flits + 1,
                                    hop: 0,
                                });
                            }
                        }
                    }
                }
                CircuitState::NackReturning { freed }
                | CircuitState::FackReturning { freed } => {
                    // The teardown ack releases the tail hop: clear the
                    // segment and the upstream INC's register.
                    let idx = c.heights.len() - 1 - freed;
                    let node = ring.advance(c.spec.source, idx as u32);
                    let l = c.heights[idx];
                    self.release_segment(node.as_usize(), l, id);
                    self.clear_port(node.as_usize(), idx, c);
                    let new_freed = freed + 1;
                    match &mut c.state {
                        CircuitState::NackReturning { freed }
                        | CircuitState::FackReturning { freed } => *freed = new_freed,
                        _ => unreachable!(),
                    }
                    if new_freed == c.heights.len() {
                        remove = true;
                    }
                }
            }
            if remove {
                let source = c.spec.source;
                self.nodes[source.as_usize()].sending = false;
                if matches!(c.state, CircuitState::NackReturning { .. }) {
                    let refusals = c.refusals + 1;
                    let backoff = self.cfg.node.retry_backoff * u64::from(refusals);
                    // Mirror RmbNetwork: the retry waits `backoff` ticks but
                    // keeps the original request time for latency stats.
                    self.nodes[source.as_usize()].pending.push_back((
                        c.request,
                        c.spec.at(now + backoff),
                        c.requested_at,
                        refusals,
                    ));
                }
                circuits.remove(id.get());
            }
        }
        circuits.compact_active();
        self.circuits = circuits;
    }

    fn decide(&mut self) {
        let ring = self.cfg.nodes();
        for i in 0..self.circuits.active().len() {
            let id = self.circuits.active()[i];
            let (head, dst);
            {
                let c = self.circuits.get(id).expect("active ids are live");
                if !matches!(c.state, CircuitState::Establishing) {
                    continue;
                }
                head = c.head_node(ring);
                dst = c.spec.destination;
            }
            if head != dst {
                continue;
            }
            let accept = !self.nodes[dst.as_usize()].receiving;
            let c = self.circuits.get_mut(id).expect("live");
            if accept {
                self.nodes[dst.as_usize()].receiving = true;
                c.state = CircuitState::HackReturning { pos: 0 };
                // The header flit is consumed at the destination.
                c.flits.clear();
            } else {
                c.state = CircuitState::NackReturning { freed: 0 };
                self.refusals += 1;
            }
        }
    }

    fn extend(&mut self) {
        let ring = self.cfg.nodes();
        let top = self.cfg.top_bus();
        for i in 0..self.circuits.active().len() {
            let id = self.circuits.active()[i];
            let head;
            {
                let c = self.circuits.get(id).expect("active ids are live");
                if !matches!(c.state, CircuitState::Establishing) {
                    continue;
                }
                head = c.head_node(ring);
                if head == c.spec.destination {
                    continue;
                }
            }
            let hop = head.as_usize();
            if self.seg_owner[hop][top.as_usize()].is_some() {
                continue;
            }
            // Claim the segment; wire the INC register: the new output at
            // `top` receives from the trail (straight or from below) — or
            // from the PE at the source.
            self.seg_owner[hop][top.as_usize()] = Some(VirtualBusId::new(id));
            let c = self.circuits.get_mut(id).expect("live");
            let prev = *c.heights.last().expect("has hops");
            c.heights.push(top);
            let offset = i32::from(prev.index()) - i32::from(top.index());
            let dir = SourceDir::from_offset(offset)
                .expect("trail stays within switching reach of the top");
            let status = &mut self.out_status[hop][top.as_usize()];
            assert!(status.is_unused(), "claiming a driven port");
            *status = status.with(dir);
        }
    }

    fn inject(&mut self) {
        let ring = self.cfg.nodes();
        let now = self.now;
        let n = ring.as_usize();
        let top = self.cfg.top_bus();
        let start = (now % n as u64) as usize;
        for off in 0..n {
            let s = (start + off) % n;
            if self.nodes[s].sending {
                continue;
            }
            let Some(&(_, spec, _, _)) = self.nodes[s].pending.front() else {
                continue;
            };
            if spec.inject_at > now {
                continue;
            }
            if self.seg_owner[s][top.as_usize()].is_some() {
                continue;
            }
            let (request, spec, requested_at, refusals) =
                self.nodes[s].pending.pop_front().expect("front");
            let id = VirtualBusId::new(self.next_circuit);
            self.next_circuit += 1;
            self.seg_owner[s][top.as_usize()] = Some(id);
            // Source port is PE-driven: the Table 1 register stays UNUSED
            // (the PE interface is a separate attachment).
            self.nodes[s].sending = true;
            self.circuits.insert(
                id.get(),
                Circuit {
                    request,
                    spec,
                    requested_at,
                    refusals,
                    heights: vec![top],
                    flits: VecDeque::from([FlitPos { seq: 0, hop: 0 }]),
                    delivered_data: 0,
                    circuit_at: 0,
                    state: CircuitState::Establishing,
                },
            );
        }
    }

    fn compact(&mut self) {
        if !self.cfg.compaction {
            return;
        }
        let ring = self.cfg.nodes();
        let phase = Phase::of_tick(self.now);
        // Decide on the phase-start snapshot, then apply with explicit
        // make-before-break register sequences. The plan buffer is owned by
        // the sim and reused tick over tick, so steady state allocates
        // nothing here.
        let mut plan = std::mem::take(&mut self.scratch_plan);
        plan.clear();
        for (id, c) in self.circuits.iter() {
            if matches!(
                c.state,
                CircuitState::NackReturning { .. } | CircuitState::FackReturning { .. }
            ) {
                continue;
            }
            for j in 0..c.heights.len() {
                let node = ring.advance(c.spec.source, j as u32);
                let height = c.heights[j];
                if !assessed_in_phase(node, height, phase) {
                    continue;
                }
                let ctx = self.hop_context(c, j, ring);
                if ctx.switchable_down().is_some() {
                    plan.push((VirtualBusId::new(id), j, height, height.lower().expect("not bottom")));
                }
            }
        }
        for &(id, j, from, to) in &plan {
            self.apply_move(id, j, from, to);
        }
        plan.clear();
        self.scratch_plan = plan;
    }

    fn hop_context(&self, c: &Circuit, j: usize, ring: RingSize) -> HopContext {
        let height = c.heights[j];
        let upstream = if j == 0 {
            EndpointHeight::Pe
        } else {
            EndpointHeight::At(c.heights[j - 1])
        };
        let downstream = if j + 1 == c.heights.len() {
            match c.state {
                CircuitState::Establishing if c.head_node(ring) != c.spec.destination => {
                    EndpointHeight::ParkedHead
                }
                _ => EndpointHeight::Pe,
            }
        } else {
            EndpointHeight::At(c.heights[j + 1])
        };
        let hop = ring.advance(c.spec.source, j as u32).as_usize();
        let below_free = height
            .lower()
            .map(|lo| self.seg_owner[hop][lo.as_usize()].is_none())
            .unwrap_or(false);
        HopContext {
            height,
            top: self.cfg.top_bus(),
            upstream,
            downstream,
            below_free,
        }
    }

    /// Applies one downward move with the full make-before-break register
    /// choreography, asserting Table 1 legality at every micro-step.
    fn apply_move(&mut self, id: VirtualBusId, j: usize, from: BusIndex, to: BusIndex) {
        let ring = self.cfg.nodes();
        // Only three facts about the circuit matter for the register
        // choreography; copy them out instead of cloning the whole circuit.
        let (source, up_in, down_out) = {
            let c = self.circuits.get(id.get()).expect("live");
            (
                c.spec.source,
                if j == 0 { None } else { Some(c.heights[j - 1]) },
                if j + 1 < c.heights.len() {
                    Some(c.heights[j + 1])
                } else {
                    None
                },
            )
        };
        let node = ring.advance(source, j as u32).as_usize();
        let next = ring.advance(source, j as u32 + 1).as_usize();

        // Upstream INC (output side): make the new connection before
        // breaking the old one.
        if let Some(inp) = up_in {
            let into_new = SourceDir::from_offset(i32::from(inp.index()) - i32::from(to.index()))
                .expect("switchable move keeps the input in reach");
            // make
            let made = self.out_status[node][to.as_usize()].with(into_new);
            assert!(made.is_allowed());
            self.out_status[node][to.as_usize()] = made;
            // break
            let old = self.out_status[node][from.as_usize()];
            assert!(!old.is_unused(), "old port must have been driven");
            self.out_status[node][from.as_usize()] = PortStatus::UNUSED;
        }
        // Downstream INC (input side): its consuming output port briefly
        // receives from both the old and the new input.
        if let Some(out) = down_out {
            let old_in = SourceDir::from_offset(i32::from(from.index()) - i32::from(out.index()))
                .expect("current connection is legal");
            let new_in = SourceDir::from_offset(i32::from(to.index()) - i32::from(out.index()))
                .expect("switchable move keeps the output in reach");
            let both = self.out_status[next][out.as_usize()].with(new_in);
            assert!(both.is_allowed(), "MBB overlap must be a legal code");
            self.out_status[next][out.as_usize()] = both;
            let after = both.without(old_in);
            assert!(after.is_allowed());
            self.out_status[next][out.as_usize()] = after;
        }
        // Move the segment occupancy and the circuit's height.
        assert_eq!(self.seg_owner[node][from.as_usize()], Some(id));
        assert!(self.seg_owner[node][to.as_usize()].is_none());
        self.seg_owner[node][from.as_usize()] = None;
        self.seg_owner[node][to.as_usize()] = Some(id);
        self.circuits.get_mut(id.get()).expect("live").heights[j] = to;
        self.moves += 1;
    }

    fn release_segment(&mut self, hop: usize, l: BusIndex, id: VirtualBusId) {
        assert_eq!(self.seg_owner[hop][l.as_usize()], Some(id));
        self.seg_owner[hop][l.as_usize()] = None;
    }

    /// Clears the upstream register of hop `idx` during teardown.
    fn clear_port(&mut self, node: usize, idx: usize, c: &Circuit) {
        if idx == 0 {
            return; // PE-driven; register was never set
        }
        let l = c.heights[idx];
        self.out_status[node][l.as_usize()] = PortStatus::UNUSED;
    }

    /// Global register sanity: every driven port corresponds to an owned
    /// segment, and every code is Table 1-legal and steady between ticks.
    fn check_registers(&self) {
        for (node, ports) in self.out_status.iter().enumerate() {
            for (l, status) in ports.iter().enumerate() {
                assert!(status.is_allowed(), "INC {node} out{l}: {status}");
                assert!(
                    status.is_steady(),
                    "INC {node} out{l} left in MBB overlap: {status}"
                );
                if !status.is_unused() {
                    assert!(
                        self.seg_owner[node][l].is_some(),
                        "INC {node} drives out{l} but the segment is free"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u32, k: u16) -> RmbConfig {
        RmbConfig::new(n, k).unwrap()
    }

    #[test]
    fn single_message_matches_hand_timeline() {
        let mut sim = FlitLevelRmb::new(cfg(8, 2));
        sim.submit(MessageSpec::new(NodeId::new(0), NodeId::new(4), 4))
            .unwrap();
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.delivered().len(), 1);
        let d = &sim.delivered()[0];
        // Same hand-derived timeline as the arithmetic engine's test:
        // circuit at 2L = 8, done at 2L + m + 1 + L = 17.
        assert_eq!(d.circuit_at, 8);
        assert_eq!(d.delivered_at, 17);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn registers_are_clean_after_quiescence() {
        let mut sim = FlitLevelRmb::new(cfg(10, 3));
        for s in 0..5 {
            sim.submit(MessageSpec::new(NodeId::new(s), NodeId::new(s + 5), 8).at(u64::from(s) * 3))
                .unwrap();
        }
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.delivered().len(), 5);
        // All registers unused, all segments free.
        for ports in &sim.out_status {
            assert!(ports.iter().all(|p| p.is_unused()));
        }
        for row in &sim.seg_owner {
            assert!(row.iter().all(|s| s.is_none()));
        }
        assert!(sim.compaction_moves() > 0);
    }

    #[test]
    #[should_panic(expected = "microsim scope")]
    fn rejects_out_of_scope_configs() {
        let cfg = RmbConfig::builder(8, 2).head_timeout(10).build().unwrap();
        let _ = FlitLevelRmb::new(cfg);
    }
}
