//! The RMB ring network simulator.
//!
//! Ties the pieces together: N nodes on a ring, k physical bus segments
//! per hop, the routing protocol of §2.2–2.3 (header flit insertion at the
//! top bus, extension one hop per tick, Hack/Dack/Fack/Nack, data flits
//! only after the Hack, tail-first teardown), and the compaction protocol
//! of §2.4–2.5 in two flavours:
//!
//! * **synchronous** — an idealised global odd/even alternation, one phase
//!   per tick (used by the large experiments), and
//! * **handshake** — every INC runs the paper's five-rule cycle controller
//!   off its own (possibly skewed) activation clock, exactly as §2.5
//!   prescribes (used by the fidelity and Lemma 1 experiments).
//!
//! One tick is the time a flit or acknowledgement needs to cross one bus
//! segment. Within a tick the simulator performs, in order: stream and
//! teardown progression, destination decisions, head extensions,
//! injections, one compaction activation, statistics.
//!
//! # Hot-path storage
//!
//! Live virtual buses sit in a slab ([`BusSlab`]): a slot vector with a
//! free list, an id→slot index, and a dense list of live ids kept in
//! ascending id order. Ids are allocated monotonically and buses die only
//! in the sweep phase, which compacts the id list in place, so iteration
//! order is identical to the `BTreeMap` this replaced while lookups,
//! insertions and removals are O(1) with no per-tick allocation. Lifecycle
//! state is a struct-of-arrays lane on the slab ([`BusState`] is `Copy`):
//! the stream/teardown kernel reads a circuit's state out of the lane,
//! advances it in registers and writes it back, touching the cold
//! [`VirtualBus`] struct only on transitions. Segment occupancy is one
//! flat array (`hop * k + bus`) with a per-hop free count, mirrored into
//! packed per-bus bitmaps (`occupancy::Occupancy`) kept in lockstep at
//! every occupy/release/fault/repair, so
//! [`segment_owner`](RmbNetwork::segment_owner) is an array read and
//! [`path_feasible`](RmbNetwork::path_feasible) one wrap-aware masked
//! range test (`FeasibilityMode::Bitmap`, the default) or O(1) per hop
//! over the free counts (`FeasibilityMode::SlabWalk`, the retained
//! oracle).
//!
//! # Scheduling
//!
//! Two per-tick execution engines share this state
//! ([`SchedulerMode`](crate::SchedulerMode), selected through
//! [`SimOptions`]): the classic *dense sweep* touches every live bus and
//! every INC each tick, while the default *event-driven* engine keeps a
//! per-bus `next_due` tick, a ready set plus hierarchical timing wheel for
//! injection queues, and a dirty set for compaction, so a tick costs
//! O(circuits with due work) rather than O(N·k). The two are byte-identical
//! by construction and by test (see `tests/scheduler_equivalence.rs`); the
//! sweep survives purely as the cross-check oracle.

use crate::compaction::{assessed_in_phase, EndpointHeight, HopContext, Phase};
use crate::cycle::CycleRing;
use crate::invariants::{check_network, InvariantViolation};
use crate::occupancy::Occupancy;
use crate::options::{
    FeasibilityMode, LogRetention, RmbNetworkBuilder, SchedulerMode, SimOptions,
};
use crate::virtual_bus::{BusState, StreamState, VirtualBus};
use rmb_sim::stats::OnlineStats;
use rmb_sim::trace::{TraceEvent, TraceKind, TraceSink, VecSink};
use rmb_sim::{QuantileSketch, SimRng, Tick, TimingWheel};
use rmb_types::{
    AbortedMessage, AckMode, BusIndex, DeliveredMessage, FaultKind, InsertionPolicy, MessageSpec,
    NodeId, ProtocolError, RequestId, RingSize, RmbConfig, VirtualBusId,
};
use std::collections::{HashMap, VecDeque};

/// Cap on the bounded exponential fault-retry backoff, in ticks.
const MAX_FAULT_BACKOFF: u64 = 4096;

/// Which compaction engine drives the odd/even cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionMode {
    /// Global lockstep: tick `t` runs the `Phase::of_tick(t)` cycle at
    /// every INC simultaneously.
    Synchronous,
    /// Per-INC five-rule cycle controllers (§2.5). INC `i` is activated on
    /// ticks where `tick % periods[i] == 0`, modelling independent clocks.
    Handshake {
        /// Activation period per INC (1 = every tick).
        periods: Vec<u64>,
    },
}

/// A request waiting at its source node for injection.
#[derive(Debug, Clone)]
struct PendingRequest {
    request: RequestId,
    spec: MessageSpec,
    taps: Vec<NodeId>,
    requested_at: u64,
    refusals: u32,
    not_before: u64,
}

/// Per-node state: the PE-side send/receive slots and the HF buffer.
#[derive(Debug, Clone, Default)]
struct NodeState {
    pending: VecDeque<PendingRequest>,
    sends_active: u32,
    receives_active: u32,
}

/// A compaction move: (bus, hop index, from height, to height, hop node).
type MoveCmd = (VirtualBusId, usize, BusIndex, BusIndex, usize);

/// What [`RmbNetwork::try_inject_at`] did for one node's queue front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectOutcome {
    /// The node is at its concurrent-send cap; the front stays queued.
    CapBlocked,
    /// The queue is empty.
    NoFront,
    /// The front's `not_before` is in the future.
    NotDue,
    /// Faults block injection; the front was refused (and backed off or
    /// aborted), changing the queue front.
    RefusedAtSource,
    /// No usable segment; the HF stays buffered at the node (§2.3).
    Buffered,
    /// The front was injected as a new virtual bus.
    Injected,
}

/// State of the event-driven scheduler ([`SchedulerMode::EventDriven`]).
///
/// Per-bus entries are indexed by the bus's *slot* in the [`BusSlab`]
/// (reset on slot reuse by [`RmbNetwork::sched_init_bus`]); per-node
/// injection state lives in a ready set plus a timing wheel. The dense
/// sweep ignores all of this. See DESIGN.md for the wake discipline.
#[derive(Debug, Default)]
struct SchedState {
    /// Per-slot earliest tick at which the bus next has stream/teardown
    /// work (`u64::MAX` for parked `Establishing` buses).
    next_due: Vec<u64>,
    /// Per-slot membership flag for `compact_dirty`.
    dirty: Vec<bool>,
    /// Per-slot count of consecutive compaction activations that found no
    /// move for this bus; at 2 (one odd + one even phase) it goes clean.
    clean_streak: Vec<u8>,
    /// Live `Establishing` buses in ascending id order, compacted lazily
    /// as buses leave the state (drives the decide/extend phases).
    establishing: Vec<VirtualBusId>,
    /// Buses that may have an eligible compaction move, ascending id
    /// order (may contain dead ids until they are iterated over).
    compact_dirty: Vec<VirtualBusId>,
    /// Nodes whose queue front is due for injection, ascending.
    ready: Vec<u32>,
    /// Per-node membership flag for `ready`.
    ready_mask: Vec<bool>,
    /// One entry per node whose queue front becomes due at a future tick.
    wheel: TimingWheel<u32>,
    /// Buses to re-mark compaction-dirty at the next activation; buffered
    /// because segment releases can fire while the bus slab is detached.
    pending_wakes: Vec<VirtualBusId>,
    /// Reusable snapshot of `ready` for the injection scan.
    scratch_ready: Vec<u32>,
}

/// Slab storage for live virtual buses (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct BusSlab {
    /// Slot storage; dead slots are `None` and recycled via `free`.
    slots: Vec<Option<VirtualBus>>,
    /// Struct-of-arrays lifecycle lane, indexed by slot like `slots`: the
    /// single authority on each live bus's [`BusState`]. Kept separate so
    /// the per-tick kernel streams over small `Copy` states without
    /// touching the cold bus structs.
    states: Vec<BusState>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Slot of each id ever allocated (`DEAD` when not live). Bounded by
    /// the total id count, at four bytes per id.
    slot_of: Vec<u32>,
    /// Live ids in ascending order.
    /// Live `(id, slot)` pairs in ascending id order. Carrying the slot
    /// alongside the id spares the tick kernel one dependent load
    /// (`slot_of`) per live bus per tick; a bus's slot is fixed from
    /// `insert` to `discard`, so the pair never goes stale.
    active: Vec<(VirtualBusId, u32)>,
}

const DEAD: u32 = u32::MAX;

impl BusSlab {
    fn len(&self) -> usize {
        self.active.len()
    }

    fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Live ids in ascending order.
    #[cfg(test)]
    fn active_ids(&self) -> Vec<VirtualBusId> {
        self.active.iter().map(|&(id, _)| id).collect()
    }

    /// The live id at position `i` of the active list.
    fn active_id(&self, i: usize) -> VirtualBusId {
        self.active[i].0
    }

    /// The live `(id, slot)` pair at position `i` of the active list.
    #[inline]
    fn active_entry(&self, i: usize) -> (VirtualBusId, usize) {
        let (id, slot) = self.active[i];
        (id, slot as usize)
    }

    fn slot(&self, id: VirtualBusId) -> Option<usize> {
        match self.slot_of.get(id.get() as usize) {
            Some(&s) if s != DEAD => Some(s as usize),
            _ => None,
        }
    }

    fn get(&self, id: VirtualBusId) -> Option<&VirtualBus> {
        self.slot(id).and_then(|s| self.slots[s].as_ref())
    }

    fn get_mut(&mut self, id: VirtualBusId) -> Option<&mut VirtualBus> {
        self.slot(id).and_then(|s| self.slots[s].as_mut())
    }

    /// Inserts a freshly allocated bus with its initial lifecycle state.
    /// Ids are monotonic, so appending keeps `active` sorted.
    fn insert(&mut self, bus: VirtualBus, state: BusState) {
        let id = bus.id;
        debug_assert!(
            self.active.last().is_none_or(|&(last, _)| last < id),
            "bus ids must ascend"
        );
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(bus);
                self.states[s as usize] = state;
                s
            }
            None => {
                self.slots.push(Some(bus));
                self.states.push(state);
                (self.slots.len() - 1) as u32
            }
        };
        let idx = id.get() as usize;
        if self.slot_of.len() <= idx {
            self.slot_of.resize(idx + 1, DEAD);
        }
        self.slot_of[idx] = slot;
        self.active.push((id, slot));
    }

    /// The lifecycle state of a live bus.
    fn state(&self, id: VirtualBusId) -> Option<BusState> {
        self.slot(id).map(|s| self.states[s])
    }

    /// The lifecycle state in slot `slot` (the caller owns slot liveness).
    #[inline]
    fn state_at(&self, slot: usize) -> BusState {
        self.states[slot]
    }

    /// Mutable access to the state in slot `slot`, for in-place counter
    /// updates on the tick kernel's fast path.
    #[inline]
    fn state_at_mut(&mut self, slot: usize) -> &mut BusState {
        &mut self.states[slot]
    }

    /// Writes the lifecycle state of slot `slot`.
    #[inline]
    fn set_state_at(&mut self, slot: usize, state: BusState) {
        self.states[slot] = state;
    }

    /// Writes the lifecycle state of a live bus.
    fn set_state(&mut self, id: VirtualBusId, state: BusState) {
        let slot = self.slot(id).expect("setting state of a live bus");
        self.states[slot] = state;
    }

    /// Takes a live bus out of its slot for mutation; pair with
    /// [`put_back`](Self::put_back) or [`discard`](Self::discard).
    fn take(&mut self, id: VirtualBusId) -> Option<VirtualBus> {
        self.slot(id).and_then(|s| self.slots[s].take())
    }

    #[cfg(test)]
    fn put_back(&mut self, id: VirtualBusId, bus: VirtualBus) {
        let slot = self.slot(id).expect("putting back a known bus");
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(bus);
    }

    /// Frees the slot of a bus already removed with [`take`](Self::take).
    /// The caller owns compacting `active` (see the sweep phase).
    fn discard(&mut self, id: VirtualBusId) {
        let slot = self.slot(id).expect("discarding a known bus");
        debug_assert!(self.slots[slot].is_none(), "discard follows take");
        self.slot_of[id.get() as usize] = DEAD;
        self.free.push(slot as u32);
    }

    /// Overwrites position `i` of the active list (sweep compaction).
    fn set_active(&mut self, i: usize, id: VirtualBusId, slot: usize) {
        self.active[i] = (id, slot as u32);
    }

    /// Shortens the active list to `len` entries (sweep compaction).
    fn truncate_active(&mut self, len: usize) {
        self.active.truncate(len);
    }

    /// Live buses in ascending id order.
    pub(crate) fn values(&self) -> impl Iterator<Item = &VirtualBus> {
        self.active.iter().map(move |&(_, slot)| {
            self.slots[slot as usize]
                .as_ref()
                .expect("active slots are live")
        })
    }

    /// `(id, bus)` pairs in ascending id order.
    fn iter(&self) -> impl Iterator<Item = (VirtualBusId, &VirtualBus)> {
        self.active.iter().map(move |&(id, slot)| {
            (
                id,
                self.slots[slot as usize]
                    .as_ref()
                    .expect("active slots are live"),
            )
        })
    }

    /// `(bus, state)` pairs in ascending id order — for consumers that
    /// need both the cold struct and the state lane (invariants, INC
    /// projection, renderers).
    pub(crate) fn values_with_state(&self) -> impl Iterator<Item = (&VirtualBus, BusState)> {
        self.active.iter().map(move |&(_, slot)| {
            let slot = slot as usize;
            (
                self.slots[slot].as_ref().expect("active slots are live"),
                self.states[slot],
            )
        })
    }
}

/// Summary of a completed (or aborted) simulation run.
///
/// This is a set of counters and pre-aggregated statistics — building one
/// does not copy the delivered-message log. Per-message detail lives in
/// [`RmbNetwork::delivered_log`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Messages delivered in full.
    pub delivered: usize,
    /// Total `Nack` refusals issued.
    pub refusals: u64,
    /// Total compaction moves performed.
    pub compaction_moves: u64,
    /// Mean fraction of busy physical segments over the run.
    pub mean_utilization: f64,
    /// Peak number of simultaneously live virtual buses.
    pub peak_virtual_buses: usize,
    /// Requests submitted but not delivered when the run ended.
    pub undelivered: usize,
    /// `true` if the run ended because no progress was being made while
    /// work remained (a routing stall / deadlock).
    pub stalled: bool,
    /// Total requeue events: every time a refused or fault-killed request
    /// went back to its source queue for another attempt.
    pub retries: u64,
    /// Messages dropped after exhausting the retry budget (counted per
    /// destination, like `delivered`). A subset of `undelivered`.
    pub aborted: usize,
    /// Live circuits torn down because a fault struck a resource they
    /// occupied or depended on.
    pub fault_kills: u64,
    /// Tick of the last delivery (0 when nothing was delivered).
    makespan: u64,
    /// Sum of end-to-end latencies over all deliveries.
    latency_sum: u64,
    /// Sum of circuit set-up latencies over all deliveries.
    setup_sum: u64,
    /// Requests that were fault-killed at least once and later delivered.
    recovered: usize,
    /// Sum over recovered requests of (delivery tick - first kill tick).
    recovery_sum: u64,
    /// Worst time-to-recover over recovered requests.
    max_recovery: u64,
    /// `(p50, p99, p999, max)` latency estimates from the online sketch,
    /// present only when the run was built with
    /// [`latency_sketch(true)`](crate::RmbNetworkBuilder::latency_sketch).
    latency_quantiles: Option<(u64, u64, u64, u64)>,
}

impl RunReport {
    /// Tick of the last delivery, or 0 when nothing was delivered.
    pub const fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Mean end-to-end message latency.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.delivered as f64
    }

    /// Mean circuit set-up latency.
    pub fn mean_setup_latency(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.setup_sum as f64 / self.delivered as f64
    }

    /// Requests that were fault-killed at least once and later delivered.
    pub const fn recovered(&self) -> usize {
        self.recovered
    }

    /// Mean ticks from a request's first fault kill to its delivery, over
    /// the requests that recovered (0 when none did).
    pub fn mean_time_to_recover(&self) -> f64 {
        if self.recovered == 0 {
            return 0.0;
        }
        self.recovery_sum as f64 / self.recovered as f64
    }

    /// Worst ticks from first fault kill to delivery over recovered
    /// requests (0 when none recovered).
    pub const fn max_time_to_recover(&self) -> u64 {
        self.max_recovery
    }
}

impl rmb_types::StatsReport for RunReport {
    fn ticks(&self) -> u64 {
        self.ticks
    }

    fn delivered_count(&self) -> u64 {
        self.delivered as u64
    }

    fn aborted_count(&self) -> u64 {
        self.aborted as u64
    }

    fn refusal_count(&self) -> u64 {
        self.refusals
    }

    fn mean_utilization(&self) -> Option<f64> {
        Some(self.mean_utilization)
    }

    fn is_stalled(&self) -> bool {
        self.stalled
    }

    fn latency(&self) -> rmb_types::LatencySummary {
        let (p50, p99, p999, max) = match self.latency_quantiles {
            Some((a, b, c, d)) => (Some(a), Some(b), Some(c), Some(d)),
            None => (None, None, None, None),
        };
        rmb_types::LatencySummary {
            count: self.delivered as u64,
            mean: self.mean_latency(),
            p50,
            p99,
            p999,
            max,
        }
    }
}

/// The RMB network simulator.
///
/// # Examples
///
/// ```
/// use rmb_core::RmbNetwork;
/// use rmb_types::{MessageSpec, NodeId, RmbConfig};
///
/// let cfg = RmbConfig::new(8, 2)?;
/// let mut net = RmbNetwork::new(cfg);
/// net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(4), 8))?;
/// let report = net.run_to_quiescence(10_000);
/// assert_eq!(report.delivered, 1);
/// assert!(!report.stalled);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RmbNetwork {
    cfg: RmbConfig,
    now: Tick,
    /// Flat segment-occupancy table: the segment between node `hop` and
    /// node `hop + 1` at height `bus` is `segments[hop * k + bus]`.
    segments: Vec<Option<VirtualBusId>>,
    /// Number of free segments per hop (for the O(1) feasibility oracle).
    free_per_hop: Vec<u16>,
    /// Packed occupancy/fault bitmaps, kept in lockstep with `segments`,
    /// `fault_count` and `free_per_hop` (invariant #6). Answers the hot
    /// availability and path-feasibility queries in `Bitmap` mode.
    occ: Occupancy,
    buses: BusSlab,
    nodes: Vec<NodeState>,
    /// Runtime options (compaction engine, fault schedule, tracing,
    /// checking), fixed at build time by [`RmbNetworkBuilder`].
    opts: SimOptions,
    cycles: Option<CycleRing>,
    next_request: u64,
    next_bus: u64,
    busy_segments: usize,
    /// Total requests sitting in node queues (cached so quiescence checks
    /// don't scan all N nodes).
    pending_total: usize,
    /// Cached `opts.scheduler == EventDriven` (immutable after build).
    event_driven: bool,
    /// Cached `opts.feasibility == Bitmap` (immutable after build); the
    /// dispatch branch is run-constant and predicted perfectly.
    feas_bitmap: bool,
    /// `true` while the event engine also tracks the compaction dirty set
    /// (event-driven + synchronous compaction + compaction enabled).
    track_dirty: bool,
    /// Event-driven scheduler state (unused by the dense sweep).
    sched: SchedState,
    // Fault machinery.
    /// The plan flattened to `(tick, is_repair, kind)`, sorted by tick.
    fault_timeline: Vec<(u64, bool, FaultKind)>,
    /// Cursor into `fault_timeline`: first entry not yet applied.
    next_fault: usize,
    /// Active fault count per segment (flat `hop * k + bus`); a segment is
    /// faulty while any covering fault is active.
    fault_count: Vec<u8>,
    /// Active `IncDead` count per node.
    dead_inc: Vec<u8>,
    /// Jitter stream for fault-retry backoff; only drawn after a fault
    /// kill, so fault-free runs never touch it.
    fault_rng: SimRng,
    /// First fault-kill tick per request still awaiting recovery.
    first_kill: HashMap<u64, u64>,
    // Counters and stats.
    delivered: Vec<DeliveredMessage>,
    /// Terminal failures, in abort order (mirrors `delivered` for the
    /// failure path; read through [`RmbNetwork::aborted_log`]).
    aborted_log: Vec<AbortedMessage>,
    /// Records dropped from the front of `delivered` under windowed /
    /// counters-only retention: absolute sequence number of
    /// `delivered[0]`. Zero under full retention.
    delivered_base: u64,
    /// Abort-side counterpart of `delivered_base`.
    aborted_base: u64,
    /// Online latency percentiles, when `opts.latency_sketch` is on.
    latency_sketch: Option<QuantileSketch>,
    refusals: u64,
    compaction_moves: u64,
    retries: u64,
    aborted: usize,
    fault_kills: u64,
    recovered: usize,
    recovery_sum: u64,
    max_recovery: u64,
    utilization: OnlineStats,
    /// Memoized `(busy_segments, busy / total)` of the last utilisation
    /// sample: the quotient only needs recomputing when occupancy moved,
    /// which keeps an fdiv off the steady-state tick path. Same inputs
    /// give the same bits, so recorded stats are unaffected.
    util_sample: (usize, f64),
    peak_virtual_buses: usize,
    submitted: u64,
    last_progress: u64,
    latency_sum: u64,
    setup_sum: u64,
    last_delivery_at: u64,
    // Reusable per-tick scratch (kept to avoid per-tick allocation).
    scratch_moves: Vec<MoveCmd>,
    // Tracing.
    recorder: Option<VecSink>,
    /// Previous heights per live bus, kept only in checked mode to verify
    /// downward-only motion.
    height_history: HashMap<u64, Vec<u16>>,
}

impl RmbNetwork {
    /// Creates an idle network from a configuration with default options
    /// (synchronous compactor, fast-forward on, no faults).
    pub fn new(cfg: RmbConfig) -> Self {
        Self::with_options(cfg, SimOptions::default())
    }

    /// Starts a builder over this configuration; see
    /// [`RmbNetworkBuilder`].
    pub fn builder(cfg: RmbConfig) -> RmbNetworkBuilder {
        RmbNetworkBuilder::new(cfg)
    }

    /// Creates an idle network from a configuration plus explicit
    /// [`SimOptions`] (what [`RmbNetworkBuilder::build`] calls).
    ///
    /// # Panics
    ///
    /// Panics if a handshake mode's `periods` length differs from `N` or
    /// contains a zero, or if the fault plan names nodes or buses outside
    /// the ring.
    pub fn with_options(cfg: RmbConfig, opts: SimOptions) -> Self {
        if let Err(e) = opts.fault_plan.validate(cfg.nodes().get(), cfg.buses()) {
            panic!("invalid fault plan: {e}");
        }
        // Flatten the plan into one sorted timeline of activations and
        // repairs; the stable sort keeps same-tick events in plan order.
        let mut fault_timeline = Vec::with_capacity(opts.fault_plan.events().len() * 2);
        for event in opts.fault_plan.events() {
            fault_timeline.push((event.at, false, event.kind));
            if let Some(repair) = event.repair_at {
                fault_timeline.push((repair, true, event.kind));
            }
        }
        fault_timeline.sort_by_key(|&(at, _, _)| at);
        let n = cfg.nodes().as_usize();
        let k = cfg.buses() as usize;
        let mode = opts.compaction_mode.clone();
        let fault_seed = opts.fault_seed;
        let recording = opts.recording;
        let event_driven = opts.scheduler == SchedulerMode::EventDriven;
        let feas_bitmap = opts.feasibility == FeasibilityMode::Bitmap;
        let sketch = opts.latency_sketch.then(QuantileSketch::latency_defaults);
        let mut net = RmbNetwork {
            cfg,
            now: Tick::ZERO,
            segments: vec![None; n * k],
            free_per_hop: vec![k as u16; n],
            occ: Occupancy::new(n, k),
            buses: BusSlab::default(),
            nodes: vec![NodeState::default(); n],
            opts,
            cycles: None,
            next_request: 0,
            next_bus: 0,
            busy_segments: 0,
            pending_total: 0,
            event_driven,
            feas_bitmap,
            track_dirty: false,
            sched: SchedState {
                ready_mask: vec![false; n],
                ..SchedState::default()
            },
            fault_timeline,
            next_fault: 0,
            fault_count: vec![0; n * k],
            dead_inc: vec![0; n],
            fault_rng: SimRng::seed(fault_seed),
            first_kill: HashMap::new(),
            delivered: Vec::new(),
            aborted_log: Vec::new(),
            delivered_base: 0,
            aborted_base: 0,
            latency_sketch: sketch,
            refusals: 0,
            compaction_moves: 0,
            retries: 0,
            aborted: 0,
            fault_kills: 0,
            recovered: 0,
            recovery_sum: 0,
            max_recovery: 0,
            utilization: OnlineStats::default(),
            util_sample: (0, 0.0),
            peak_virtual_buses: 0,
            submitted: 0,
            last_progress: 0,
            latency_sum: 0,
            setup_sum: 0,
            last_delivery_at: 0,
            scratch_moves: Vec::new(),
            recorder: recording.then(VecSink::new),
            height_history: HashMap::new(),
        };
        net.apply_compaction_mode(mode);
        net
    }

    /// The options this network runs under.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// Validates `mode` and installs it, wiring the handshake
    /// controllers. Only ever runs at build time, before any virtual bus
    /// exists — options are immutable once the network is running.
    fn apply_compaction_mode(&mut self, mode: CompactionMode) {
        debug_assert_eq!(self.buses.len(), 0, "options are fixed before first use");
        if let CompactionMode::Handshake { periods } = &mode {
            assert_eq!(
                periods.len(),
                self.cfg.nodes().as_usize(),
                "one activation period per INC"
            );
            assert!(periods.iter().all(|&p| p > 0), "periods must be positive");
            self.cycles = Some(CycleRing::new(self.cfg.nodes().as_usize()));
        } else {
            self.cycles = None;
        }
        self.opts.compaction_mode = mode;
        self.track_dirty = self.event_driven
            && self.cfg.compaction
            && matches!(self.opts.compaction_mode, CompactionMode::Synchronous);
    }

    /// Takes the recorded events (and keeps recording into a fresh sink).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self.recorder.take() {
            Some(sink) => {
                self.recorder = Some(VecSink::new());
                sink.into_events()
            }
            None => Vec::new(),
        }
    }

    /// The static configuration.
    pub const fn config(&self) -> &RmbConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub const fn now(&self) -> Tick {
        self.now
    }

    /// The ring size.
    pub fn ring(&self) -> RingSize {
        self.cfg.nodes()
    }

    /// Number of live virtual buses.
    pub fn active_virtual_buses(&self) -> usize {
        self.buses.len()
    }

    /// Iterates over the live virtual buses in id order.
    pub fn virtual_buses(&self) -> impl Iterator<Item = &VirtualBus> {
        self.buses.values()
    }

    /// Looks up a live virtual bus.
    pub fn virtual_bus(&self, id: VirtualBusId) -> Option<&VirtualBus> {
        self.buses.get(id)
    }

    /// Protocol state of a live virtual bus. Hot circuit state lives in a
    /// struct-of-arrays lane beside the bus records, so it is read here
    /// rather than off [`VirtualBus`] itself.
    pub fn bus_state(&self, id: VirtualBusId) -> Option<BusState> {
        self.buses.state(id)
    }

    /// Iterates over the live virtual buses in id order, paired with
    /// their protocol state.
    pub(crate) fn virtual_buses_with_state(
        &self,
    ) -> impl Iterator<Item = (&VirtualBus, BusState)> {
        self.buses.values_with_state()
    }

    /// Rebuilds the occupancy bitmaps from the authoritative owner /
    /// fault tables and reports the first out-of-lockstep bit
    /// (invariant #6).
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub(crate) fn verify_occupancy(&self) -> Result<(), String> {
        self.occ.verify(
            &self.segments,
            &self.fault_count,
            &self.free_per_hop,
            self.cfg.buses() as usize,
        )
    }

    /// Requests not yet injected (buffered HFs plus backoff waiters).
    pub fn pending_requests(&self) -> usize {
        debug_assert_eq!(
            self.pending_total,
            self.nodes.iter().map(|n| n.pending.len()).sum::<usize>()
        );
        self.pending_total
    }

    /// Count of currently busy physical segments.
    pub const fn busy_segments(&self) -> usize {
        self.busy_segments
    }

    /// Instantaneous utilisation: busy segments / (N·k).
    pub fn utilization(&self) -> f64 {
        let total = self.segments.len();
        self.busy_segments as f64 / total as f64
    }

    /// `true` while any active fault covers the segment between `hop` and
    /// `hop + 1` at height `bus`.
    pub fn is_segment_faulted(&self, hop: NodeId, bus: BusIndex) -> bool {
        let k = self.cfg.buses() as usize;
        hop.as_usize() < self.nodes.len()
            && bus.as_usize() < k
            && self.faulted(hop.as_usize(), bus.as_usize())
    }

    /// `true` while any active `IncDead` fault covers `node`.
    pub fn is_inc_dead(&self, node: NodeId) -> bool {
        node.as_usize() < self.nodes.len() && self.dead_inc[node.as_usize()] > 0
    }

    /// Number of segments currently covered by at least one active fault.
    pub fn faulted_segments(&self) -> usize {
        self.fault_count.iter().filter(|&&c| c > 0).count()
    }

    #[inline]
    fn seg(&self, hop: usize, bus: usize) -> Option<VirtualBusId> {
        self.segments[hop * self.cfg.buses() as usize + bus]
    }

    #[inline]
    fn faulted(&self, hop: usize, bus: usize) -> bool {
        self.fault_count[hop * self.cfg.buses() as usize + bus] > 0
    }

    /// The occupant of the segment between `hop` and `hop + 1` at height
    /// `bus`, if any.
    pub fn segment_owner(&self, hop: NodeId, bus: BusIndex) -> Option<VirtualBusId> {
        let k = self.cfg.buses() as usize;
        if hop.as_usize() >= self.nodes.len() || bus.as_usize() >= k {
            return None;
        }
        self.seg(hop.as_usize(), bus.as_usize())
    }

    /// `true` when every hop of the clockwise path `src → dst` has at
    /// least one free segment — Theorem 1's availability oracle. In
    /// `Bitmap` mode (default) this is one wrap-aware masked-range test on
    /// the full-hops bitmap; in `SlabWalk` mode it walks the per-hop
    /// free-segment counts, O(1) per hop. Both kernels always agree (see
    /// the feasibility oracle suite and invariant #6).
    pub fn path_feasible(&self, src: NodeId, dst: NodeId) -> bool {
        let ring = self.ring();
        let span = ring.clockwise_distance(src, dst);
        if self.feas_bitmap {
            self.occ.span_feasible(src.as_usize(), span as usize)
        } else {
            (0..span).all(|j| self.free_per_hop[ring.advance(src, j).as_usize()] > 0)
        }
    }

    /// `true` when nothing is in flight and nothing is waiting.
    pub fn is_quiescent(&self) -> bool {
        self.buses.is_empty() && self.pending_total == 0
    }

    /// `true` when some circuit is live, some pending request is already
    /// due for injection (as opposed to scheduled for a future tick), or a
    /// scheduled fault event is due to apply.
    ///
    /// The event-driven engine answers from its ready set and timing
    /// wheel; outside the injection phase the wheel's hint is exact, so
    /// both engines agree on every call site.
    pub fn has_due_work(&self) -> bool {
        if !self.buses.is_empty()
            || self
                .next_fault_tick()
                .is_some_and(|at| at <= self.now.get())
        {
            return true;
        }
        if self.event_driven {
            !self.sched.ready.is_empty()
                || self
                    .sched
                    .wheel
                    .peek_hint()
                    .is_some_and(|t| t.get() <= self.now.get())
        } else {
            self.nodes.iter().any(|n| {
                n.pending
                    .front()
                    .is_some_and(|p| p.not_before <= self.now.get())
            })
        }
    }

    /// The earliest tick at which a pending request or a scheduled fault
    /// event becomes due, if any. Only queue fronts matter: injection is
    /// head-of-line per node.
    fn next_due_tick(&self) -> Option<u64> {
        let pending = if self.event_driven {
            // Only consulted when nothing is due now, so the ready set is
            // empty and every waiting front has a wheel entry; the hint
            // is exact outside the injection phase.
            debug_assert!(self.sched.ready.is_empty() || self.has_due_work());
            self.sched.wheel.peek_hint().map(Tick::get)
        } else {
            self.nodes
                .iter()
                .filter_map(|n| n.pending.front().map(|p| p.not_before))
                .min()
        };
        match (pending, self.next_fault_tick()) {
            (Some(p), Some(f)) => Some(p.min(f)),
            (p, f) => p.or(f),
        }
    }

    /// Tick of the next unapplied fault-timeline entry, if any.
    fn next_fault_tick(&self) -> Option<u64> {
        self.fault_timeline.get(self.next_fault).map(|&(at, _, _)| at)
    }

    /// Submits a message for delivery.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownNode`] if an endpoint is outside
    /// the ring and [`ProtocolError::SelfMessage`] if source equals
    /// destination.
    pub fn submit(&mut self, spec: MessageSpec) -> Result<RequestId, ProtocolError> {
        let ring = self.ring();
        if !ring.contains(spec.source) {
            return Err(ProtocolError::unknown_node(spec.source));
        }
        if !ring.contains(spec.destination) {
            return Err(ProtocolError::unknown_node(spec.destination));
        }
        if spec.source == spec.destination {
            return Err(ProtocolError::self_message(spec.source));
        }
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        self.submitted += 1;
        let s = spec.source.as_usize();
        let was_empty = self.nodes[s].pending.is_empty();
        self.nodes[s].pending.push_back(PendingRequest {
            request,
            spec,
            taps: Vec::new(),
            requested_at: spec.inject_at,
            refusals: 0,
            not_before: spec.inject_at,
        });
        self.pending_total += 1;
        if self.event_driven && was_empty {
            self.arm_node(s);
        }
        Ok(request)
    }

    /// Submits a multicast: one circuit from `source` that delivers the
    /// same `data_flits`-flit body to every node in `destinations`.
    ///
    /// This implements the extension the paper names but leaves out of
    /// scope (§1: "the RMB concept can also be extended to support
    /// broadcasting and multicasting"). The header flit arms a *tap* at
    /// each intermediate destination as it passes — taking that node's
    /// receive port — and the circuit runs to the farthest destination;
    /// every tap then receives the stream as it flows by. If any
    /// destination's receive port is busy, the whole circuit is refused
    /// with a `Nack` and retried later, keeping the paper's
    /// no-intermediate-buffering property.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownNode`] for endpoints outside the
    /// ring and [`ProtocolError::SelfMessage`] if `destinations` is empty,
    /// contains the source, or contains duplicates.
    pub fn submit_multicast(
        &mut self,
        source: NodeId,
        destinations: &[NodeId],
        data_flits: u32,
        inject_at: u64,
    ) -> Result<RequestId, ProtocolError> {
        let ring = self.ring();
        if !ring.contains(source) {
            return Err(ProtocolError::unknown_node(source));
        }
        if destinations.is_empty() {
            return Err(ProtocolError::self_message(source));
        }
        let mut sorted = destinations.to_vec();
        for d in &sorted {
            if !ring.contains(*d) {
                return Err(ProtocolError::unknown_node(*d));
            }
            if *d == source {
                return Err(ProtocolError::self_message(source));
            }
        }
        sorted.sort_by_key(|d| ring.clockwise_distance(source, *d));
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(ProtocolError::self_message(source));
        }
        let final_dest = *sorted.last().expect("non-empty");
        let taps = sorted[..sorted.len() - 1].to_vec();
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        self.submitted += sorted.len() as u64;
        let s = source.as_usize();
        let was_empty = self.nodes[s].pending.is_empty();
        self.nodes[s].pending.push_back(PendingRequest {
            request,
            spec: MessageSpec::new(source, final_dest, data_flits).at(inject_at),
            taps,
            requested_at: inject_at,
            refusals: 0,
            not_before: inject_at,
        });
        self.pending_total += 1;
        if self.event_driven && was_empty {
            self.arm_node(s);
        }
        Ok(request)
    }

    /// Submits a batch of messages; returns their request ids.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid specification, leaving earlier ones
    /// submitted.
    pub fn submit_all<I>(&mut self, specs: I) -> Result<Vec<RequestId>, ProtocolError>
    where
        I: IntoIterator<Item = MessageSpec>,
    {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Advances the simulation by one tick.
    pub fn tick(&mut self) {
        self.apply_due_faults();
        self.progress_streams_and_teardowns();
        // The establishment phases only ever visit `Establishing` buses;
        // when the event engine's establishing list is empty they are
        // no-ops, so the calls (and their list-swap bookkeeping) can be
        // skipped outright. The dense sweep re-checks per bus instead.
        if !self.event_driven || !self.sched.establishing.is_empty() {
            self.decide_at_destinations();
            self.extend_heads();
        }
        self.inject_pending();
        self.run_compaction();
        self.finish_tick();
    }

    /// Advances the simulation by `n` ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Advances the simulation until its clock reaches `until` (a no-op if
    /// the clock is already there or past).
    ///
    /// This is the hook the conservative parallel hierarchy engine drives:
    /// each ring is handed one lookahead-bounded window at a time and
    /// advances itself to the window boundary independently of every other
    /// ring. The loop is deliberately identical to [`run`](Self::run) — a
    /// windowed run of any partitioning reaches the exact same state as
    /// one serial `run`.
    pub fn run_window(&mut self, until: u64) {
        while self.now.get() < until {
            self.tick();
        }
    }

    /// Runs until quiescence, stall, or `max_ticks`, and reports.
    ///
    /// With [`SimOptions::fast_forward`](crate::SimOptions) enabled (the
    /// default, via [`RmbNetwork::builder`]) and the synchronous
    /// compactor, stretches of ticks with no live circuit, no due
    /// injection and no pending fault event are skipped arithmetically
    /// instead of being simulated one by one; the event-driven scheduler
    /// finds the jump target in O(1) from its timing wheel, the dense
    /// sweep by scanning the queue fronts.
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> RunReport {
        // A parked header only makes progress again after `head_timeout`
        // ticks (its refusal is the progress event), so the stall window
        // must comfortably exceed it.
        let stall_window = 4 * self.cfg.nodes().get() as u64
            + 8 * self.cfg.node.retry_backoff
            + 3 * self.cfg.head_timeout.unwrap_or(0)
            + self
                .buses
                .values()
                .map(|b| b.spec.data_flits as u64)
                .max()
                .unwrap_or(0)
            + 64;
        let can_fast_forward = self.opts.fast_forward
            && matches!(self.opts.compaction_mode, CompactionMode::Synchronous);
        let mut stalled = false;
        while self.now.get() < max_ticks {
            if self.is_quiescent() {
                break;
            }
            if can_fast_forward && !self.has_due_work() {
                // Event horizon: nothing is live (so every phase of the
                // tick is a no-op) and no injection is due. Jump straight
                // to the next due tick, accounting for the skipped
                // all-idle utilisation samples in one step. The ticking
                // loop below would reach the same state, one no-op tick
                // at a time.
                let due = self.next_due_tick().expect("pending work exists");
                let target = due.min(max_ticks);
                let from = self.now.get();
                if target > from {
                    let skipped = target - from;
                    debug_assert_eq!(self.busy_segments, 0);
                    self.utilization.record_repeated(0.0, skipped);
                    self.now = Tick::new(target);
                    // The naive loop updates `last_progress` after every
                    // idle tick except the one on which work comes due.
                    if skipped >= 2 {
                        self.last_progress = target - 1;
                    }
                    if self.now.get().saturating_sub(self.last_progress) > stall_window {
                        stalled = true;
                        break;
                    }
                    continue;
                }
            }
            self.tick();
            if !self.has_due_work() {
                // Only future-scheduled injections / backoffs remain; the
                // clock itself is the progress.
                self.last_progress = self.now.get();
            }
            if self.now.get().saturating_sub(self.last_progress) > stall_window {
                stalled = true;
                break;
            }
        }
        self.report_with(stalled)
    }

    /// Builds a report of everything observed so far.
    pub fn report(&self) -> RunReport {
        self.report_with(false)
    }

    /// The *retained* delivered messages, in completion order, without
    /// cloning. Under the default [`LogRetention::Full`] policy this is
    /// every delivery; under `Window`/`CountersOnly` it is the retained
    /// suffix (possibly empty). [`delivered_total`](Self::delivered_total)
    /// always counts every delivery regardless of retention.
    ///
    /// [`LogRetention::Full`]: crate::LogRetention::Full
    pub fn delivered_log(&self) -> &[DeliveredMessage] {
        &self.delivered
    }

    /// The *retained* aborted messages (retry budget exhausted, or
    /// refused at a fault-blocked source past the budget), in abort
    /// order; the failure-path mirror of
    /// [`delivered_log`](Self::delivered_log) under the same retention.
    ///
    /// One record is kept per request — a multicast abort still counts
    /// each covered destination in [`RunReport::aborted`], but appears
    /// here once under its final destination.
    pub fn aborted_log(&self) -> &[AbortedMessage] {
        &self.aborted_log
    }

    /// Total messages delivered over the lifetime of the network,
    /// independent of log retention. Also the cursor value that makes
    /// [`delivered_since`](Self::delivered_since) return only future
    /// deliveries.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_base + self.delivered.len() as u64
    }

    /// Total abort *records* over the lifetime of the network (one per
    /// aborted request), independent of log retention; the cursor
    /// counterpart of [`delivered_total`](Self::delivered_total) for
    /// [`aborted_since`](Self::aborted_since). Note that
    /// [`RunReport::aborted`] counts per covered destination and can be
    /// larger under multicast.
    pub fn aborted_records(&self) -> u64 {
        self.aborted_base + self.aborted_log.len() as u64
    }

    /// Delivery hook for compositions driving this ring externally (the
    /// `rmb-hier` bridges, the open-loop serving driver): the deliveries
    /// recorded since a cursor previously obtained from
    /// [`delivered_total`](Self::delivered_total). Cursors are absolute
    /// sequence numbers, so they stay valid across retention trims as
    /// long as the poller keeps up; cursors beyond the total yield an
    /// empty slice.
    ///
    /// # Panics
    ///
    /// Panics when the cursor points below the retention window — the
    /// poller fell behind and records it never saw have been dropped.
    /// Polling at least once per `n` deliveries under
    /// `LogRetention::Window(n)` guarantees this cannot happen; under
    /// `CountersOnly` any cursor below the current total panics.
    pub fn delivered_since(&self, cursor: usize) -> &[DeliveredMessage] {
        let base = self.delivered_base as usize;
        assert!(
            cursor >= base,
            "delivered_since cursor {cursor} points below the retention window \
             (first retained record is #{base}): records were dropped unread"
        );
        &self.delivered[(cursor - base).min(self.delivered.len())..]
    }

    /// Abort-side counterpart of [`delivered_since`](Self::delivered_since),
    /// with cursors from [`aborted_records`](Self::aborted_records).
    ///
    /// # Panics
    ///
    /// Panics when the cursor points below the retention window, like
    /// [`delivered_since`](Self::delivered_since).
    pub fn aborted_since(&self, cursor: usize) -> &[AbortedMessage] {
        let base = self.aborted_base as usize;
        assert!(
            cursor >= base,
            "aborted_since cursor {cursor} points below the retention window \
             (first retained record is #{base}): records were dropped unread"
        );
        &self.aborted_log[(cursor - base).min(self.aborted_log.len())..]
    }

    /// Histogram of end-to-end latencies of the *retained* delivered
    /// messages, with the given bin width (64 bins plus overflow). Under
    /// non-full retention prefer the online sketch
    /// ([`latency_quantile`](Self::latency_quantile)), which sees every
    /// delivery.
    pub fn latency_histogram(&self, bin_width: u64) -> rmb_sim::stats::Histogram {
        let mut h = rmb_sim::stats::Histogram::new(bin_width.max(1), 64);
        for d in &self.delivered {
            h.record(d.latency());
        }
        h
    }

    /// Online latency percentile from the delivery-time CKMS sketch, or
    /// `None` when the sketch is disabled (see
    /// [`RmbNetworkBuilder::latency_sketch`]) or nothing was delivered.
    /// The sketch observes every delivery regardless of log retention.
    ///
    /// [`RmbNetworkBuilder::latency_sketch`]: crate::RmbNetworkBuilder::latency_sketch
    pub fn latency_quantile(&self, phi: f64) -> Option<u64> {
        self.latency_sketch.as_ref().and_then(|s| s.quantile(phi))
    }

    fn report_with(&self, stalled: bool) -> RunReport {
        RunReport {
            ticks: self.now.get(),
            delivered: self.delivered_total() as usize,
            refusals: self.refusals,
            compaction_moves: self.compaction_moves,
            mean_utilization: self.utilization.mean(),
            peak_virtual_buses: self.peak_virtual_buses,
            undelivered: (self.submitted - self.delivered_total()) as usize,
            stalled,
            retries: self.retries,
            aborted: self.aborted,
            fault_kills: self.fault_kills,
            makespan: self.last_delivery_at,
            latency_sum: self.latency_sum,
            setup_sum: self.setup_sum,
            recovered: self.recovered,
            recovery_sum: self.recovery_sum,
            max_recovery: self.max_recovery,
            latency_quantiles: self.latency_sketch.as_ref().and_then(|s| {
                Some((
                    s.quantile(0.5)?,
                    s.quantile(0.99)?,
                    s.quantile(0.999)?,
                    s.max()?,
                ))
            }),
        }
    }

    /// Validates all structural invariants; see [`crate::invariants`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_network(self)
    }

    /// Appends to the delivered log under the configured retention
    /// policy, maintaining the report aggregates (which see every
    /// delivery even when the record itself is not kept).
    fn record_delivery(&mut self, d: DeliveredMessage) {
        self.latency_sum += d.latency();
        self.setup_sum += d.setup_latency();
        self.last_delivery_at = self.last_delivery_at.max(d.delivered_at);
        if let Some(sketch) = &mut self.latency_sketch {
            sketch.record(d.latency());
        }
        match self.opts.log_retention {
            LogRetention::CountersOnly => self.delivered_base += 1,
            LogRetention::Full => self.delivered.push(d),
            LogRetention::Window(w) => {
                self.delivered.push(d);
                Self::trim_window(&mut self.delivered, &mut self.delivered_base, w);
            }
        }
    }

    /// Appends to the aborted log under the configured retention policy
    /// (the caller maintains the `aborted` destination counter).
    fn record_abort(&mut self, a: AbortedMessage) {
        match self.opts.log_retention {
            LogRetention::CountersOnly => self.aborted_base += 1,
            LogRetention::Full => self.aborted_log.push(a),
            LogRetention::Window(w) => {
                self.aborted_log.push(a);
                Self::trim_window(&mut self.aborted_log, &mut self.aborted_base, w);
            }
        }
    }

    /// Batch-trims a windowed log to its retention bound: amortised O(1)
    /// per record by letting the log grow to `2w` before draining back
    /// to `w`, so borrowed `*_since` slices stay cheap and memory stays
    /// bounded.
    fn trim_window<T>(log: &mut Vec<T>, base: &mut u64, w: usize) {
        let w = w.max(1);
        if log.len() > 2 * w {
            let drop = log.len() - w;
            log.drain(..drop);
            *base += drop as u64;
        }
    }

    // ------------------------------------------------------------------
    // Internal: fault machinery.
    // ------------------------------------------------------------------

    /// Applies every fault-timeline entry due at or before the current
    /// tick (runs first in each tick, so a fresh fault is visible to all
    /// of the tick's phases).
    fn apply_due_faults(&mut self) {
        let now = self.now.get();
        while let Some(&(at, is_repair, kind)) = self.fault_timeline.get(self.next_fault) {
            if at > now {
                break;
            }
            self.next_fault += 1;
            if is_repair {
                self.apply_repair(kind);
            } else {
                self.apply_fault(kind);
            }
            if self.recorder.is_some() {
                let (node, bus) = match kind {
                    FaultKind::SegmentStuck { hop, bus } => (hop, Some(bus)),
                    FaultKind::LinkCut { hop } => (hop, None),
                    FaultKind::IncDead { node } => (node, None),
                };
                let trace_kind = if is_repair {
                    TraceKind::FaultRepair
                } else {
                    TraceKind::FaultInject
                };
                if let Some(rec) = &mut self.recorder {
                    rec.record(TraceEvent {
                        at: self.now,
                        kind: trace_kind,
                        id: None,
                        node: Some(node.index()),
                        bus: bus.map(|b| b.index()),
                        detail: kind.to_string(),
                    });
                }
            }
            self.last_progress = now;
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::SegmentStuck { hop, bus } => self.fault_segment(hop.as_usize(), bus),
            FaultKind::LinkCut { hop } => {
                for b in 0..self.cfg.buses() {
                    self.fault_segment(hop.as_usize(), BusIndex::new(b));
                }
            }
            FaultKind::IncDead { node } => {
                self.dead_inc[node.as_usize()] += 1;
                // The dead INC drives every segment at its own hop.
                for b in 0..self.cfg.buses() {
                    self.fault_segment(node.as_usize(), BusIndex::new(b));
                }
                // Circuits terminating (or tapping) at the dead INC lose
                // their endpoint; the occupancy path above only catches
                // circuits that pass *through* it.
                let victims: Vec<VirtualBusId> = self
                    .buses
                    .iter()
                    .filter(|(_, b)| b.spec.destination == node || b.taps.contains(&node))
                    .map(|(id, _)| id)
                    .collect();
                for id in victims {
                    self.fault_kill(id, "endpoint INC died");
                }
            }
        }
    }

    fn apply_repair(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::SegmentStuck { hop, bus } => self.repair_segment(hop.as_usize(), bus),
            FaultKind::LinkCut { hop } => {
                for b in 0..self.cfg.buses() {
                    self.repair_segment(hop.as_usize(), BusIndex::new(b));
                }
            }
            FaultKind::IncDead { node } => {
                self.dead_inc[node.as_usize()] -= 1;
                for b in 0..self.cfg.buses() {
                    self.repair_segment(node.as_usize(), BusIndex::new(b));
                }
            }
        }
    }

    fn fault_segment(&mut self, hop: usize, bus: BusIndex) {
        let idx = hop * self.cfg.buses() as usize + bus.as_usize();
        self.fault_count[idx] += 1;
        if self.fault_count[idx] == 1 {
            self.occ.assign_faulted(hop, bus.as_usize(), true);
            match self.segments[idx] {
                // An idle segment just leaves the availability pool.
                None => {
                    self.free_per_hop[hop] -= 1;
                    if self.free_per_hop[hop] == 0 {
                        self.occ.assign_full(hop, true);
                    }
                }
                // An occupied one takes its circuit down with it; the
                // teardown keeps owning the segment until the Nack passes.
                Some(owner) => self.fault_kill(owner, "segment faulted under the circuit"),
            }
        }
    }

    fn repair_segment(&mut self, hop: usize, bus: BusIndex) {
        let idx = hop * self.cfg.buses() as usize + bus.as_usize();
        debug_assert!(self.fault_count[idx] > 0, "repairing a healthy segment");
        self.fault_count[idx] -= 1;
        if self.fault_count[idx] == 0 {
            self.occ.assign_faulted(hop, bus.as_usize(), false);
            if self.segments[idx].is_none() {
                self.free_per_hop[hop] += 1;
                self.occ.assign_full(hop, false);
                // The segment is available again: the circuit directly
                // above (if any) may now have a downward move.
                self.wake_above(hop, bus);
            }
        }
    }

    /// Queues a compaction re-mark for the circuit occupying the segment
    /// directly above `(hop, bus)` — called when `(hop, bus)` becomes
    /// available, which can enable that circuit's downward move. Buffered
    /// in `pending_wakes` because releases also fire while the bus slab
    /// is detached (stream-phase teardowns).
    fn wake_above(&mut self, hop: usize, bus: BusIndex) {
        if !self.track_dirty {
            return;
        }
        if bus.index() + 1 >= self.cfg.buses() {
            return;
        }
        if let Some(owner) = self.seg(hop, bus.upper().as_usize()) {
            self.sched.pending_wakes.push(owner);
        }
    }

    /// Tears a live circuit down because of a fault: Nack back to the
    /// source (tail-first, reusing the ordinary teardown machinery) and
    /// mark it for the bounded-exponential retry path. No-op for circuits
    /// already tearing down.
    fn fault_kill(&mut self, id: VirtualBusId, why: &str) {
        let Some(state) = self.buses.state(id) else { return };
        let receiving = match state {
            BusState::TearingDown { .. } | BusState::Nacked { .. } => return,
            BusState::AwaitingHack { .. } | BusState::Streaming(_) => true,
            BusState::Establishing => false,
        };
        let (dst, source) = {
            let bus = self.buses.get(id).expect("bus is live");
            (bus.spec.destination, bus.spec.source)
        };
        if receiving {
            // Past acceptance the destination holds a receive port that
            // the ordinary Nack path never has to give back; the fault
            // abort must.
            self.nodes[dst.as_usize()].receives_active -= 1;
        }
        let now = self.now.get();
        self.buses.set_state(id, BusState::Nacked { freed: 0 });
        let bus = self.buses.get_mut(id).expect("bus is live");
        bus.fault_killed = true;
        let request = bus.request.get();
        self.fault_kills += 1;
        self.first_kill.entry(request).or_insert(now);
        self.last_progress = now;
        self.trace(TraceKind::FaultKill, id, source, None, why);
        // The Nacked teardown starts freeing hops in the next stream
        // phase; make sure the event engine looks at the bus then.
        self.wake_bus(id);
    }

    /// Bounded exponential backoff with jitter for fault-hit retries:
    /// `base · 2^min(refusals, 12)` capped at [`MAX_FAULT_BACKOFF`], plus
    /// a uniform jitter of up to half that, drawn from the seeded fault
    /// stream.
    fn fault_backoff(&mut self, refusals: u32) -> u64 {
        let base = self.cfg.node.retry_backoff.max(1);
        let bounded = base
            .saturating_mul(1u64 << refusals.min(12))
            .min(MAX_FAULT_BACKOFF.max(base));
        bounded + self.fault_rng.index(bounded as usize / 2 + 1).unwrap_or(0) as u64
    }

    /// Refuses the due request at the head of node `s`'s queue because
    /// faults block injection (source INC dead, or the header lane
    /// faulted): counts a refusal, backs off exponentially, and aborts
    /// once past the retry budget.
    fn refuse_at_source(&mut self, s: usize) {
        let now = self.now.get();
        let mut p = self.nodes[s].pending.pop_front().expect("front exists");
        self.pending_total -= 1;
        p.refusals += 1;
        self.refusals += 1;
        self.last_progress = now;
        if self.opts.max_retries.is_some_and(|limit| p.refusals > limit) {
            self.aborted += 1 + p.taps.len();
            self.record_abort(AbortedMessage {
                request: p.request,
                spec: p.spec,
                aborted_at: now,
                refusals: p.refusals,
            });
            self.first_kill.remove(&p.request.get());
            if let Some(rec) = &mut self.recorder {
                rec.record(TraceEvent {
                    at: self.now,
                    kind: TraceKind::Abort,
                    id: Some(p.request.get()),
                    node: Some(s as u32),
                    bus: None,
                    detail: format!("dropped at source after {} refusals", p.refusals),
                });
            }
        } else {
            self.retries += 1;
            p.not_before = now + self.fault_backoff(p.refusals);
            self.nodes[s].pending.push_back(p);
            self.pending_total += 1;
        }
    }

    // ------------------------------------------------------------------
    // Internal: event-driven scheduler bookkeeping.
    // ------------------------------------------------------------------

    /// (Re-)arms injection tracking for node `s` after its queue front
    /// changed: due fronts join the ready set, future ones get a wheel
    /// entry. A node with an unchanged front is never re-armed, so the
    /// wheel holds at most one live entry per waiting node.
    fn arm_node(&mut self, s: usize) {
        let Some(front) = self.nodes[s].pending.front() else {
            return;
        };
        let not_before = front.not_before;
        if not_before <= self.now.get() {
            self.ready_insert(s);
        } else {
            self.sched.wheel.schedule(Tick::new(not_before), s as u32);
        }
    }

    /// Adds node `s` to the sorted ready set (no-op if present).
    fn ready_insert(&mut self, s: usize) {
        if self.sched.ready_mask[s] {
            return;
        }
        self.sched.ready_mask[s] = true;
        let v = s as u32;
        match self.sched.ready.last() {
            Some(&last) if last >= v => {
                let pos = self.sched.ready.partition_point(|&x| x < v);
                self.sched.ready.insert(pos, v);
            }
            _ => self.sched.ready.push(v),
        }
    }

    /// Removes node `s` from the ready set (no-op if absent).
    fn ready_remove(&mut self, s: usize) {
        if !self.sched.ready_mask[s] {
            return;
        }
        self.sched.ready_mask[s] = false;
        let v = s as u32;
        let pos = self.sched.ready.partition_point(|&x| x < v);
        debug_assert_eq!(self.sched.ready.get(pos), Some(&v));
        self.sched.ready.remove(pos);
    }

    /// Ensures the event engine processes bus `id` in the next stream
    /// phase (no-op for the dense sweep or an unknown id).
    fn wake_bus(&mut self, id: VirtualBusId) {
        if !self.event_driven {
            return;
        }
        if let Some(slot) = self.buses.slot(id) {
            let due = &mut self.sched.next_due[slot];
            *due = (*due).min(self.now.get());
        }
    }

    /// Initialises per-slot scheduler state for a freshly injected bus
    /// (slot indices are recycled, so every field is reset) and registers
    /// it with the establishing list and the compaction dirty set.
    fn sched_init_bus(&mut self, id: VirtualBusId) {
        let slot = self.buses.slot(id).expect("freshly inserted bus");
        let sd = &mut self.sched;
        if sd.next_due.len() <= slot {
            sd.next_due.resize(slot + 1, u64::MAX);
            sd.dirty.resize(slot + 1, false);
            sd.clean_streak.resize(slot + 1, 0);
        }
        // Establishing buses are stream-phase no-ops until a decision or
        // fault wakes them.
        sd.next_due[slot] = u64::MAX;
        sd.dirty[slot] = false;
        sd.clean_streak[slot] = 0;
        sd.establishing.push(id);
        self.mark_dirty(id);
    }

    /// Marks `id` as possibly having an eligible compaction move. No-op
    /// unless the dirty set is tracked (event-driven + synchronous
    /// compactor) or the id is dead. Conservative marks are harmless: a
    /// clean assessment just drops the bus again.
    fn mark_dirty(&mut self, id: VirtualBusId) {
        if !self.track_dirty {
            return;
        }
        let Some(slot) = self.buses.slot(id) else {
            return;
        };
        self.mark_dirty_slot(id, slot);
    }

    /// [`mark_dirty`](Self::mark_dirty) with the slot already in hand
    /// (used while the bus slab is detached during the stream phase).
    fn mark_dirty_slot(&mut self, id: VirtualBusId, slot: usize) {
        let sd = &mut self.sched;
        sd.clean_streak[slot] = 0;
        if !sd.dirty[slot] {
            sd.dirty[slot] = true;
            match sd.compact_dirty.last() {
                Some(&last) if last >= id => {
                    let pos = sd.compact_dirty.partition_point(|&x| x < id);
                    sd.compact_dirty.insert(pos, id);
                }
                _ => sd.compact_dirty.push(id),
            }
        }
    }

    /// Applies the buffered segment-release wake-ups (buses whose
    /// below-segment freed while the slab was detached) to the dirty set.
    fn flush_compaction_wakes(&mut self) {
        if self.sched.pending_wakes.is_empty() {
            return;
        }
        let mut wakes = std::mem::take(&mut self.sched.pending_wakes);
        for id in wakes.drain(..) {
            self.mark_dirty(id);
        }
        self.sched.pending_wakes = wakes;
    }

    // ------------------------------------------------------------------
    // Internal: tick phases.
    // ------------------------------------------------------------------

    fn progress_streams_and_teardowns(&mut self) {
        let ring = self.ring();
        let now = self.now.get();
        let event = self.event_driven;
        let window = match self.cfg.ack_mode {
            AckMode::PerFlit => 1,
            AckMode::Windowed { window } => window.max(1),
            AckMode::Unlimited => u32::MAX,
        };
        // This is the only phase that removes buses: detach the slab so
        // its state lane can be advanced while the rest of the network is
        // borrowed freely, compacting the active list behind the cursor.
        //
        // The steady-state streaming arm is the tick kernel's inner loop:
        // it reads the `Copy` state out of the slab's state lane, advances
        // three counters against closed-form send ticks (no queues, no
        // allocation), and writes the state back — the cold `VirtualBus`
        // struct is dereferenced only on transitions (stream start,
        // completion, teardown, removal).
        if self.buses.is_empty() {
            return;
        }
        let mut buses = std::mem::take(&mut self.buses);
        let mut kept = 0usize;
        for i in 0..buses.len() {
            let (id, slot) = buses.active_entry(i);
            if event && self.sched.next_due[slot] > now {
                // Nothing due: parked `Establishing` buses are stream
                // no-ops, and a draining stream's next delivery or final
                // flit is still in flight. The dense sweep would walk the
                // same no-op arms and observe nothing.
                buses.set_active(kept, id, slot);
                kept += 1;
                continue;
            }
            // Steady-state fast path: a mid-flight stream under a window
            // at least the round trip (W >= 2L, the default) can only
            // advance its three counters — no transition is reachable —
            // so it is updated in place, skipping the copy-out/copy-back
            // protocol and the transition checks below. The closed forms
            // land exactly where the catch-up loops in the general arm
            // stop (see `StreamState::send_tick`).
            let fast = {
                if let BusState::Streaming(s) = buses.state_at_mut(slot) {
                    let span = u64::from(s.span);
                    if s.ff_sent_at.is_none()
                        && s.next_seq < s.data_flits
                        && 2 * span <= u64::from(s.window)
                        && s.unacked() < s.window
                    {
                        let nd = u64::from(s.delivered)
                            .max(now.saturating_sub(s.circuit_at + span));
                        s.delivered = u64::from(s.next_seq).min(nd) as u32;
                        let na = u64::from(s.acked)
                            .max(now.saturating_sub(s.circuit_at + 2 * span));
                        s.acked = u64::from(s.next_seq).min(na) as u32;
                        debug_assert_eq!(now, s.send_tick(s.next_seq), "send recurrence");
                        s.next_seq += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            };
            if fast {
                // The send is progress; the stream stays due next tick.
                self.last_progress = now;
                if event {
                    self.sched.next_due[slot] = now + 1;
                }
                buses.set_active(kept, id, slot);
                kept += 1;
                continue;
            }
            let mut state = buses.state_at(slot);
            let mut remove = false;
            let mut progressed = false;
            let mut start_streaming = false;
            let mut completed = None;
            match state {
                BusState::Establishing
                | BusState::TearingDown { .. }
                | BusState::Nacked { .. } => {}
                BusState::AwaitingHack { hops_left } => {
                    let hops_left = hops_left - 1;
                    start_streaming = hops_left == 0;
                    state = BusState::AwaitingHack { hops_left };
                }
                BusState::Streaming(mut s) => {
                    // Deliveries (L ticks after send) and Dacks (2L ticks):
                    // the flit about to land / be acked is `delivered` /
                    // `acked`, and its send tick is closed-form.
                    let span = u64::from(s.span);
                    if 2 * span <= u64::from(s.window) {
                        // Cruise: the window never gates the source
                        // (W >= 2L), so `send_tick(i) = circuit_at + 1 + i`
                        // and both counters catch up in closed form — the
                        // min/max pair lands exactly where the loops below
                        // stop, compiled to cmovs instead of branches.
                        let nd = u64::from(s.delivered)
                            .max(now.saturating_sub(s.circuit_at + span));
                        let nd = u64::from(s.next_seq).min(nd) as u32;
                        let na = u64::from(s.acked)
                            .max(now.saturating_sub(s.circuit_at + 2 * span));
                        s.acked = u64::from(s.next_seq).min(na) as u32;
                        progressed |= nd != s.delivered;
                        s.delivered = nd;
                    } else {
                        while s.delivered < s.next_seq
                            && now >= s.send_tick(s.delivered) + span
                        {
                            s.delivered += 1;
                            progressed = true;
                        }
                        while s.acked < s.next_seq && now >= s.send_tick(s.acked) + 2 * span {
                            s.acked += 1;
                        }
                    }
                    if let Some(ff_at) = s.ff_sent_at {
                        if now >= ff_at + span {
                            // Final flit arrived: the message is delivered.
                            completed = Some(s);
                        }
                    } else if s.next_seq < s.data_flits {
                        if s.unacked() < s.window {
                            debug_assert_eq!(now, s.send_tick(s.next_seq), "send recurrence");
                            s.next_seq += 1;
                            progressed = true;
                        }
                    } else {
                        s.ff_sent_at = Some(now);
                        progressed = true;
                    }
                    state = BusState::Streaming(s);
                }
            }
            if start_streaming {
                let bus = buses.get(id).expect("active ids are live");
                state = BusState::Streaming(StreamState::new(
                    now,
                    bus.heights.len() as u32,
                    bus.spec.data_flits,
                    window,
                ));
                progressed = true;
            }
            if let Some(s) = completed {
                let span = u64::from(s.span);
                let bus = buses.get(id).expect("active ids are live");
                self.record_delivery(DeliveredMessage {
                    request: bus.request,
                    spec: bus.spec,
                    requested_at: bus.requested_at,
                    circuit_at: s.circuit_at,
                    delivered_at: now,
                    refusals: bus.refusals,
                });
                self.nodes[bus.spec.destination.as_usize()].receives_active -= 1;
                // Multicast taps saw the final flit as it flowed past,
                // span - dist hops before it reached the far end.
                for tap in &bus.taps {
                    let dist = u64::from(ring.clockwise_distance(bus.spec.source, *tap));
                    self.record_delivery(DeliveredMessage {
                        request: bus.request,
                        spec: MessageSpec::new(bus.spec.source, *tap, bus.spec.data_flits)
                            .at(bus.spec.inject_at),
                        requested_at: bus.requested_at,
                        circuit_at: s.circuit_at,
                        delivered_at: now - (span - dist),
                        refusals: bus.refusals,
                    });
                    self.nodes[tap.as_usize()].receives_active -= 1;
                }
                if let Some(kill_at) = self.first_kill.remove(&bus.request.get()) {
                    let dt = now.saturating_sub(kill_at);
                    self.recovered += 1;
                    self.recovery_sum += dt;
                    self.max_recovery = self.max_recovery.max(dt);
                }
                state = BusState::TearingDown { freed: 0 };
                let (dst, bus_id) = (bus.spec.destination, bus.id);
                self.trace(TraceKind::Deliver, bus_id, dst, None, "final flit arrived");
                progressed = true;
            }
            let teardown_freed = match state {
                BusState::TearingDown { freed } | BusState::Nacked { freed } => Some(freed),
                _ => None,
            };
            if let Some(freed) = teardown_freed {
                if completed.is_none() {
                    // The Fack / Nack crosses one INC per tick, freeing the
                    // tail hop as it passes. (A bus that completed this very
                    // tick starts freeing next tick.)
                    let bus = buses.get(id).expect("active ids are live");
                    let idx = bus.heights.len() - 1 - freed;
                    let hop = bus.hop_upstream_node(ring, idx).as_usize();
                    let height = bus.heights[idx];
                    let hops = bus.heights.len();
                    self.release(hop, height);
                    let new_freed = freed + 1;
                    state = match state {
                        BusState::TearingDown { .. } => {
                            BusState::TearingDown { freed: new_freed }
                        }
                        BusState::Nacked { .. } => BusState::Nacked { freed: new_freed },
                        _ => unreachable!("teardown state checked above"),
                    };
                    progressed = true;
                    remove = new_freed == hops;
                }
            }
            if progressed {
                self.last_progress = now;
            }
            if event && !remove {
                // When is this bus next due? `Establishing` parks until a
                // decision or fault wakes it; teardown-ish states act
                // every tick; a stream that has sent its final flit
                // sleeps until the next in-flight flit lands. The wake
                // ticks coincide with the dense sweep's delivery pops, so
                // `last_progress` (and with it stall detection and report
                // tick counts) stays byte-identical.
                self.sched.next_due[slot] = match state {
                    BusState::Establishing => u64::MAX,
                    BusState::AwaitingHack { .. }
                    | BusState::TearingDown { .. }
                    | BusState::Nacked { .. } => now + 1,
                    BusState::Streaming(s) => match s.ff_sent_at {
                        None => now + 1,
                        Some(ff) => {
                            let span = u64::from(s.span);
                            let next_delivery = if s.delivered < s.next_seq {
                                s.send_tick(s.delivered) + span
                            } else {
                                u64::MAX
                            };
                            (ff + span).min(next_delivery)
                        }
                    },
                };
            }
            if start_streaming && self.track_dirty {
                // Newly streaming hops become assessable (§2.4); with
                // early compaction off this is the bus's first chance.
                self.mark_dirty_slot(id, slot);
            }
            if remove {
                let bus = buses.take(id).expect("active ids are live");
                buses.discard(id);
                let nacked = matches!(state, BusState::Nacked { .. });
                self.nodes[bus.spec.source.as_usize()].sends_active -= 1;
                if nacked {
                    // Release any multicast taps that were already armed.
                    for tap in &bus.taps[..bus.armed_taps] {
                        self.nodes[tap.as_usize()].receives_active -= 1;
                    }
                    let refusals = bus.refusals + 1;
                    if self.opts.max_retries.is_some_and(|limit| refusals > limit) {
                        // Retry budget exhausted: drop the request for
                        // good, counting every destination it covered.
                        self.aborted += 1 + bus.taps.len();
                        self.record_abort(AbortedMessage {
                            request: bus.request,
                            spec: bus.spec,
                            aborted_at: now,
                            refusals,
                        });
                        self.first_kill.remove(&bus.request.get());
                        self.trace(
                            TraceKind::Abort,
                            bus.id,
                            bus.spec.source,
                            None,
                            "retry budget exhausted",
                        );
                    } else {
                        // Re-queue the refused request: linear backoff for
                        // ordinary contention Nacks, bounded exponential
                        // with jitter after a fault kill.
                        self.retries += 1;
                        let backoff = if bus.fault_killed {
                            self.fault_backoff(refusals)
                        } else {
                            self.cfg.node.retry_backoff * refusals as u64
                        };
                        let src = bus.spec.source.as_usize();
                        let was_empty = self.nodes[src].pending.is_empty();
                        self.nodes[src].pending.push_back(PendingRequest {
                            request: bus.request,
                            spec: bus.spec,
                            taps: bus.taps,
                            requested_at: bus.requested_at,
                            refusals,
                            not_before: now + backoff,
                        });
                        self.pending_total += 1;
                        if event && was_empty {
                            self.arm_node(src);
                        }
                    }
                } else {
                    self.trace(
                        TraceKind::Teardown,
                        bus.id,
                        bus.spec.source,
                        None,
                        "virtual bus removed",
                    );
                }
            } else {
                buses.set_state_at(slot, state);
                buses.set_active(kept, id, slot);
                kept += 1;
            }
        }
        buses.truncate_active(kept);
        self.buses = buses;
    }

    /// Runs one establishment phase (`decide_bus` / `extend_bus`) over
    /// exactly the live `Establishing` buses, in ascending id order.
    ///
    /// Event mode walks the scheduler's `establishing` list, dropping
    /// entries that died or left the state *before* the call (the dense
    /// sweep would skip them too) and keeping entries whose state changes
    /// *during* the call (they fall out on the next pass). Dense mode
    /// walks the whole active list; the per-bus methods re-check the
    /// state themselves.
    fn for_each_establishing(&mut self, mut phase: impl FnMut(&mut Self, VirtualBusId)) {
        if self.event_driven {
            let mut list = std::mem::take(&mut self.sched.establishing);
            let mut kept = 0usize;
            for i in 0..list.len() {
                let id = list[i];
                let still = matches!(self.buses.state(id), Some(BusState::Establishing));
                if !still {
                    continue;
                }
                phase(self, id);
                list[kept] = id;
                kept += 1;
            }
            list.truncate(kept);
            self.sched.establishing = list;
        } else {
            // No bus is created or removed in this phase, so the active
            // list is stable and can be walked by position.
            for i in 0..self.buses.len() {
                let id = self.buses.active_id(i);
                phase(self, id);
            }
        }
    }

    fn decide_at_destinations(&mut self) {
        self.for_each_establishing(Self::decide_bus);
    }

    fn decide_bus(&mut self, id: VirtualBusId) {
        let ring = self.ring();
        let now = self.now.get();
        {
            let (dst, span, head);
            {
                if !matches!(self.buses.state(id), Some(BusState::Establishing)) {
                    return;
                }
                let bus = self.buses.get(id).expect("bus is live");
                dst = bus.spec.destination;
                span = bus.heights.len() as u32;
                head = bus.head_node(ring);
            }
            // Multicast: the header is parked at the next unarmed tap —
            // take that node's receive port (arming the tap) or refuse the
            // whole circuit.
            let next_tap = {
                let bus = self.buses.get(id).expect("bus is live");
                bus.taps.get(bus.armed_taps).copied()
            };
            if Some(head) == next_tap {
                if self.dead_inc[head.as_usize()] > 0 {
                    self.fault_kill(id, "tap INC is dead");
                    return;
                }
                if self.nodes[head.as_usize()].receives_active
                    < self.cfg.node.max_concurrent_receives
                {
                    self.nodes[head.as_usize()].receives_active += 1;
                    let bus = self.buses.get_mut(id).expect("bus is live");
                    bus.armed_taps += 1;
                    bus.parked_since = now;
                    self.trace(TraceKind::Accept, id, head, None, "multicast tap armed");
                } else {
                    self.buses.set_state(id, BusState::Nacked { freed: 0 });
                    self.refusals += 1;
                    self.wake_bus(id);
                    self.trace(TraceKind::Refuse, id, head, None, "multicast tap busy");
                }
                self.last_progress = now;
                return;
            }
            if head != dst {
                if let Some(limit) = self.cfg.head_timeout {
                    let parked_since = self.buses.get(id).expect("bus is live").parked_since;
                    let parked = now.saturating_sub(parked_since);
                    if parked > limit {
                        self.buses.set_state(id, BusState::Nacked { freed: 0 });
                        self.refusals += 1;
                        self.wake_bus(id);
                        self.trace(
                            TraceKind::Refuse,
                            id,
                            head,
                            None,
                            "header timed out at intermediate INC",
                        );
                        self.last_progress = now;
                    }
                }
                return;
            }
            if self.dead_inc[dst.as_usize()] > 0 {
                self.fault_kill(id, "destination INC is dead");
                return;
            }
            let accept = self.nodes[dst.as_usize()].receives_active
                < self.cfg.node.max_concurrent_receives;
            if accept {
                self.buses
                    .set_state(id, BusState::AwaitingHack { hops_left: span });
                self.nodes[dst.as_usize()].receives_active += 1;
                self.wake_bus(id);
                // With early compaction the circuit is assessable from
                // the Hack onwards (§2.4).
                self.mark_dirty(id);
                self.trace(TraceKind::Accept, id, dst, None, "destination accepted");
            } else {
                self.buses.set_state(id, BusState::Nacked { freed: 0 });
                self.refusals += 1;
                self.wake_bus(id);
                self.trace(TraceKind::Refuse, id, dst, None, "destination busy");
            }
            self.last_progress = now;
        }
    }

    fn extend_heads(&mut self) {
        self.for_each_establishing(Self::extend_bus);
    }

    fn extend_bus(&mut self, id: VirtualBusId) {
        let ring = self.ring();
        let now = self.now.get();
        let top = self.cfg.top_bus();
        {
            let (head, last_height, injected_at);
            {
                if !matches!(self.buses.state(id), Some(BusState::Establishing)) {
                    return;
                }
                let bus = self.buses.get(id).expect("bus is live");
                head = bus.head_node(ring);
                if head == bus.spec.destination {
                    return;
                }
                // A multicast header dwells at each tap until the tap has
                // taken its receive port (the decision phase arms it).
                if bus.taps.get(bus.armed_taps) == Some(&head) {
                    return;
                }
                last_height = *bus.heights.last().expect("established hops");
                injected_at = bus.injected_at;
            }
            if injected_at == now {
                // Injected this very tick; the HF advances from next tick.
                return;
            }
            let hop = head.as_usize();
            let chosen = match self.cfg.insertion {
                InsertionPolicy::TopBusOnly => {
                    if self.faulted(hop, top.as_usize()) {
                        // The header lane ahead is dead and a parked HF
                        // cannot sidestep it: Nack back to the source
                        // rather than wait for a repair that may never
                        // come.
                        self.fault_kill(id, "header lane ahead is faulted");
                        return;
                    }
                    // Header flits travel on the top lane only (§2.3).
                    (self.seg(hop, top.as_usize()).is_none()).then_some(top)
                }
                InsertionPolicy::AnyFreeBus => {
                    if self.reach_all_faulted(hop, last_height) {
                        self.fault_kill(id, "every reachable segment ahead is faulted");
                        return;
                    }
                    self.free_within_reach(hop, last_height)
                }
            };
            if let Some(height) = chosen {
                debug_assert!(
                    last_height.is_adjacent_or_equal(height),
                    "extension out of the INC switching range"
                );
                self.occupy(hop, height, id);
                let bus = self.buses.get_mut(id).expect("bus is live");
                bus.heights.push(height);
                bus.parked_since = now;
                self.mark_dirty(id);
                self.trace(
                    TraceKind::Extend,
                    id,
                    head,
                    Some(height),
                    "header advanced one hop",
                );
                self.last_progress = now;
            }
        }
    }

    /// `true` when the segment is neither occupied nor faulted. Answered
    /// from the packed bitmaps in `Bitmap` mode (two bit probes), from
    /// the owner and fault tables in `SlabWalk` mode.
    #[inline]
    fn available(&self, hop: usize, bus: usize) -> bool {
        if self.feas_bitmap {
            !self.occ.blocked(hop, bus)
        } else {
            self.seg(hop, bus).is_none() && !self.faulted(hop, bus)
        }
    }

    /// For the `AnyFreeBus` ablation: the first available segment on
    /// `hop` within switching reach of `from`, preferring straight, then
    /// down, then up.
    fn free_within_reach(&self, hop: usize, from: BusIndex) -> Option<BusIndex> {
        if self.available(hop, from.as_usize()) {
            return Some(from);
        }
        if let Some(lower) = from.lower() {
            if self.available(hop, lower.as_usize()) {
                return Some(lower);
            }
        }
        if from.index() + 1 < self.cfg.buses() {
            let upper = from.upper();
            if self.available(hop, upper.as_usize()) {
                return Some(upper);
            }
        }
        None
    }

    /// `true` when every segment within switching reach of `from` at
    /// `hop` is faulted — the header can never advance until a repair, so
    /// waiting is pointless.
    fn reach_all_faulted(&self, hop: usize, from: BusIndex) -> bool {
        let mut all = self.faulted(hop, from.as_usize());
        if let Some(lower) = from.lower() {
            all = all && self.faulted(hop, lower.as_usize());
        }
        if from.index() + 1 < self.cfg.buses() {
            all = all && self.faulted(hop, from.upper().as_usize());
        }
        all
    }

    fn inject_pending(&mut self) {
        let now = self.now.get();
        let n = self.cfg.nodes().as_usize();
        // Rotate the scan start so low-numbered nodes get no static edge.
        let start = (now % n as u64) as usize;
        if self.event_driven {
            // Promote nodes whose queue front has just come due from the
            // timing wheel into the ready set, then attempt injection only
            // at ready nodes — in the same rotated order the dense sweep
            // would visit them. Draining the wheel to `None` leaves its
            // peek hint exact, which `has_due_work` relies on.
            while let Some((_, s)) = self.sched.wheel.pop_due(Tick::new(now)) {
                self.arm_node(s as usize);
            }
            if self.sched.ready.is_empty() {
                // No node has a due queue front; the rotated scan below
                // would visit nothing.
                return;
            }
            let mut ready = std::mem::take(&mut self.sched.scratch_ready);
            ready.clear();
            ready.extend_from_slice(&self.sched.ready);
            let pivot = ready.partition_point(|&s| (s as usize) < start);
            for idx in (pivot..ready.len()).chain(0..pivot) {
                let s = ready[idx] as usize;
                match self.try_inject_at(s) {
                    // Still blocked on a send cap or a busy segment: the
                    // front stays due, so the node stays ready.
                    InjectOutcome::CapBlocked | InjectOutcome::Buffered => {}
                    InjectOutcome::NoFront => self.ready_remove(s),
                    InjectOutcome::NotDue => {
                        // A ready node's front is immutable until visited,
                        // so its `not_before` cannot move into the future.
                        debug_assert!(false, "ready node's front is not due");
                        self.ready_remove(s);
                        self.arm_node(s);
                    }
                    // The front changed (consumed or re-queued with a
                    // backoff): re-arm for the new front, if any.
                    InjectOutcome::RefusedAtSource | InjectOutcome::Injected => {
                        self.ready_remove(s);
                        self.arm_node(s);
                    }
                }
            }
            self.sched.scratch_ready = ready;
        } else {
            for off in 0..n {
                let s = (start + off) % n;
                self.try_inject_at(s);
            }
        }
    }

    /// Attempts to inject the front pending request at node `s`: the
    /// per-node body of the injection phase, shared verbatim by the dense
    /// sweep (which ignores the outcome) and the event engine (which uses
    /// it to maintain the ready set).
    fn try_inject_at(&mut self, s: usize) -> InjectOutcome {
        let now = self.now.get();
        let top = self.cfg.top_bus();
        {
            let node = &self.nodes[s];
            if node.sends_active >= self.cfg.node.max_concurrent_sends {
                return InjectOutcome::CapBlocked;
            }
            let Some(front) = node.pending.front() else {
                return InjectOutcome::NoFront;
            };
            if front.not_before > now {
                return InjectOutcome::NotDue;
            }
            // Faults that park the request forever — a dead source INC,
            // or a header lane that is faulted rather than merely busy —
            // refuse it on the spot so it backs off (and eventually
            // aborts) instead of deadlocking the queue.
            let fault_blocked = self.dead_inc[s] > 0
                || match self.cfg.insertion {
                    InsertionPolicy::TopBusOnly => self.faulted(s, top.as_usize()),
                    InsertionPolicy::AnyFreeBus => {
                        (0..self.cfg.buses() as usize).all(|b| self.faulted(s, b))
                    }
                };
            if fault_blocked {
                self.refuse_at_source(s);
                return InjectOutcome::RefusedAtSource;
            }
            let height = match self.cfg.insertion {
                InsertionPolicy::TopBusOnly => {
                    // A request may only be initiated when the top segment
                    // at this INC is not serving another request (§2.2).
                    (self.seg(s, top.as_usize()).is_none()).then_some(top)
                }
                InsertionPolicy::AnyFreeBus => {
                    // Highest available segment on the source hop.
                    (0..self.cfg.buses())
                        .rev()
                        .map(BusIndex::new)
                        .find(|b| self.available(s, b.as_usize()))
                }
            };
            let Some(height) = height else {
                return InjectOutcome::Buffered; // HF stays buffered at the node (§2.3).
            };
            let pending = self.nodes[s].pending.pop_front().expect("front exists");
            self.pending_total -= 1;
            let id = VirtualBusId::new(self.next_bus);
            self.next_bus += 1;
            self.occupy(s, height, id);
            self.nodes[s].sends_active += 1;
            let bus = VirtualBus {
                id,
                request: pending.request,
                spec: pending.spec,
                requested_at: pending.requested_at,
                injected_at: now,
                refusals: pending.refusals,
                heights: vec![height],
                parked_since: now,
                taps: pending.taps,
                armed_taps: 0,
                fault_killed: false,
            };
            self.trace(
                TraceKind::Inject,
                id,
                pending.spec.source,
                Some(height),
                "HF inserted",
            );
            self.buses.insert(bus, BusState::Establishing);
            if self.event_driven {
                self.sched_init_bus(id);
            }
            self.last_progress = now;
            InjectOutcome::Injected
        }
    }

    fn run_compaction(&mut self) {
        if !self.cfg.compaction {
            return;
        }
        match &self.opts.compaction_mode {
            CompactionMode::Synchronous => {
                if self.track_dirty
                    && self.sched.compact_dirty.is_empty()
                    && self.sched.pending_wakes.is_empty()
                {
                    // Every live bus has assessed clean in both cycle
                    // phases and nothing woke one since: the dense scan
                    // would decide no move.
                    return;
                }
                let phase = Phase::of_tick(self.now.get());
                // Decide against the phase-start snapshot, then apply: the
                // odd/even assessment rule guarantees the decided moves are
                // mutually compatible (see compaction::tests).
                let mut moves = std::mem::take(&mut self.scratch_moves);
                if self.track_dirty {
                    self.collect_dirty_moves(phase, &mut moves);
                } else {
                    self.collect_moves_into(phase, None, &mut moves);
                }
                for (id, j, from, to, hop) in moves.drain(..) {
                    self.apply_move(id, j, from, to, hop);
                }
                self.scratch_moves = moves;
            }
            CompactionMode::Handshake { periods } => {
                let periods = periods.clone();
                let now = self.now.get();
                let n = self.cfg.nodes().as_usize();
                // `i` is simultaneously a period index, a ring position
                // and a controller index; a plain range reads best here.
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    if !now.is_multiple_of(periods[i]) {
                        continue;
                    }
                    let cycles = self.cycles.as_mut().expect("handshake ring exists");
                    let may_switch = cycles.controller(i).may_switch_datapath();
                    let done = cycles.controller(i).internal_done();
                    let phase = cycles.controller(i).phase();
                    if may_switch && !done {
                        // Perform this INC's datapath switches for its
                        // local phase, then raise ID.
                        let mut moves = std::mem::take(&mut self.scratch_moves);
                        self.collect_moves_into(phase, Some(NodeId::new(i as u32)), &mut moves);
                        for (id, j, from, to, hop) in moves.drain(..) {
                            self.apply_move(id, j, from, to, hop);
                        }
                        self.scratch_moves = moves;
                        let cycles = self.cycles.as_mut().expect("handshake ring exists");
                        cycles.set_internal_done(i, true);
                    }
                    let cycles = self.cycles.as_mut().expect("handshake ring exists");
                    let step = cycles.activate(i);
                    if step == crate::cycle::CycleStep::CycleSwitched {
                        if let Some(rec) = &mut self.recorder {
                            rec.record(TraceEvent {
                                at: self.now,
                                kind: TraceKind::CycleSwitch,
                                id: None,
                                node: Some(i as u32),
                                bus: None,
                                detail: format!(
                                    "phase now {}",
                                    self.cycles.as_ref().unwrap().controller(i).phase()
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Collects the eligible moves for `phase` into `out` (cleared
    /// first), optionally restricted to hops whose upstream INC is
    /// `only_node` — the dense full scan, in ascending id order.
    fn collect_moves_into(
        &self,
        phase: Phase,
        only_node: Option<NodeId>,
        out: &mut Vec<MoveCmd>,
    ) {
        out.clear();
        for (bus, state) in self.buses.values_with_state() {
            if !state.compactable() {
                continue;
            }
            if state.pre_hack() && !self.cfg.early_compaction {
                continue;
            }
            self.collect_bus_moves(bus.id, bus, state, phase, only_node, out);
        }
    }

    /// Appends the eligible moves of one bus to `out`, hops in ascending
    /// order (the per-bus body shared by the dense scan and the dirty
    /// set). The caller has already filtered on compactability.
    fn collect_bus_moves(
        &self,
        id: VirtualBusId,
        bus: &VirtualBus,
        state: BusState,
        phase: Phase,
        only_node: Option<NodeId>,
        out: &mut Vec<MoveCmd>,
    ) {
        let ring = self.ring();
        for j in 0..bus.heights.len() {
            let node = bus.hop_upstream_node(ring, j);
            if let Some(only) = only_node {
                if node != only {
                    continue;
                }
            }
            let height = bus.heights[j];
            if !assessed_in_phase(node, height, phase) {
                continue;
            }
            let ctx = self.hop_context(bus, state, j);
            if ctx.switchable_down().is_some() {
                let to = height.lower().expect("switchable implies not bottom");
                out.push((id, j, height, to, node.as_usize()));
            }
        }
    }

    /// Collects eligible moves for `phase` by walking only the dirty set
    /// (buses a wake-up event touched since they last assessed clean).
    ///
    /// Equivalence with the dense scan: the dirty list is kept in
    /// ascending id order and per-bus hops ascend, so the collected moves
    /// come out in exactly the dense order; and a clean bus cannot have
    /// an eligible move, because every event that can *enable* a move —
    /// segment release or repair below a hop, a state change into a
    /// compactable state, an extension, one of the bus's own hops moving
    /// — re-marks the bus, and a bus only goes clean after assessing
    /// empty in both the odd and even phase. See DESIGN.md.
    fn collect_dirty_moves(&mut self, phase: Phase, out: &mut Vec<MoveCmd>) {
        self.flush_compaction_wakes();
        out.clear();
        let mut dirty = std::mem::take(&mut self.sched.compact_dirty);
        let mut kept = 0usize;
        for i in 0..dirty.len() {
            let id = dirty[i];
            let Some(slot) = self.buses.slot(id) else {
                // The bus died; its slot (and flags) may already belong
                // to a successor, so just drop the entry.
                continue;
            };
            let before = out.len();
            let eligible = {
                let state = self.buses.state_at(slot);
                let ok = state.compactable()
                    && (self.cfg.early_compaction || !state.pre_hack());
                if ok {
                    let bus = self.buses.get(id).expect("slot implies live");
                    self.collect_bus_moves(id, bus, state, phase, None, out);
                }
                ok
            };
            if !eligible {
                // Not assessable yet (or a torn-down straggler): the
                // state change that makes it assessable re-marks it.
                self.sched.dirty[slot] = false;
                continue;
            }
            if out.len() > before {
                self.sched.clean_streak[slot] = 0;
                dirty[kept] = id;
                kept += 1;
            } else {
                let streak = &mut self.sched.clean_streak[slot];
                *streak += 1;
                if *streak >= 2 {
                    // No move in either cycle phase: nothing to do until
                    // an enabling event re-marks this bus.
                    self.sched.dirty[slot] = false;
                } else {
                    dirty[kept] = id;
                    kept += 1;
                }
            }
        }
        dirty.truncate(kept);
        self.sched.compact_dirty = dirty;
    }

    /// The compaction context of hop `j` of `bus` (in `state`).
    fn hop_context(&self, bus: &VirtualBus, state: BusState, j: usize) -> HopContext {
        let ring = self.ring();
        let height = bus.heights[j];
        let upstream = if j == 0 {
            EndpointHeight::Pe
        } else {
            EndpointHeight::At(bus.heights[j - 1])
        };
        let last = bus.heights.len() - 1;
        let downstream = if j == last {
            match state {
                // INCs monitor only the top segment for header flits, so
                // the hop feeding a parked head must stay at the top.
                BusState::Establishing if bus.head_node(ring) != bus.spec.destination => {
                    EndpointHeight::ParkedHead
                }
                // Head parked at the destination awaiting the decision, or
                // already accepted: the PE interface reads any port.
                _ => EndpointHeight::Pe,
            }
        } else {
            EndpointHeight::At(bus.heights[j + 1])
        };
        let hop = bus.hop_upstream_node(ring, j).as_usize();
        // A faulted segment reads as permanently occupied, so compaction
        // migrates live buses around it (Fig. 7 conditions unchanged).
        let below_free = height
            .lower()
            .map(|lo| self.available(hop, lo.as_usize()))
            .unwrap_or(false);
        HopContext {
            height,
            top: self.cfg.top_bus(),
            upstream,
            downstream,
            below_free,
        }
    }

    fn apply_move(&mut self, id: VirtualBusId, j: usize, from: BusIndex, to: BusIndex, hop: usize) {
        debug_assert_eq!(self.seg(hop, from.as_usize()), Some(id));
        debug_assert!(self.seg(hop, to.as_usize()).is_none());
        let k = self.cfg.buses() as usize;
        let from_idx = hop * k + from.as_usize();
        let to_idx = hop * k + to.as_usize();
        debug_assert_eq!(self.fault_count[to_idx], 0, "moving onto a faulted segment");
        self.segments[from_idx] = None;
        self.segments[to_idx] = Some(id);
        self.occ.move_occupied(hop, from.as_usize(), to.as_usize());
        if self.fault_count[from_idx] == 0 {
            // A same-hop move swaps which layer owns the segment but
            // leaves `busy_segments`, `free_per_hop`, and the full-hops
            // lane exactly as they were — only the wake is needed.
            self.wake_above(hop, from);
        } else {
            // The vacated segment faulted under its occupant: it stays
            // out of the availability pool, so the hop net-loses the
            // free segment the move consumed.
            self.free_per_hop[hop] -= 1;
            if self.free_per_hop[hop] == 0 {
                self.occ.assign_full(hop, true);
            }
        }
        let bus = self.buses.get_mut(id).expect("moving a live bus");
        bus.heights[j] = to;
        self.compaction_moves += 1;
        self.last_progress = self.now.get();
        if self.recorder.is_some() {
            let detail = format!("hop {j} moved {from} -> {to}");
            self.trace(
                TraceKind::CompactMove,
                id,
                NodeId::new(hop as u32),
                Some(to),
                &detail,
            );
        }
    }

    fn finish_tick(&mut self) {
        if self.busy_segments != self.util_sample.0 {
            self.util_sample = (self.busy_segments, self.utilization());
        }
        self.utilization.record(self.util_sample.1);
        self.peak_virtual_buses = self.peak_virtual_buses.max(self.buses.len());
        self.now = self.now.next();
        if self.opts.checked {
            if let Err(v) = self.check_invariants() {
                panic!("invariant violated at {}: {v}", self.now);
            }
            // Downward-only motion (§2.2): a hop's height never increases
            // while its virtual bus lives; extension only appends.
            let mut next = HashMap::with_capacity(self.buses.len());
            for bus in self.buses.values() {
                let heights: Vec<u16> = bus.heights.iter().map(|h| h.index()).collect();
                if let Some(prev) = self.height_history.get(&bus.id.get()) {
                    assert!(prev.len() <= heights.len(), "hops never detach from the front");
                    for (j, (&p, &c)) in prev.iter().zip(&heights).enumerate() {
                        assert!(
                            c <= p,
                            "bus {} hop {j} moved up: {p} -> {c} at {}",
                            bus.id,
                            self.now
                        );
                    }
                }
                next.insert(bus.id.get(), heights);
            }
            self.height_history = next;
        }
    }

    fn occupy(&mut self, hop: usize, bus: BusIndex, id: VirtualBusId) {
        let idx = hop * self.cfg.buses() as usize + bus.as_usize();
        debug_assert_eq!(self.fault_count[idx], 0, "occupying a faulted segment");
        let slot = &mut self.segments[idx];
        debug_assert!(slot.is_none(), "segment double-booked");
        *slot = Some(id);
        self.busy_segments += 1;
        self.free_per_hop[hop] -= 1;
        self.occ.assign_occupied(hop, bus.as_usize(), true);
        if self.free_per_hop[hop] == 0 {
            self.occ.assign_full(hop, true);
        }
    }

    fn release(&mut self, hop: usize, bus: BusIndex) {
        let idx = hop * self.cfg.buses() as usize + bus.as_usize();
        let slot = &mut self.segments[idx];
        debug_assert!(slot.is_some(), "releasing a free segment");
        *slot = None;
        self.busy_segments -= 1;
        self.occ.assign_occupied(hop, bus.as_usize(), false);
        // A segment that faulted under its occupant stays out of the
        // availability pool; the free count comes back on repair.
        if self.fault_count[idx] == 0 {
            self.free_per_hop[hop] += 1;
            if self.free_per_hop[hop] == 1 {
                // Only a 0 → 1 transition can have the full bit set.
                self.occ.assign_full(hop, false);
            }
            self.wake_above(hop, bus);
        }
    }

    fn trace(
        &mut self,
        kind: TraceKind,
        id: VirtualBusId,
        node: NodeId,
        height: Option<BusIndex>,
        detail: &str,
    ) {
        if let Some(rec) = &mut self.recorder {
            rec.record(TraceEvent {
                at: self.now,
                kind,
                id: Some(id.get()),
                node: Some(node.index()),
                bus: height.map(|b| b.index()),
                detail: detail.to_owned(),
            });
        }
    }

    /// Internal accessor for the invariant checker and renderers: the
    /// occupant of `(hop, bus)` by raw index.
    pub(crate) fn segment_slot(&self, hop: usize, bus: usize) -> Option<VirtualBusId> {
        self.seg(hop, bus)
    }

    /// Internal accessor for the invariant checker and renderers.
    pub(crate) fn buses_raw(&self) -> &BusSlab {
        &self.buses
    }

    /// Transition counts of the handshake cycle controllers, if running in
    /// handshake mode (for Lemma 1 measurements).
    pub fn cycle_transitions(&self) -> Option<Vec<u64>> {
        self.cycles.as_ref().map(|ring| {
            (0..ring.len())
                .map(|i| ring.controller(i).transitions())
                .collect()
        })
    }

    /// Largest difference in completed cycle transitions between
    /// neighbouring INCs (Lemma 1 bound), if in handshake mode.
    pub fn max_cycle_skew(&self) -> Option<u64> {
        self.cycles.as_ref().map(|r| r.max_neighbour_skew())
    }
}

#[cfg(test)]
mod slab_tests {
    use super::*;
    use crate::virtual_bus::BusState;

    fn dummy_bus(id: u64) -> VirtualBus {
        VirtualBus {
            id: VirtualBusId::new(id),
            request: RequestId::new(id),
            spec: MessageSpec::new(NodeId::new(0), NodeId::new(1), 4),
            requested_at: 0,
            injected_at: 0,
            refusals: 0,
            heights: vec![BusIndex::new(0)],
            parked_since: 0,
            taps: Vec::new(),
            armed_taps: 0,
            fault_killed: false,
        }
    }

    #[test]
    fn insert_get_take_discard_cycle() {
        let mut slab = BusSlab::default();
        for id in 0..5 {
            slab.insert(dummy_bus(id), BusState::Establishing);
        }
        assert_eq!(
            slab.state(VirtualBusId::new(3)),
            Some(BusState::Establishing)
        );
        slab.set_state(VirtualBusId::new(3), BusState::TearingDown { freed: 0 });
        assert_eq!(
            slab.state(VirtualBusId::new(3)),
            Some(BusState::TearingDown { freed: 0 })
        );
        assert_eq!(slab.len(), 5);
        assert_eq!(slab.get(VirtualBusId::new(3)).unwrap().id.get(), 3);
        // Iteration is id-ascending.
        let order: Vec<u64> = slab.iter().map(|(id, _)| id.get()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        // Take and put back keeps the bus live.
        let b = slab.take(VirtualBusId::new(2)).unwrap();
        slab.put_back(VirtualBusId::new(2), b);
        assert!(slab.get(VirtualBusId::new(2)).is_some());
        // Remove 1 and 3 the way the sweep does: take + discard + compact.
        let ids: Vec<VirtualBusId> = slab.active_ids().to_vec();
        let mut kept = 0;
        for id in ids {
            let bus = slab.take(id).unwrap();
            if id.get() == 1 || id.get() == 3 {
                slab.discard(id);
            } else {
                slab.put_back(id, bus);
                let slot = slab.slot(id).expect("live bus");
                slab.set_active(kept, id, slot);
                kept += 1;
            }
        }
        slab.truncate_active(kept);
        assert_eq!(slab.len(), 3);
        assert!(slab.get(VirtualBusId::new(1)).is_none());
        let order: Vec<u64> = slab.iter().map(|(id, _)| id.get()).collect();
        assert_eq!(order, vec![0, 2, 4]);
        // New ids recycle freed slots but keep ascending order (and the
        // recycled slot's state lane is overwritten, not inherited).
        slab.insert(dummy_bus(5), BusState::Establishing);
        assert_eq!(
            slab.state(VirtualBusId::new(5)),
            Some(BusState::Establishing)
        );
        let order: Vec<u64> = slab.iter().map(|(id, _)| id.get()).collect();
        assert_eq!(order, vec![0, 2, 4, 5]);
    }
}
