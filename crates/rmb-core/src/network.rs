//! The RMB ring network simulator.
//!
//! Ties the pieces together: N nodes on a ring, k physical bus segments
//! per hop, the routing protocol of §2.2–2.3 (header flit insertion at the
//! top bus, extension one hop per tick, Hack/Dack/Fack/Nack, data flits
//! only after the Hack, tail-first teardown), and the compaction protocol
//! of §2.4–2.5 in two flavours:
//!
//! * **synchronous** — an idealised global odd/even alternation, one phase
//!   per tick (used by the large experiments), and
//! * **handshake** — every INC runs the paper's five-rule cycle controller
//!   off its own (possibly skewed) activation clock, exactly as §2.5
//!   prescribes (used by the fidelity and Lemma 1 experiments).
//!
//! One tick is the time a flit or acknowledgement needs to cross one bus
//! segment. Within a tick the simulator performs, in order: stream and
//! teardown progression, destination decisions, head extensions,
//! injections, one compaction activation, statistics.

use crate::compaction::{assessed_in_phase, EndpointHeight, HopContext, Phase};
use crate::cycle::CycleRing;
use crate::invariants::{check_network, InvariantViolation};
use crate::virtual_bus::{BusState, StreamState, VirtualBus};
use rmb_sim::stats::OnlineStats;
use rmb_sim::trace::{TraceEvent, TraceKind, TraceSink, VecSink};
use rmb_sim::Tick;
use rmb_types::{
    AckMode, BusIndex, DeliveredMessage, InsertionPolicy, MessageSpec, NodeId, ProtocolError,
    RequestId, RingSize, RmbConfig, VirtualBusId,
};
use std::collections::{BTreeMap, VecDeque};

/// Which compaction engine drives the odd/even cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionMode {
    /// Global lockstep: tick `t` runs the `Phase::of_tick(t)` cycle at
    /// every INC simultaneously.
    Synchronous,
    /// Per-INC five-rule cycle controllers (§2.5). INC `i` is activated on
    /// ticks where `tick % periods[i] == 0`, modelling independent clocks.
    Handshake {
        /// Activation period per INC (1 = every tick).
        periods: Vec<u64>,
    },
}

/// A request waiting at its source node for injection.
#[derive(Debug, Clone)]
struct PendingRequest {
    request: RequestId,
    spec: MessageSpec,
    taps: Vec<NodeId>,
    requested_at: u64,
    refusals: u32,
    not_before: u64,
}

/// Per-node state: the PE-side send/receive slots and the HF buffer.
#[derive(Debug, Clone, Default)]
struct NodeState {
    pending: VecDeque<PendingRequest>,
    sends_active: u32,
    receives_active: u32,
}

/// Summary of a completed (or aborted) simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Messages delivered in full, in completion order.
    pub delivered: Vec<DeliveredMessage>,
    /// Total `Nack` refusals issued.
    pub refusals: u64,
    /// Total compaction moves performed.
    pub compaction_moves: u64,
    /// Mean fraction of busy physical segments over the run.
    pub mean_utilization: f64,
    /// Peak number of simultaneously live virtual buses.
    pub peak_virtual_buses: usize,
    /// Requests submitted but not delivered when the run ended.
    pub undelivered: usize,
    /// `true` if the run ended because no progress was being made while
    /// work remained (a routing stall / deadlock).
    pub stalled: bool,
}

impl RunReport {
    /// Tick of the last delivery, or 0 when nothing was delivered.
    pub fn makespan(&self) -> u64 {
        self.delivered
            .iter()
            .map(|d| d.delivered_at)
            .max()
            .unwrap_or(0)
    }

    /// Mean end-to-end message latency.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        self.delivered.iter().map(|d| d.latency() as f64).sum::<f64>()
            / self.delivered.len() as f64
    }

    /// Histogram of end-to-end latencies with the given bin width
    /// (64 bins plus overflow).
    pub fn latency_histogram(&self, bin_width: u64) -> rmb_sim::stats::Histogram {
        let mut h = rmb_sim::stats::Histogram::new(bin_width.max(1), 64);
        for d in &self.delivered {
            h.record(d.latency());
        }
        h
    }

    /// Mean circuit set-up latency.
    pub fn mean_setup_latency(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        self.delivered
            .iter()
            .map(|d| d.setup_latency() as f64)
            .sum::<f64>()
            / self.delivered.len() as f64
    }
}

/// The RMB network simulator.
///
/// # Examples
///
/// ```
/// use rmb_core::RmbNetwork;
/// use rmb_types::{MessageSpec, NodeId, RmbConfig};
///
/// let cfg = RmbConfig::new(8, 2)?;
/// let mut net = RmbNetwork::new(cfg);
/// net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(4), 8))?;
/// let report = net.run_to_quiescence(10_000);
/// assert_eq!(report.delivered.len(), 1);
/// assert!(!report.stalled);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RmbNetwork {
    cfg: RmbConfig,
    now: Tick,
    /// `segments[hop][bus]`: occupancy of the bus segment between node
    /// `hop` and node `hop + 1`.
    segments: Vec<Vec<Option<VirtualBusId>>>,
    buses: BTreeMap<VirtualBusId, VirtualBus>,
    nodes: Vec<NodeState>,
    mode: CompactionMode,
    cycles: Option<CycleRing>,
    next_request: u64,
    next_bus: u64,
    busy_segments: usize,
    // Counters and stats.
    delivered: Vec<DeliveredMessage>,
    refusals: u64,
    compaction_moves: u64,
    utilization: OnlineStats,
    peak_virtual_buses: usize,
    submitted: u64,
    last_progress: u64,
    // Tracing / checking.
    recorder: Option<VecSink>,
    checked: bool,
    /// Previous heights per live bus, kept only in checked mode to verify
    /// downward-only motion.
    height_history: std::collections::HashMap<u64, Vec<u16>>,
}

impl RmbNetwork {
    /// Creates an idle network from a configuration, using the synchronous
    /// compactor.
    pub fn new(cfg: RmbConfig) -> Self {
        let n = cfg.nodes().as_usize();
        let k = cfg.buses() as usize;
        RmbNetwork {
            cfg,
            now: Tick::ZERO,
            segments: vec![vec![None; k]; n],
            buses: BTreeMap::new(),
            nodes: vec![NodeState::default(); n],
            mode: CompactionMode::Synchronous,
            cycles: None,
            next_request: 0,
            next_bus: 0,
            busy_segments: 0,
            delivered: Vec::new(),
            refusals: 0,
            compaction_moves: 0,
            utilization: OnlineStats::default(),
            peak_virtual_buses: 0,
            submitted: 0,
            last_progress: 0,
            recorder: None,
            checked: false,
            height_history: std::collections::HashMap::new(),
        }
    }

    /// Switches the compaction engine. Resets the handshake controllers.
    ///
    /// # Panics
    ///
    /// Panics if a handshake mode's `periods` length differs from `N` or
    /// contains a zero.
    pub fn set_compaction_mode(&mut self, mode: CompactionMode) {
        if let CompactionMode::Handshake { periods } = &mode {
            assert_eq!(
                periods.len(),
                self.cfg.nodes().as_usize(),
                "one activation period per INC"
            );
            assert!(periods.iter().all(|&p| p > 0), "periods must be positive");
            self.cycles = Some(CycleRing::new(self.cfg.nodes().as_usize()));
        } else {
            self.cycles = None;
        }
        self.mode = mode;
    }

    /// Starts recording protocol trace events.
    pub fn enable_recording(&mut self) {
        self.recorder = Some(VecSink::new());
    }

    /// Takes the recorded events (and keeps recording into a fresh sink).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self.recorder.take() {
            Some(sink) => {
                self.recorder = Some(VecSink::new());
                sink.into_events()
            }
            None => Vec::new(),
        }
    }

    /// Enables per-tick invariant checking.
    ///
    /// # Panics
    ///
    /// Once enabled, `tick` panics on the first invariant violation — this
    /// is meant for tests and small fidelity runs.
    pub fn set_checked(&mut self, on: bool) {
        self.checked = on;
    }

    /// The static configuration.
    pub const fn config(&self) -> &RmbConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub const fn now(&self) -> Tick {
        self.now
    }

    /// The ring size.
    pub fn ring(&self) -> RingSize {
        self.cfg.nodes()
    }

    /// Number of live virtual buses.
    pub fn active_virtual_buses(&self) -> usize {
        self.buses.len()
    }

    /// Iterates over the live virtual buses in id order.
    pub fn virtual_buses(&self) -> impl Iterator<Item = &VirtualBus> {
        self.buses.values()
    }

    /// Looks up a live virtual bus.
    pub fn virtual_bus(&self, id: VirtualBusId) -> Option<&VirtualBus> {
        self.buses.get(&id)
    }

    /// Requests not yet injected (buffered HFs plus backoff waiters).
    pub fn pending_requests(&self) -> usize {
        self.nodes.iter().map(|n| n.pending.len()).sum()
    }

    /// Count of currently busy physical segments.
    pub const fn busy_segments(&self) -> usize {
        self.busy_segments
    }

    /// Instantaneous utilisation: busy segments / (N·k).
    pub fn utilization(&self) -> f64 {
        let total = self.cfg.nodes().as_usize() * self.cfg.buses() as usize;
        self.busy_segments as f64 / total as f64
    }

    /// The occupant of the segment between `hop` and `hop + 1` at height
    /// `bus`, if any.
    pub fn segment_owner(&self, hop: NodeId, bus: BusIndex) -> Option<VirtualBusId> {
        self.segments
            .get(hop.as_usize())
            .and_then(|h| h.get(bus.as_usize()))
            .copied()
            .flatten()
    }

    /// `true` when every hop of the clockwise path `src → dst` has at
    /// least one free segment — Theorem 1's availability oracle.
    pub fn path_feasible(&self, src: NodeId, dst: NodeId) -> bool {
        let ring = self.ring();
        let span = ring.clockwise_distance(src, dst);
        (0..span).all(|j| {
            let hop = ring.advance(src, j).as_usize();
            self.segments[hop].iter().any(|s| s.is_none())
        })
    }

    /// `true` when nothing is in flight and nothing is waiting.
    pub fn is_quiescent(&self) -> bool {
        self.buses.is_empty() && self.nodes.iter().all(|n| n.pending.is_empty())
    }

    /// `true` when some circuit is live or some pending request is already
    /// due for injection (as opposed to scheduled for a future tick).
    pub fn has_due_work(&self) -> bool {
        !self.buses.is_empty()
            || self.nodes.iter().any(|n| {
                n.pending
                    .front()
                    .is_some_and(|p| p.not_before <= self.now.get())
            })
    }

    /// Submits a message for delivery.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownNode`] if an endpoint is outside
    /// the ring and [`ProtocolError::SelfMessage`] if source equals
    /// destination.
    pub fn submit(&mut self, spec: MessageSpec) -> Result<RequestId, ProtocolError> {
        let ring = self.ring();
        if !ring.contains(spec.source) {
            return Err(ProtocolError::UnknownNode(spec.source));
        }
        if !ring.contains(spec.destination) {
            return Err(ProtocolError::UnknownNode(spec.destination));
        }
        if spec.source == spec.destination {
            return Err(ProtocolError::SelfMessage(spec.source));
        }
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        self.submitted += 1;
        self.nodes[spec.source.as_usize()]
            .pending
            .push_back(PendingRequest {
                request,
                spec,
                taps: Vec::new(),
                requested_at: spec.inject_at,
                refusals: 0,
                not_before: spec.inject_at,
            });
        Ok(request)
    }

    /// Submits a multicast: one circuit from `source` that delivers the
    /// same `data_flits`-flit body to every node in `destinations`.
    ///
    /// This implements the extension the paper names but leaves out of
    /// scope (§1: "the RMB concept can also be extended to support
    /// broadcasting and multicasting"). The header flit arms a *tap* at
    /// each intermediate destination as it passes — taking that node's
    /// receive port — and the circuit runs to the farthest destination;
    /// every tap then receives the stream as it flows by. If any
    /// destination's receive port is busy, the whole circuit is refused
    /// with a `Nack` and retried later, keeping the paper's
    /// no-intermediate-buffering property.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownNode`] for endpoints outside the
    /// ring and [`ProtocolError::SelfMessage`] if `destinations` is empty,
    /// contains the source, or contains duplicates.
    pub fn submit_multicast(
        &mut self,
        source: NodeId,
        destinations: &[NodeId],
        data_flits: u32,
        inject_at: u64,
    ) -> Result<RequestId, ProtocolError> {
        let ring = self.ring();
        if !ring.contains(source) {
            return Err(ProtocolError::UnknownNode(source));
        }
        if destinations.is_empty() {
            return Err(ProtocolError::SelfMessage(source));
        }
        let mut sorted = destinations.to_vec();
        for d in &sorted {
            if !ring.contains(*d) {
                return Err(ProtocolError::UnknownNode(*d));
            }
            if *d == source {
                return Err(ProtocolError::SelfMessage(source));
            }
        }
        sorted.sort_by_key(|d| ring.clockwise_distance(source, *d));
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(ProtocolError::SelfMessage(source));
        }
        let final_dest = *sorted.last().expect("non-empty");
        let taps = sorted[..sorted.len() - 1].to_vec();
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        self.submitted += sorted.len() as u64;
        self.nodes[source.as_usize()].pending.push_back(PendingRequest {
            request,
            spec: MessageSpec::new(source, final_dest, data_flits).at(inject_at),
            taps,
            requested_at: inject_at,
            refusals: 0,
            not_before: inject_at,
        });
        Ok(request)
    }

    /// Submits a batch of messages; returns their request ids.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid specification, leaving earlier ones
    /// submitted.
    pub fn submit_all<I>(&mut self, specs: I) -> Result<Vec<RequestId>, ProtocolError>
    where
        I: IntoIterator<Item = MessageSpec>,
    {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Advances the simulation by one tick.
    pub fn tick(&mut self) {
        self.progress_streams_and_teardowns();
        self.decide_at_destinations();
        self.extend_heads();
        self.inject_pending();
        self.run_compaction();
        self.finish_tick();
    }

    /// Advances the simulation by `n` ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Runs until quiescence, stall, or `max_ticks`, and reports.
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> RunReport {
        // A parked header only makes progress again after `head_timeout`
        // ticks (its refusal is the progress event), so the stall window
        // must comfortably exceed it.
        let stall_window = 4 * self.cfg.nodes().get() as u64
            + 8 * self.cfg.node.retry_backoff
            + 3 * self.cfg.head_timeout.unwrap_or(0)
            + self
                .buses
                .values()
                .map(|b| b.spec.data_flits as u64)
                .max()
                .unwrap_or(0)
            + 64;
        let mut stalled = false;
        while self.now.get() < max_ticks {
            if self.is_quiescent() {
                break;
            }
            self.tick();
            if !self.has_due_work() {
                // Only future-scheduled injections / backoffs remain; the
                // clock itself is the progress.
                self.last_progress = self.now.get();
            }
            if self.now.get().saturating_sub(self.last_progress) > stall_window {
                stalled = true;
                break;
            }
        }
        self.report_with(stalled)
    }

    /// Builds a report of everything observed so far.
    pub fn report(&self) -> RunReport {
        self.report_with(false)
    }

    /// The messages delivered so far, in completion order, without
    /// cloning (grows monotonically as the simulation advances).
    pub fn delivered_log(&self) -> &[DeliveredMessage] {
        &self.delivered
    }

    fn report_with(&self, stalled: bool) -> RunReport {
        RunReport {
            ticks: self.now.get(),
            delivered: self.delivered.clone(),
            refusals: self.refusals,
            compaction_moves: self.compaction_moves,
            mean_utilization: self.utilization.mean(),
            peak_virtual_buses: self.peak_virtual_buses,
            undelivered: self.submitted as usize - self.delivered.len(),
            stalled,
        }
    }

    /// Validates all structural invariants; see [`crate::invariants`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_network(self)
    }

    // ------------------------------------------------------------------
    // Internal: tick phases.
    // ------------------------------------------------------------------

    fn progress_streams_and_teardowns(&mut self) {
        let ring = self.ring();
        let now = self.now.get();
        let window = match self.cfg.ack_mode {
            AckMode::PerFlit => 1,
            AckMode::Windowed { window } => window.max(1),
            AckMode::Unlimited => u32::MAX,
        };
        let ids: Vec<VirtualBusId> = self.buses.keys().copied().collect();
        for id in ids {
            // Work on the bus by value to satisfy the borrow checker; it is
            // re-inserted (or dropped) below.
            let mut bus = match self.buses.remove(&id) {
                Some(b) => b,
                None => continue,
            };
            let span = bus.heights.len() as u64;
            let mut remove = false;
            let mut progressed = false;
            let mut start_streaming = false;
            let mut completed_circuit_at = None;
            match &mut bus.state {
                BusState::Establishing
                | BusState::TearingDown { .. }
                | BusState::Nacked { .. } => {}
                BusState::AwaitingHack { hops_left } => {
                    *hops_left -= 1;
                    start_streaming = *hops_left == 0;
                }
                BusState::Streaming(s) => {
                    // Deliveries (L ticks after send) and Dacks (2L ticks).
                    while s
                        .awaiting_delivery
                        .front()
                        .is_some_and(|&t| now >= t + span)
                    {
                        s.awaiting_delivery.pop_front();
                        s.delivered += 1;
                        progressed = true;
                    }
                    while s.awaiting_ack.front().is_some_and(|&t| now >= t + 2 * span) {
                        s.awaiting_ack.pop_front();
                    }
                    if let Some(ff_at) = s.ff_sent_at {
                        if now >= ff_at + span {
                            // Final flit arrived: the message is delivered.
                            completed_circuit_at = Some(s.circuit_at);
                        }
                    } else if s.next_seq < bus.spec.data_flits {
                        if (s.awaiting_ack.len() as u32) < window {
                            s.awaiting_ack.push_back(now);
                            s.awaiting_delivery.push_back(now);
                            s.next_seq += 1;
                            progressed = true;
                        }
                    } else {
                        s.ff_sent_at = Some(now);
                        progressed = true;
                    }
                }
            }
            if start_streaming {
                bus.state = BusState::Streaming(StreamState {
                    circuit_at: now,
                    ..StreamState::default()
                });
                progressed = true;
            }
            if let Some(circuit_at) = completed_circuit_at {
                self.delivered.push(DeliveredMessage {
                    request: bus.request,
                    spec: bus.spec,
                    requested_at: bus.requested_at,
                    circuit_at,
                    delivered_at: now,
                    refusals: bus.refusals,
                });
                self.nodes[bus.spec.destination.as_usize()].receives_active -= 1;
                // Multicast taps saw the final flit as it flowed past,
                // span - dist hops before it reached the far end.
                for tap in &bus.taps {
                    let dist = u64::from(ring.clockwise_distance(bus.spec.source, *tap));
                    self.delivered.push(DeliveredMessage {
                        request: bus.request,
                        spec: MessageSpec::new(bus.spec.source, *tap, bus.spec.data_flits)
                            .at(bus.spec.inject_at),
                        requested_at: bus.requested_at,
                        circuit_at,
                        delivered_at: now - (span - dist),
                        refusals: bus.refusals,
                    });
                    self.nodes[tap.as_usize()].receives_active -= 1;
                }
                bus.state = BusState::TearingDown { freed: 0 };
                self.trace(
                    TraceKind::Deliver,
                    bus.id,
                    bus.spec.destination,
                    None,
                    "final flit arrived",
                );
                progressed = true;
            }
            let teardown_freed = match bus.state {
                BusState::TearingDown { freed } | BusState::Nacked { freed } => Some(freed),
                _ => None,
            };
            if let Some(freed) = teardown_freed {
                if completed_circuit_at.is_none() {
                    // The Fack / Nack crosses one INC per tick, freeing the
                    // tail hop as it passes. (A bus that completed this very
                    // tick starts freeing next tick.)
                    let idx = bus.heights.len() - 1 - freed;
                    let hop = bus.hop_upstream_node(ring, idx).as_usize();
                    let height = bus.heights[idx];
                    self.release(hop, height);
                    let new_freed = freed + 1;
                    match &mut bus.state {
                        BusState::TearingDown { freed } | BusState::Nacked { freed } => {
                            *freed = new_freed;
                        }
                        _ => unreachable!("teardown state checked above"),
                    }
                    progressed = true;
                    remove = new_freed == bus.heights.len();
                }
            }
            if progressed {
                self.last_progress = now;
            }
            if remove {
                let nacked = matches!(bus.state, BusState::Nacked { .. });
                self.nodes[bus.spec.source.as_usize()].sends_active -= 1;
                if nacked {
                    // Release any multicast taps that were already armed.
                    for tap in &bus.taps[..bus.armed_taps] {
                        self.nodes[tap.as_usize()].receives_active -= 1;
                    }
                    // Re-queue the refused request with linear backoff.
                    let refusals = bus.refusals + 1;
                    let backoff = self.cfg.node.retry_backoff * refusals as u64;
                    self.nodes[bus.spec.source.as_usize()]
                        .pending
                        .push_back(PendingRequest {
                            request: bus.request,
                            spec: bus.spec,
                            taps: bus.taps.clone(),
                            requested_at: bus.requested_at,
                            refusals,
                            not_before: now + backoff,
                        });
                } else {
                    self.trace(
                        TraceKind::Teardown,
                        bus.id,
                        bus.spec.source,
                        None,
                        "virtual bus removed",
                    );
                }
            } else {
                self.buses.insert(id, bus);
            }
        }
    }

    fn decide_at_destinations(&mut self) {
        let ring = self.ring();
        let now = self.now.get();
        let ids: Vec<VirtualBusId> = self.buses.keys().copied().collect();
        for id in ids {
            let (dst, span, head);
            {
                let bus = &self.buses[&id];
                if !matches!(bus.state, BusState::Establishing) {
                    continue;
                }
                dst = bus.spec.destination;
                span = bus.heights.len() as u32;
                head = bus.head_node(ring);
            }
            // Multicast: the header is parked at the next unarmed tap —
            // take that node's receive port (arming the tap) or refuse the
            // whole circuit.
            let next_tap = {
                let bus = &self.buses[&id];
                bus.taps.get(bus.armed_taps).copied()
            };
            if Some(head) == next_tap {
                if self.nodes[head.as_usize()].receives_active
                    < self.cfg.node.max_concurrent_receives
                {
                    self.nodes[head.as_usize()].receives_active += 1;
                    let bus = self.buses.get_mut(&id).expect("bus is live");
                    bus.armed_taps += 1;
                    bus.parked_since = now;
                    self.trace(TraceKind::Accept, id, head, None, "multicast tap armed");
                } else {
                    let bus = self.buses.get_mut(&id).expect("bus is live");
                    bus.state = BusState::Nacked { freed: 0 };
                    self.refusals += 1;
                    self.trace(TraceKind::Refuse, id, head, None, "multicast tap busy");
                }
                self.last_progress = now;
                continue;
            }
            if head != dst {
                if let Some(limit) = self.cfg.head_timeout {
                    let parked = now.saturating_sub(self.buses[&id].parked_since);
                    if parked > limit {
                        let bus = self.buses.get_mut(&id).expect("bus is live");
                        bus.state = BusState::Nacked { freed: 0 };
                        self.refusals += 1;
                        self.trace(
                            TraceKind::Refuse,
                            id,
                            head,
                            None,
                            "header timed out at intermediate INC",
                        );
                        self.last_progress = now;
                    }
                }
                continue;
            }
            let accept = self.nodes[dst.as_usize()].receives_active
                < self.cfg.node.max_concurrent_receives;
            let bus = self.buses.get_mut(&id).expect("bus is live");
            if accept {
                bus.state = BusState::AwaitingHack { hops_left: span };
                self.nodes[dst.as_usize()].receives_active += 1;
                self.trace(TraceKind::Accept, id, dst, None, "destination accepted");
            } else {
                bus.state = BusState::Nacked { freed: 0 };
                self.refusals += 1;
                self.trace(TraceKind::Refuse, id, dst, None, "destination busy");
            }
            self.last_progress = now;
        }
    }

    fn extend_heads(&mut self) {
        let ring = self.ring();
        let now = self.now.get();
        let top = self.cfg.top_bus();
        let ids: Vec<VirtualBusId> = self.buses.keys().copied().collect();
        for id in ids {
            let (head, last_height, injected_at);
            {
                let bus = &self.buses[&id];
                if !matches!(bus.state, BusState::Establishing) {
                    continue;
                }
                head = bus.head_node(ring);
                if head == bus.spec.destination {
                    continue;
                }
                // A multicast header dwells at each tap until the tap has
                // taken its receive port (the decision phase arms it).
                if bus.taps.get(bus.armed_taps) == Some(&head) {
                    continue;
                }
                last_height = *bus.heights.last().expect("established hops");
                injected_at = bus.injected_at;
            }
            if injected_at == now {
                // Injected this very tick; the HF advances from next tick.
                continue;
            }
            let hop = head.as_usize();
            let chosen = match self.cfg.insertion {
                InsertionPolicy::TopBusOnly => {
                    // Header flits travel on the top lane only (§2.3).
                    (self.segments[hop][top.as_usize()].is_none()).then_some(top)
                }
                InsertionPolicy::AnyFreeBus => self.free_within_reach(hop, last_height),
            };
            if let Some(height) = chosen {
                debug_assert!(
                    last_height.is_adjacent_or_equal(height),
                    "extension out of the INC switching range"
                );
                self.occupy(hop, height, id);
                let bus = self.buses.get_mut(&id).expect("bus is live");
                bus.heights.push(height);
                bus.parked_since = now;
                self.trace(
                    TraceKind::Extend,
                    id,
                    head,
                    Some(height),
                    "header advanced one hop",
                );
                self.last_progress = now;
            }
        }
    }

    /// For the `AnyFreeBus` ablation: the first free segment on `hop`
    /// within switching reach of `from`, preferring straight, then down,
    /// then up.
    fn free_within_reach(&self, hop: usize, from: BusIndex) -> Option<BusIndex> {
        let k = self.cfg.buses();
        let mut candidates = vec![from];
        if let Some(lower) = from.lower() {
            candidates.push(lower);
        }
        if from.index() + 1 < k {
            candidates.push(from.upper());
        }
        candidates
            .into_iter()
            .find(|c| self.segments[hop][c.as_usize()].is_none())
    }

    fn inject_pending(&mut self) {
        let ring = self.ring();
        let now = self.now.get();
        let n = ring.as_usize();
        let top = self.cfg.top_bus();
        // Rotate the scan start so low-numbered nodes get no static edge.
        let start = (now % n as u64) as usize;
        for off in 0..n {
            let s = (start + off) % n;
            let node = &self.nodes[s];
            if node.sends_active >= self.cfg.node.max_concurrent_sends {
                continue;
            }
            let Some(front) = node.pending.front() else {
                continue;
            };
            if front.not_before > now {
                continue;
            }
            let height = match self.cfg.insertion {
                InsertionPolicy::TopBusOnly => {
                    // A request may only be initiated when the top segment
                    // at this INC is not serving another request (§2.2).
                    (self.segments[s][top.as_usize()].is_none()).then_some(top)
                }
                InsertionPolicy::AnyFreeBus => {
                    // Highest free segment on the source hop.
                    (0..self.cfg.buses())
                        .rev()
                        .map(BusIndex::new)
                        .find(|b| self.segments[s][b.as_usize()].is_none())
                }
            };
            let Some(height) = height else {
                continue; // HF stays buffered at the node (§2.3).
            };
            let pending = self.nodes[s].pending.pop_front().expect("front exists");
            let id = VirtualBusId::new(self.next_bus);
            self.next_bus += 1;
            self.occupy(s, height, id);
            self.nodes[s].sends_active += 1;
            let bus = VirtualBus {
                id,
                request: pending.request,
                spec: pending.spec,
                requested_at: pending.requested_at,
                injected_at: now,
                refusals: pending.refusals,
                heights: vec![height],
                parked_since: now,
                taps: pending.taps,
                armed_taps: 0,
                state: BusState::Establishing,
            };
            self.trace(
                TraceKind::Inject,
                id,
                pending.spec.source,
                Some(height),
                "HF inserted",
            );
            self.buses.insert(id, bus);
            self.last_progress = now;
        }
    }

    fn run_compaction(&mut self) {
        if !self.cfg.compaction {
            return;
        }
        match self.mode.clone() {
            CompactionMode::Synchronous => {
                let phase = Phase::of_tick(self.now.get());
                // Decide against the phase-start snapshot, then apply: the
                // odd/even assessment rule guarantees the decided moves are
                // mutually compatible (see compaction::tests).
                let moves = self.collect_moves(phase, None);
                for (id, j, from, to, hop) in moves {
                    self.apply_move(id, j, from, to, hop);
                }
            }
            CompactionMode::Handshake { periods } => {
                let now = self.now.get();
                let n = self.cfg.nodes().as_usize();
                // `i` is simultaneously a period index, a ring position
                // and a controller index; a plain range reads best here.
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    if !now.is_multiple_of(periods[i]) {
                        continue;
                    }
                    let cycles = self.cycles.as_mut().expect("handshake ring exists");
                    let may_switch = cycles.controller(i).may_switch_datapath();
                    let done = cycles.controller(i).internal_done();
                    let phase = cycles.controller(i).phase();
                    if may_switch && !done {
                        // Perform this INC's datapath switches for its
                        // local phase, then raise ID.
                        let moves = self.collect_moves(phase, Some(NodeId::new(i as u32)));
                        for (id, j, from, to, hop) in moves {
                            self.apply_move(id, j, from, to, hop);
                        }
                        let cycles = self.cycles.as_mut().expect("handshake ring exists");
                        cycles.set_internal_done(i, true);
                    }
                    let cycles = self.cycles.as_mut().expect("handshake ring exists");
                    let step = cycles.activate(i);
                    if step == crate::cycle::CycleStep::CycleSwitched {
                        if let Some(rec) = &mut self.recorder {
                            rec.record(TraceEvent {
                                at: self.now,
                                kind: TraceKind::CycleSwitch,
                                id: None,
                                node: Some(i as u32),
                                bus: None,
                                detail: format!(
                                    "phase now {}",
                                    self.cycles.as_ref().unwrap().controller(i).phase()
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Collects the eligible moves for `phase`, optionally restricted to
    /// hops whose upstream INC is `only_node`.
    #[allow(clippy::type_complexity)]
    fn collect_moves(
        &self,
        phase: Phase,
        only_node: Option<NodeId>,
    ) -> Vec<(VirtualBusId, usize, BusIndex, BusIndex, usize)> {
        let ring = self.ring();
        let mut moves = Vec::new();
        for (id, bus) in &self.buses {
            if !bus.state.compactable() {
                continue;
            }
            if bus.state.pre_hack() && !self.cfg.early_compaction {
                continue;
            }
            for j in 0..bus.heights.len() {
                let node = bus.hop_upstream_node(ring, j);
                if let Some(only) = only_node {
                    if node != only {
                        continue;
                    }
                }
                let height = bus.heights[j];
                if !assessed_in_phase(node, height, phase) {
                    continue;
                }
                let ctx = self.hop_context(bus, j);
                if ctx.switchable_down().is_some() {
                    let to = height.lower().expect("switchable implies not bottom");
                    moves.push((*id, j, height, to, node.as_usize()));
                }
            }
        }
        moves
    }

    /// The compaction context of hop `j` of `bus`.
    fn hop_context(&self, bus: &VirtualBus, j: usize) -> HopContext {
        let ring = self.ring();
        let height = bus.heights[j];
        let upstream = if j == 0 {
            EndpointHeight::Pe
        } else {
            EndpointHeight::At(bus.heights[j - 1])
        };
        let last = bus.heights.len() - 1;
        let downstream = if j == last {
            match bus.state {
                // INCs monitor only the top segment for header flits, so
                // the hop feeding a parked head must stay at the top.
                BusState::Establishing if bus.head_node(ring) != bus.spec.destination => {
                    EndpointHeight::ParkedHead
                }
                // Head parked at the destination awaiting the decision, or
                // already accepted: the PE interface reads any port.
                _ => EndpointHeight::Pe,
            }
        } else {
            EndpointHeight::At(bus.heights[j + 1])
        };
        let hop = bus.hop_upstream_node(ring, j).as_usize();
        let below_free = height
            .lower()
            .map(|lo| self.segments[hop][lo.as_usize()].is_none())
            .unwrap_or(false);
        HopContext {
            height,
            top: self.cfg.top_bus(),
            upstream,
            downstream,
            below_free,
        }
    }

    fn apply_move(&mut self, id: VirtualBusId, j: usize, from: BusIndex, to: BusIndex, hop: usize) {
        debug_assert_eq!(self.segments[hop][from.as_usize()], Some(id));
        debug_assert!(self.segments[hop][to.as_usize()].is_none());
        self.release(hop, from);
        self.occupy(hop, to, id);
        let bus = self.buses.get_mut(&id).expect("moving a live bus");
        bus.heights[j] = to;
        self.compaction_moves += 1;
        self.last_progress = self.now.get();
        if self.recorder.is_some() {
            let detail = format!("hop {j} moved {from} -> {to}");
            self.trace(
                TraceKind::CompactMove,
                id,
                NodeId::new(hop as u32),
                Some(to),
                &detail,
            );
        }
    }

    fn finish_tick(&mut self) {
        self.utilization.record(self.utilization());
        self.peak_virtual_buses = self.peak_virtual_buses.max(self.buses.len());
        self.now = self.now.next();
        if self.checked {
            if let Err(v) = self.check_invariants() {
                panic!("invariant violated at {}: {v}", self.now);
            }
            // Downward-only motion (§2.2): a hop's height never increases
            // while its virtual bus lives; extension only appends.
            let mut next = std::collections::HashMap::with_capacity(self.buses.len());
            for bus in self.buses.values() {
                let heights: Vec<u16> = bus.heights.iter().map(|h| h.index()).collect();
                if let Some(prev) = self.height_history.get(&bus.id.get()) {
                    assert!(prev.len() <= heights.len(), "hops never detach from the front");
                    for (j, (&p, &c)) in prev.iter().zip(&heights).enumerate() {
                        assert!(
                            c <= p,
                            "bus {} hop {j} moved up: {p} -> {c} at {}",
                            bus.id,
                            self.now
                        );
                    }
                }
                next.insert(bus.id.get(), heights);
            }
            self.height_history = next;
        }
    }

    fn occupy(&mut self, hop: usize, bus: BusIndex, id: VirtualBusId) {
        let slot = &mut self.segments[hop][bus.as_usize()];
        debug_assert!(slot.is_none(), "segment double-booked");
        *slot = Some(id);
        self.busy_segments += 1;
    }

    fn release(&mut self, hop: usize, bus: BusIndex) {
        let slot = &mut self.segments[hop][bus.as_usize()];
        debug_assert!(slot.is_some(), "releasing a free segment");
        *slot = None;
        self.busy_segments -= 1;
    }

    fn trace(
        &mut self,
        kind: TraceKind,
        id: VirtualBusId,
        node: NodeId,
        height: Option<BusIndex>,
        detail: &str,
    ) {
        if let Some(rec) = &mut self.recorder {
            rec.record(TraceEvent {
                at: self.now,
                kind,
                id: Some(id.get()),
                node: Some(node.index()),
                bus: height.map(|b| b.index()),
                detail: detail.to_owned(),
            });
        }
    }

    /// Internal accessor for the invariant checker and renderers.
    pub(crate) fn segments_raw(&self) -> &[Vec<Option<VirtualBusId>>] {
        &self.segments
    }

    /// Internal accessor for the invariant checker and renderers.
    pub(crate) fn buses_raw(&self) -> &BTreeMap<VirtualBusId, VirtualBus> {
        &self.buses
    }

    /// Transition counts of the handshake cycle controllers, if running in
    /// handshake mode (for Lemma 1 measurements).
    pub fn cycle_transitions(&self) -> Option<Vec<u64>> {
        self.cycles.as_ref().map(|ring| {
            (0..ring.len())
                .map(|i| ring.controller(i).transitions())
                .collect()
        })
    }

    /// Largest difference in completed cycle transitions between
    /// neighbouring INCs (Lemma 1 bound), if in handshake mode.
    pub fn max_cycle_skew(&self) -> Option<u64> {
        self.cycles.as_ref().map(|r| r.max_neighbour_skew())
    }
}
