//! Bit-parallel occupancy view of the physical segment array.
//!
//! The network's authoritative record of which segment belongs to which
//! circuit is the `segments` owner table (one `Option<VirtualBusId>` per
//! `hop × bus`). This module maintains a packed mirror of the *boolean*
//! facts the hot path asks about, one bit per segment per bus layer:
//!
//! * occupied lane of bus `b` — bit `hop` set ⟺ `segments[hop·k + b]` is `Some`,
//! * faulted lane of bus `b`  — bit `hop` set ⟺ `fault_count[hop·k + b] > 0`,
//! * full-hops lane — bit `hop` set ⟺ the hop has no usable free segment
//!   (`free_per_hop[hop] == 0`).
//!
//! With these, clockwise path feasibility over a span is one wrap-aware
//! masked-range test on the full-hops lane (see [`rmb_sim::arc_any`])
//! instead of a per-hop slab walk, and segment availability is two bit
//! probes. All `2k + 1` lanes live in a single contiguous word array —
//! one allocation per network, with each bus's occupied and faulted lanes
//! adjacent so the paired probe in [`Occupancy::blocked`] stays on one
//! cache line for rings up to 64 hops. The bitmaps are updated in lockstep
//! at every owner-table transition (occupy / release / fault / repair);
//! invariant #6 ([`Occupancy::verify`]) rebuilds them from scratch in
//! checked runs and demands equality.

use rmb_sim::arc_any;
use rmb_types::VirtualBusId;

/// Packed occupancy bitmaps, kept in lockstep with the segment owner
/// table. See the module docs for the exact bit semantics and layout.
#[derive(Debug, Clone)]
pub(crate) struct Occupancy {
    /// All lanes, contiguous: for bus `b`, occupied words start at
    /// `2b · wpr` and faulted words at `(2b + 1) · wpr`; the full-hops
    /// lane starts at `2k · wpr`.
    words: Vec<u64>,
    /// Ring length (hops).
    n: usize,
    /// Words per lane: `n.div_ceil(64)`.
    wpr: usize,
    /// Word offset of the full-hops lane (`2k · wpr`).
    full_off: usize,
}

impl Occupancy {
    /// All-free occupancy for a ring of `n` hops with `k` bus layers.
    pub(crate) fn new(n: usize, k: usize) -> Self {
        let wpr = n.div_ceil(64);
        Occupancy {
            words: vec![0; (2 * k + 1) * wpr],
            n,
            wpr,
            full_off: 2 * k * wpr,
        }
    }

    /// Word index and bit mask addressing `hop` within the lane at `off`.
    #[inline]
    fn bit(&self, off: usize, hop: usize) -> (usize, u64) {
        debug_assert!(hop < self.n, "hop {hop} out of range 0..{}", self.n);
        (off + hop / 64, 1u64 << (hop % 64))
    }

    #[inline]
    fn write(&mut self, off: usize, hop: usize, value: bool) {
        let (w, m) = self.bit(off, hop);
        if value {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Records that segment `(hop, bus)` gained or lost an owner.
    #[inline]
    pub(crate) fn assign_occupied(&mut self, hop: usize, bus: usize, owned: bool) {
        self.write(2 * bus * self.wpr, hop, owned);
    }

    /// Records that segment `(hop, bus)` crossed into or out of the
    /// faulted set (fault_count 0 → 1 or 1 → 0).
    #[inline]
    pub(crate) fn assign_faulted(&mut self, hop: usize, bus: usize, faulted: bool) {
        self.write((2 * bus + 1) * self.wpr, hop, faulted);
    }

    /// Moves the owner bit of `hop` from bus `from`'s occupied lane to
    /// bus `to`'s in one fused update — the bitmap form of a same-hop
    /// compaction move, which leaves the full-hops lane untouched.
    #[inline]
    pub(crate) fn move_occupied(&mut self, hop: usize, from: usize, to: usize) {
        let (w, m) = self.bit(0, hop);
        self.words[2 * from * self.wpr + w] &= !m;
        self.words[2 * to * self.wpr + w] |= m;
    }

    /// Records whether hop `hop` currently has zero free segments.
    #[inline]
    pub(crate) fn assign_full(&mut self, hop: usize, full: bool) {
        self.write(self.full_off, hop, full);
    }

    /// `true` if segment `(hop, bus)` is owned or faulted — the bitmap
    /// form of "not available".
    #[inline]
    pub(crate) fn blocked(&self, hop: usize, bus: usize) -> bool {
        let (w, m) = self.bit(2 * bus * self.wpr, hop);
        (self.words[w] | self.words[w + self.wpr]) & m != 0
    }

    /// `true` if every hop of the clockwise arc `[start, start + span)`
    /// still has a free segment — the bitmap form of path feasibility.
    #[inline]
    pub(crate) fn span_feasible(&self, start: usize, span: usize) -> bool {
        !arc_any(&self.words[self.full_off..], self.n, start, span)
    }

    /// The bit at `hop` of the lane starting at word `off`.
    #[inline]
    fn get(&self, off: usize, hop: usize) -> bool {
        let (w, m) = self.bit(off, hop);
        self.words[w] & m != 0
    }

    /// Rebuilds the expected bitmaps from the authoritative tables and
    /// reports the first divergence (invariant #6: bitmap lockstep).
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-lockstep bit.
    pub(crate) fn verify(
        &self,
        segments: &[Option<VirtualBusId>],
        fault_count: &[u8],
        free_per_hop: &[u16],
        k: usize,
    ) -> Result<(), String> {
        for (hop, &free) in free_per_hop.iter().enumerate() {
            for bus in 0..k {
                let i = hop * k + bus;
                if self.get(2 * bus * self.wpr, hop) != segments[i].is_some() {
                    return Err(format!(
                        "occupied bit out of lockstep at (hop {hop}, bus {bus}): \
                         bitmap says {}, owner table says {:?}",
                        self.get(2 * bus * self.wpr, hop),
                        segments[i]
                    ));
                }
                if self.get((2 * bus + 1) * self.wpr, hop) != (fault_count[i] > 0) {
                    return Err(format!(
                        "faulted bit out of lockstep at (hop {hop}, bus {bus}): \
                         bitmap says {}, fault count is {}",
                        self.get((2 * bus + 1) * self.wpr, hop),
                        fault_count[i]
                    ));
                }
            }
            if self.get(self.full_off, hop) != (free == 0) {
                return Err(format!(
                    "full-hop bit out of lockstep at hop {hop}: bitmap says {}, \
                     free count is {}",
                    self.get(self.full_off, hop),
                    free
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_tracks_both_bitmaps() {
        let mut occ = Occupancy::new(8, 2);
        assert!(!occ.blocked(3, 1));
        occ.assign_occupied(3, 1, true);
        assert!(occ.blocked(3, 1));
        assert!(!occ.blocked(3, 0));
        occ.assign_occupied(3, 1, false);
        occ.assign_faulted(3, 1, true);
        assert!(occ.blocked(3, 1));
        occ.assign_faulted(3, 1, false);
        assert!(!occ.blocked(3, 1));
    }

    #[test]
    fn span_feasibility_wraps_the_cut() {
        let mut occ = Occupancy::new(8, 2);
        assert!(occ.span_feasible(6, 4));
        occ.assign_full(1, true);
        assert!(!occ.span_feasible(6, 4), "arc 6,7,0,1 hits the full hop");
        assert!(occ.span_feasible(6, 3), "arc 6,7,0 stops short of it");
        assert!(occ.span_feasible(2, 7));
        occ.assign_full(1, false);
        assert!(occ.span_feasible(6, 4));
    }

    #[test]
    fn lanes_stay_independent_past_one_word() {
        // 130 hops → 3 words per lane; probe bits either side of the
        // word boundaries in distinct lanes of a 3-bus ring.
        let mut occ = Occupancy::new(130, 3);
        occ.assign_occupied(63, 0, true);
        occ.assign_occupied(64, 2, true);
        occ.assign_faulted(129, 1, true);
        assert!(occ.blocked(63, 0) && !occ.blocked(64, 0));
        assert!(occ.blocked(64, 2) && !occ.blocked(63, 2));
        assert!(occ.blocked(129, 1) && !occ.blocked(128, 1));
        assert!(occ.span_feasible(120, 130), "full lane untouched");
        occ.assign_full(129, true);
        assert!(!occ.span_feasible(120, 30), "wrapping arc sees hop 129");
    }

    #[test]
    fn verify_accepts_lockstep_state() {
        let (n, k) = (4, 2);
        let mut occ = Occupancy::new(n, k);
        let mut segments: Vec<Option<VirtualBusId>> = vec![None; n * k];
        let mut fault_count = vec![0u8; n * k];
        let mut free = vec![k as u16; n];
        // Occupy (2, 1), fault (0, 0).
        segments[2 * k + 1] = Some(VirtualBusId::new(9));
        occ.assign_occupied(2, 1, true);
        free[2] -= 1;
        fault_count[0] = 1;
        occ.assign_faulted(0, 0, true);
        free[0] -= 1;
        assert_eq!(occ.verify(&segments, &fault_count, &free, k), Ok(()));
    }

    #[test]
    fn verify_catches_a_stale_bit() {
        let (n, k) = (4, 2);
        let occ = Occupancy::new(n, k);
        let mut segments: Vec<Option<VirtualBusId>> = vec![None; n * k];
        segments[5] = Some(VirtualBusId::new(1)); // owner table moved, bitmap didn't
        let fault_count = vec![0u8; n * k];
        let free = vec![k as u16; n];
        let err = occ.verify(&segments, &fault_count, &free, k).unwrap_err();
        assert!(err.contains("occupied bit out of lockstep"), "{err}");
    }
}
