//! Simulation options and the network builder.
//!
//! The simulator is configured through a typed builder consumed at
//! construction; options are immutable once the network is running (the
//! pre-0.2.0 post-construction setters are gone):
//!
//! ```
//! use rmb_core::RmbNetwork;
//! use rmb_types::RmbConfig;
//!
//! let cfg = RmbConfig::new(8, 2)?;
//! let net = RmbNetwork::builder(cfg).checked(true).recording(true).build();
//! assert!(net.is_quiescent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`SimOptions`] is the one internal options struct everything delegates
//! to: the builder fills it and the network reads it.

use crate::network::{CompactionMode, RmbNetwork};
use rmb_types::{FaultPlan, RmbConfig};

/// Which per-tick execution engine drives the network.
///
/// Both engines implement the same protocol and produce byte-identical
/// results — same delivered log, same traces, same [`RunReport`] — so
/// [`DenseSweep`](SchedulerMode::DenseSweep) serves as the cross-check
/// oracle for the default event-driven engine (see the scheduler
/// equivalence suite).
///
/// [`RunReport`]: crate::RunReport
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Event-driven active set: per-tick cost scales with the circuits
    /// that actually have due work (flit/ack motion, compaction moves,
    /// due injections or faults), not with N×k. The default.
    #[default]
    EventDriven,
    /// The classic dense sweep: every tick scans all N INCs and every
    /// live bus. Kept as the reference oracle and for perf comparison.
    DenseSweep,
}

/// How the hot path answers "is this segment usable / is this span
/// clear?" queries.
///
/// Both answers come from the same protocol state and are always
/// identical; the slab walk is retained as the cross-check oracle for the
/// bit-parallel default, mirroring how [`SchedulerMode::DenseSweep`]
/// backs the event-driven engine (see the feasibility oracle suite and
/// invariant #6, which keeps the bitmaps in lockstep with the owner
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeasibilityMode {
    /// Packed per-bus occupancy bitmaps: clockwise path feasibility is a
    /// wrap-aware masked-range test, availability two bit probes. The
    /// default.
    #[default]
    Bitmap,
    /// The classic per-hop walk over `free_per_hop` and the segment owner
    /// table. Kept as the reference oracle and for perf comparison.
    SlabWalk,
}

/// How long the per-message delivered/aborted logs are retained.
///
/// Closed-loop experiments read every record after the run, so they keep
/// [`Full`](LogRetention::Full) logs (the default, and the pre-0.3
/// behaviour). Open-loop serving runs for millions-to-billions of ticks
/// and must hold memory flat: a polling driver keeps a bounded
/// [`Window`](LogRetention::Window), and a pure counter soak keeps
/// [`CountersOnly`](LogRetention::CountersOnly).
///
/// Dropping a record never loses its *statistics* — every aggregate in
/// [`RunReport`] (delivered/aborted counts, latency sums, makespan) is
/// maintained at recording time — and it never loses it *silently*:
/// cursors passed to [`RmbNetwork::delivered_since`] /
/// [`RmbNetwork::aborted_since`] are absolute sequence numbers, and a
/// cursor pointing below the retention window panics instead of
/// returning a truncated slice.
///
/// [`RunReport`]: crate::RunReport
/// [`RmbNetwork::delivered_since`]: crate::RmbNetwork::delivered_since
/// [`RmbNetwork::aborted_since`]: crate::RmbNetwork::aborted_since
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogRetention {
    /// Keep every record for the lifetime of the network. The default.
    #[default]
    Full,
    /// Keep at least the most recent `n` records per log (the
    /// implementation trims in batches, so up to `2n` may be resident).
    /// Pollers that drain at least every `n` records see everything.
    Window(usize),
    /// Keep no records at all; only the aggregate counters advance.
    /// `delivered_log()` / `aborted_log()` stay empty and any
    /// `*_since` cursor below the current total panics.
    CountersOnly,
}

/// Runtime options of a simulation, distinct from the physical
/// configuration in [`RmbConfig`]: everything here changes how the run is
/// *driven* (compaction engine, fault schedule, instrumentation), not what
/// the machine *is*.
///
/// Construct via [`Default`] and adjust fields, or — preferably — go
/// through [`RmbNetwork::builder`]. The struct is `#[non_exhaustive]`, so
/// options can grow without breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimOptions {
    /// Which compaction engine drives the odd/even cycles.
    pub compaction_mode: CompactionMode,
    /// Skip ahead over stretches of ticks with no due work (synchronous
    /// mode only). On by default.
    pub fast_forward: bool,
    /// Panic on the first invariant violation after every tick (for tests
    /// and small fidelity runs).
    pub checked: bool,
    /// Record protocol trace events from the first tick.
    pub recording: bool,
    /// Deterministic schedule of segment / link / INC failures. Empty by
    /// default (the happy path).
    pub fault_plan: FaultPlan,
    /// Seed of the stream that jitters fault-retry backoff. Only drawn
    /// when a circuit is actually fault-killed, so fault-free runs are
    /// unaffected by it.
    pub fault_seed: u64,
    /// Abort a request after this many refusals (`None` = retry forever,
    /// the classic protocol behaviour).
    pub max_retries: Option<u32>,
    /// Which per-tick execution engine to use. Event-driven by default;
    /// the dense sweep is the equivalence oracle.
    pub scheduler: SchedulerMode,
    /// How availability / path-feasibility queries are answered. Bitmap
    /// by default; the slab walk is the equivalence oracle.
    pub feasibility: FeasibilityMode,
    /// How long the delivered/aborted logs are retained. Full by
    /// default; windowed or counters-only for bounded-memory serving.
    pub log_retention: LogRetention,
    /// Maintain an online CKMS latency sketch (p50/p99/p999) at delivery
    /// time, readable through [`RmbNetwork::latency_quantile`]. Off by
    /// default; the open-loop soak harness turns it on so percentiles
    /// survive counters-only retention.
    ///
    /// [`RmbNetwork::latency_quantile`]: crate::RmbNetwork::latency_quantile
    pub latency_sketch: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            compaction_mode: CompactionMode::Synchronous,
            fast_forward: true,
            checked: false,
            recording: false,
            fault_plan: FaultPlan::new(),
            fault_seed: 0,
            max_retries: None,
            scheduler: SchedulerMode::EventDriven,
            feasibility: FeasibilityMode::Bitmap,
            log_retention: LogRetention::Full,
            latency_sketch: false,
        }
    }
}

/// Builds an [`RmbNetwork`] from a configuration plus [`SimOptions`].
///
/// Obtained from [`RmbNetwork::builder`]; every method takes and returns
/// `self` so options chain fluently.
#[derive(Debug, Clone)]
pub struct RmbNetworkBuilder {
    cfg: RmbConfig,
    opts: SimOptions,
}

impl RmbNetworkBuilder {
    pub(crate) fn new(cfg: RmbConfig) -> Self {
        RmbNetworkBuilder {
            cfg,
            opts: SimOptions::default(),
        }
    }

    /// Selects the compaction engine (synchronous lockstep or per-INC
    /// handshake controllers).
    #[must_use]
    pub fn compaction_mode(mut self, mode: CompactionMode) -> Self {
        self.opts.compaction_mode = mode;
        self
    }

    /// Enables or disables the idle-tick fast-forward (on by default).
    #[must_use]
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.opts.fast_forward = on;
        self
    }

    /// Enables per-tick invariant checking (panics on violation).
    #[must_use]
    pub fn checked(mut self, on: bool) -> Self {
        self.opts.checked = on;
        self
    }

    /// Starts recording protocol trace events from the first tick.
    #[must_use]
    pub fn recording(mut self, on: bool) -> Self {
        self.opts.recording = on;
        self
    }

    /// Installs a deterministic fault schedule.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.opts.fault_plan = plan;
        self
    }

    /// Seeds the fault-retry jitter stream.
    #[must_use]
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.opts.fault_seed = seed;
        self
    }

    /// Bounds retries: a request refused more than `limit` times is
    /// aborted (and counted in [`RunReport::aborted`]).
    ///
    /// [`RunReport::aborted`]: crate::RunReport::aborted
    #[must_use]
    pub fn max_retries(mut self, limit: u32) -> Self {
        self.opts.max_retries = Some(limit);
        self
    }

    /// Selects the per-tick execution engine (event-driven active set or
    /// the dense-sweep oracle).
    #[must_use]
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.opts.scheduler = mode;
        self
    }

    /// Selects the feasibility kernel (packed bitmaps or the slab-walk
    /// oracle).
    #[must_use]
    pub fn feasibility(mut self, mode: FeasibilityMode) -> Self {
        self.opts.feasibility = mode;
        self
    }

    /// Selects how long the delivered/aborted logs are retained (full,
    /// windowed, or counters-only). See [`LogRetention`].
    #[must_use]
    pub fn log_retention(mut self, policy: LogRetention) -> Self {
        self.opts.log_retention = policy;
        self
    }

    /// Maintains an online p50/p99/p999 latency sketch at delivery time
    /// (readable via [`RmbNetwork::latency_quantile`]), independent of
    /// log retention.
    #[must_use]
    pub fn latency_sketch(mut self, on: bool) -> Self {
        self.opts.latency_sketch = on;
        self
    }

    /// The options accumulated so far.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// Constructs the network.
    ///
    /// # Panics
    ///
    /// Panics if a handshake mode's `periods` length differs from `N` or
    /// contains a zero, or if the fault plan names nodes or buses outside
    /// the ring (see [`FaultPlan::validate`]).
    #[must_use]
    pub fn build(self) -> RmbNetwork {
        RmbNetwork::with_options(self.cfg, self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::{BusIndex, NodeId};

    #[test]
    fn defaults_match_the_classic_network() {
        let opts = SimOptions::default();
        assert_eq!(opts.compaction_mode, CompactionMode::Synchronous);
        assert!(opts.fast_forward);
        assert!(!opts.checked);
        assert!(!opts.recording);
        assert!(opts.fault_plan.is_empty());
        assert_eq!(opts.max_retries, None);
        assert_eq!(opts.scheduler, SchedulerMode::EventDriven);
        assert_eq!(opts.feasibility, FeasibilityMode::Bitmap);
        assert_eq!(opts.log_retention, LogRetention::Full);
        assert!(!opts.latency_sketch);
    }

    #[test]
    fn builder_chains_into_options() {
        let cfg = RmbConfig::new(8, 2).unwrap();
        let plan = FaultPlan::new().segment_stuck(5, NodeId::new(1), BusIndex::new(0), None);
        let b = RmbNetworkBuilder::new(cfg)
            .fast_forward(false)
            .checked(true)
            .recording(true)
            .fault_plan(plan.clone())
            .fault_seed(7)
            .max_retries(3)
            .scheduler(SchedulerMode::DenseSweep)
            .feasibility(FeasibilityMode::SlabWalk)
            .log_retention(LogRetention::Window(64))
            .latency_sketch(true);
        let o = b.options();
        assert_eq!(o.scheduler, SchedulerMode::DenseSweep);
        assert_eq!(o.feasibility, FeasibilityMode::SlabWalk);
        assert_eq!(o.log_retention, LogRetention::Window(64));
        assert!(o.latency_sketch);
        assert!(!o.fast_forward);
        assert!(o.checked);
        assert!(o.recording);
        assert_eq!(o.fault_plan, plan);
        assert_eq!(o.fault_seed, 7);
        assert_eq!(o.max_retries, Some(3));
        let net = b.build();
        assert!(net.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "one activation period per INC")]
    fn build_rejects_wrong_period_count() {
        let cfg = RmbConfig::new(8, 2).unwrap();
        let _ = RmbNetworkBuilder::new(cfg)
            .compaction_mode(CompactionMode::Handshake { periods: vec![1; 3] })
            .build();
    }

    #[test]
    #[should_panic(expected = "periods must be positive")]
    fn build_rejects_zero_periods() {
        let cfg = RmbConfig::new(4, 2).unwrap();
        let _ = RmbNetworkBuilder::new(cfg)
            .compaction_mode(CompactionMode::Handshake { periods: vec![1, 0, 1, 1] })
            .build();
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn build_rejects_out_of_range_fault_plan() {
        let cfg = RmbConfig::new(4, 2).unwrap();
        let plan = FaultPlan::new().inc_dead(0, NodeId::new(9), None);
        let _ = RmbNetworkBuilder::new(cfg).fault_plan(plan).build();
    }
}
