//! ASCII rendering of the bus array, used to regenerate the paper's
//! occupancy figures (Fig. 1–3, Fig. 5).

use crate::network::RmbNetwork;
use rmb_types::VirtualBusId;
use std::fmt::Write as _;

/// Renders the physical bus array as text: one row per bus segment (top
/// bus first, as in the paper's figures), one column per hop. Each cell
/// shows the occupying virtual bus as a letter (`A` = bus id 0, wrapping
/// after `Z`), or `.` when free.
///
/// # Examples
///
/// ```
/// use rmb_core::{render_occupancy, RmbNetwork};
/// use rmb_types::RmbConfig;
///
/// let net = RmbNetwork::new(RmbConfig::new(4, 2)?);
/// let art = render_occupancy(&net);
/// assert!(art.contains("b1 |"));
/// assert!(art.contains(". . . ."));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_occupancy(net: &RmbNetwork) -> String {
    let n = net.ring().as_usize();
    let k = net.config().buses() as usize;
    let mut out = String::new();
    for l in (0..k).rev() {
        let _ = write!(out, "b{l} |");
        for hop in 0..n {
            let cell = match net.segment_slot(hop, l) {
                Some(id) => bus_letter(id),
                None => '.',
            };
            let _ = write!(out, " {cell}");
        }
        out.push('\n');
    }
    let _ = write!(out, "    ");
    for hop in 0..n {
        let _ = write!(out, " {}", hop % 10);
    }
    out.push('\n');
    out
}

/// Stable display letter for a virtual bus id.
pub fn bus_letter(id: VirtualBusId) -> char {
    char::from(b'A' + (id.get() % 26) as u8)
}

/// Renders one line per live virtual bus: id, endpoints, state and the
/// height profile (the Fig. 2 "virtual bus" view).
pub fn render_virtual_buses(net: &RmbNetwork) -> String {
    let mut out = String::new();
    for (bus, state) in net.virtual_buses_with_state() {
        let profile: Vec<String> = bus
            .heights
            .iter()
            .take(bus.active_hops(state))
            .map(|h| h.index().to_string())
            .collect();
        let _ = writeln!(
            out,
            "{} ({}) {}->{} [{}] {}",
            bus_letter(bus.id),
            bus.id,
            bus.spec.source,
            bus.spec.destination,
            profile.join(","),
            state,
        );
    }
    out
}

/// Renders one INC's live Table 1 status registers plus PE attachments —
/// the register-level view a hardware debugger would show.
///
/// # Examples
///
/// ```
/// use rmb_core::{render_inc_status, RmbNetwork};
/// use rmb_types::{NodeId, RmbConfig};
///
/// let net = RmbNetwork::new(RmbConfig::new(6, 2)?);
/// let dump = render_inc_status(&net, NodeId::new(3));
/// assert!(dump.contains("out0: 000"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `node` is outside the ring.
pub fn render_inc_status(net: &RmbNetwork, node: rmb_types::NodeId) -> String {
    use std::fmt::Write as _;
    let view = crate::derive_inc(net, node);
    let mut out = String::new();
    let _ = writeln!(out, "INC {node} output-port status (Table 1 codes):");
    for (l, status) in view.outputs.iter().enumerate().rev() {
        let owner = view.output_owner[l]
            .map(|id| format!(" <- {}", bus_letter(id)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  out{l}: {status} ({}){owner}",
            status.interpretation()
        );
    }
    for (bus, id) in &view.pe_drives {
        let _ = writeln!(out, "  PE writes {bus} (circuit {})", bus_letter(*id));
    }
    for (bus, id) in &view.pe_reads {
        let _ = writeln!(out, "  PE reads  {bus} (circuit {})", bus_letter(*id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::{MessageSpec, NodeId, RmbConfig};

    #[test]
    fn empty_network_renders_dots() {
        let net = RmbNetwork::new(RmbConfig::new(3, 2).unwrap());
        let art = render_occupancy(&net);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // k rows + axis
        assert!(lines[0].starts_with("b1 |"));
        assert!(lines[1].starts_with("b0 |"));
        assert_eq!(lines[0].matches('.').count(), 3);
    }

    #[test]
    fn occupied_segments_show_bus_letters() {
        let mut net = RmbNetwork::new(RmbConfig::new(6, 2).unwrap());
        net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(3), 2))
            .unwrap();
        net.run(2);
        let art = render_occupancy(&net);
        assert!(art.contains('A'), "bus id 0 renders as A:\n{art}");
        let listing = render_virtual_buses(&net);
        assert!(listing.contains("n0->n3"));
    }

    #[test]
    fn inc_status_dump_shows_live_connection() {
        let mut net = RmbNetwork::new(RmbConfig::new(8, 2).unwrap());
        net.submit(MessageSpec::new(NodeId::new(1), NodeId::new(5), 100))
            .unwrap();
        net.run(10);
        // Node 3 forwards the circuit; its dump names a used port.
        let dump = render_inc_status(&net, NodeId::new(3));
        assert!(dump.contains("Port receives"), "{dump}");
        // The source PE drives its INC.
        let src = render_inc_status(&net, NodeId::new(1));
        assert!(src.contains("PE writes"), "{src}");
    }

    #[test]
    fn bus_letters_wrap() {
        assert_eq!(bus_letter(VirtualBusId::new(0)), 'A');
        assert_eq!(bus_letter(VirtualBusId::new(25)), 'Z');
        assert_eq!(bus_letter(VirtualBusId::new(26)), 'A');
    }
}
