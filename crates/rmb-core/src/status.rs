//! Output-port status registers (paper Table 1).
//!
//! Each INC maintains a 3-bit status register for the output port of each
//! physical bus segment (§2.4). The bits name which input port(s) currently
//! drive the output port, *relative to the output port's own index* `l`:
//!
//! | bit | weight | meaning                         |
//! |-----|--------|---------------------------------|
//! | 0   | 1      | receives from **below** (`l-1`) |
//! | 1   | 2      | receives **straight** (`l`)     |
//! | 2   | 4      | receives from **above** (`l+1`) |
//!
//! An output port may receive from more than one input only while the data
//! on both inputs is identical — exactly the situation created by the
//! make-before-break step of a downward move (§2.3, Fig. 4). That overlap
//! is always between two *adjacent* sources, which is why the two codes
//! combining "above" and "below" (5 = `101` and 7 = `111`) are marked *not
//! allowed* in Table 1.

use std::fmt;

/// The direction an output port receives from, relative to its own index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceDir {
    /// From input port `l - 1`.
    Below,
    /// From input port `l`.
    Straight,
    /// From input port `l + 1`.
    Above,
}

impl SourceDir {
    /// All three directions, bottom-up.
    pub const ALL: [SourceDir; 3] = [SourceDir::Below, SourceDir::Straight, SourceDir::Above];

    /// The bit weight of this direction in the status register.
    pub const fn bit(self) -> u8 {
        match self {
            SourceDir::Below => 0b001,
            SourceDir::Straight => 0b010,
            SourceDir::Above => 0b100,
        }
    }

    /// The input-port offset (`-1`, `0`, `+1`) this direction denotes.
    pub const fn offset(self) -> i32 {
        match self {
            SourceDir::Below => -1,
            SourceDir::Straight => 0,
            SourceDir::Above => 1,
        }
    }

    /// Maps an input-port offset to a direction, if it is within the INC's
    /// switching range.
    pub const fn from_offset(offset: i32) -> Option<SourceDir> {
        match offset {
            -1 => Some(SourceDir::Below),
            0 => Some(SourceDir::Straight),
            1 => Some(SourceDir::Above),
            _ => None,
        }
    }
}

impl fmt::Display for SourceDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceDir::Below => "below",
            SourceDir::Straight => "straight",
            SourceDir::Above => "above",
        };
        f.write_str(s)
    }
}

/// A 3-bit output-port status register (Table 1).
///
/// # Examples
///
/// ```
/// use rmb_core::{PortStatus, SourceDir};
///
/// let s = PortStatus::UNUSED.with(SourceDir::Above);
/// assert_eq!(s.bits(), 0b100);
/// assert!(s.is_allowed());
/// let overlap = s.with(SourceDir::Straight); // make-before-break moment
/// assert_eq!(overlap.bits(), 0b110);
/// assert!(overlap.is_allowed());
/// let bad = PortStatus::from_bits(0b101).unwrap();
/// assert!(!bad.is_allowed()); // "above and below" is Table 1's "Not allowed"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortStatus(u8);

impl PortStatus {
    /// `000` — bus is unused.
    pub const UNUSED: PortStatus = PortStatus(0);

    /// Builds a status from raw bits. Returns `None` above 3 bits.
    /// Note that the two *not allowed* codes (5, 7) are representable — the
    /// register is 3 bits of hardware — but [`is_allowed`](Self::is_allowed)
    /// reports them as illegal, exactly as Table 1 does.
    pub const fn from_bits(bits: u8) -> Option<PortStatus> {
        if bits < 8 {
            Some(PortStatus(bits))
        } else {
            None
        }
    }

    /// The raw 3-bit code.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Adds a source direction (make-before-break "make").
    #[must_use]
    pub const fn with(self, dir: SourceDir) -> PortStatus {
        PortStatus(self.0 | dir.bit())
    }

    /// Removes a source direction (make-before-break "break").
    #[must_use]
    pub const fn without(self, dir: SourceDir) -> PortStatus {
        PortStatus(self.0 & !dir.bit())
    }

    /// `true` when the port receives from the given direction.
    pub const fn receives(self, dir: SourceDir) -> bool {
        self.0 & dir.bit() != 0
    }

    /// `true` when the port is not driven at all (Table 1 row `000`).
    pub const fn is_unused(self) -> bool {
        self.0 == 0
    }

    /// Number of input ports currently driving this output.
    pub const fn source_count(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` for the six codes Table 1 allows. The forbidden codes are
    /// `101` (above *and* below without straight) and `111` (all three):
    /// a make-before-break overlap is always between two adjacent sources.
    pub const fn is_allowed(self) -> bool {
        self.0 != 0b101 && self.0 != 0b111
    }

    /// `true` when this is a steady (non-overlap) state: unused or exactly
    /// one source. Two sources is the transient make-before-break state.
    pub const fn is_steady(self) -> bool {
        self.source_count() <= 1
    }

    /// The single source direction in a steady used state, if any.
    pub const fn sole_source(self) -> Option<SourceDir> {
        match self.0 {
            0b001 => Some(SourceDir::Below),
            0b010 => Some(SourceDir::Straight),
            0b100 => Some(SourceDir::Above),
            _ => None,
        }
    }

    /// Iterates over the directions currently driving this port.
    pub fn sources(self) -> impl Iterator<Item = SourceDir> {
        SourceDir::ALL.into_iter().filter(move |d| self.receives(*d))
    }

    /// The interpretation string Table 1 prints for this code.
    pub const fn interpretation(self) -> &'static str {
        match self.0 {
            0b000 => "Bus is unused",
            0b001 => "Port receives from below",
            0b010 => "Port receives straight",
            0b011 => "Port receives from below and straight",
            0b100 => "Port receives from above",
            0b101 => "Not allowed",
            0b110 => "Port receives from above and straight",
            _ => "Not allowed",
        }
    }

    /// The full Table 1, in code order `000..111`, as `(code, allowed,
    /// interpretation)` rows. Used by the table-regeneration harness.
    pub fn table1() -> [(u8, bool, &'static str); 8] {
        let mut rows = [(0u8, false, ""); 8];
        let mut code = 0u8;
        while code < 8 {
            let s = PortStatus(code);
            rows[code as usize] = (code, s.is_allowed(), s.interpretation());
            code += 1;
        }
        rows
    }
}

impl fmt::Display for PortStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03b}", self.0)
    }
}

impl fmt::Binary for PortStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_exactly_two_forbidden_codes() {
        let rows = PortStatus::table1();
        let forbidden: Vec<u8> = rows
            .iter()
            .filter(|(_, allowed, _)| !allowed)
            .map(|(c, _, _)| *c)
            .collect();
        assert_eq!(forbidden, vec![0b101, 0b111]);
    }

    #[test]
    fn table1_interpretations_match_paper_rows() {
        // Paper Table 1, viewed from the output port, in code order.
        let expected = [
            "Bus is unused",
            "Port receives from below",
            "Port receives straight",
            "Port receives from below and straight",
            "Port receives from above",
            "Not allowed",
            "Port receives from above and straight",
            "Not allowed",
        ];
        for (code, want) in expected.iter().enumerate() {
            assert_eq!(
                PortStatus::from_bits(code as u8).unwrap().interpretation(),
                *want,
                "code {code:03b}"
            );
        }
    }

    #[test]
    fn with_without_roundtrip() {
        let s = PortStatus::UNUSED
            .with(SourceDir::Straight)
            .with(SourceDir::Above);
        assert_eq!(s.bits(), 0b110);
        assert!(s.receives(SourceDir::Straight));
        assert!(s.receives(SourceDir::Above));
        assert!(!s.receives(SourceDir::Below));
        let s = s.without(SourceDir::Above);
        assert_eq!(s.sole_source(), Some(SourceDir::Straight));
        assert!(s.is_steady());
    }

    #[test]
    fn steady_vs_overlap() {
        assert!(PortStatus::UNUSED.is_steady());
        assert!(PortStatus::UNUSED.with(SourceDir::Below).is_steady());
        let overlap = PortStatus::UNUSED
            .with(SourceDir::Below)
            .with(SourceDir::Straight);
        assert!(!overlap.is_steady());
        assert!(overlap.is_allowed());
        assert_eq!(overlap.source_count(), 2);
        assert_eq!(overlap.sole_source(), None);
    }

    #[test]
    fn from_bits_bounds() {
        assert!(PortStatus::from_bits(7).is_some());
        assert!(PortStatus::from_bits(8).is_none());
    }

    #[test]
    fn offsets_roundtrip() {
        for dir in SourceDir::ALL {
            assert_eq!(SourceDir::from_offset(dir.offset()), Some(dir));
        }
        assert_eq!(SourceDir::from_offset(2), None);
        assert_eq!(SourceDir::from_offset(-2), None);
    }

    #[test]
    fn sources_iterates_in_bottom_up_order() {
        let s = PortStatus::from_bits(0b011).unwrap();
        let dirs: Vec<_> = s.sources().collect();
        assert_eq!(dirs, vec![SourceDir::Below, SourceDir::Straight]);
    }

    #[test]
    fn display_is_three_bit_binary() {
        assert_eq!(PortStatus::from_bits(0b100).unwrap().to_string(), "100");
        assert_eq!(PortStatus::UNUSED.to_string(), "000");
        assert_eq!(format!("{:b}", PortStatus::from_bits(0b110).unwrap()), "110");
    }

    #[test]
    fn every_steady_code_plus_adjacent_make_is_allowed() {
        // The MBB "make" adds a source adjacent to the existing one
        // (straight+below, straight+above); both results are allowed.
        for base in [SourceDir::Below, SourceDir::Straight, SourceDir::Above] {
            let s = PortStatus::UNUSED.with(base);
            for add in [SourceDir::Below, SourceDir::Straight, SourceDir::Above] {
                let merged = s.with(add);
                let adjacent = (base.offset() - add.offset()).abs() <= 1;
                if adjacent {
                    assert!(merged.is_allowed(), "{base}+{add}");
                } else {
                    assert!(!merged.is_allowed(), "{base}+{add}");
                }
            }
        }
    }
}
