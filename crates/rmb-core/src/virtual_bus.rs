//! Virtual buses: the circuits laid over physical bus segments.
//!
//! A virtual bus is the chain of physical segments currently carrying one
//! request's circuit (§2.2, Fig. 2). Its *heights* record which physical
//! segment it occupies on every hop between source and destination; the
//! compaction protocol lowers these heights over time without ever
//! breaking the circuit.

use rmb_types::{BusIndex, MessageSpec, NodeId, RequestId, RingSize, VirtualBusId};
use std::collections::VecDeque;
use std::fmt;

/// Lifecycle state of a virtual bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusState {
    /// The header flit is drawing the bus toward the destination; the head
    /// is parked at the INC one hop past the last occupied segment.
    Establishing,
    /// The destination accepted; the `Hack` is travelling back to the
    /// source and will arrive after `hops_left` more ticks.
    AwaitingHack {
        /// Segments the `Hack` still has to cross.
        hops_left: u32,
    },
    /// The circuit is up and data flits are streaming.
    Streaming(StreamState),
    /// The `Fack` is removing the bus, tail (destination) end first;
    /// `freed` hops have been released so far.
    TearingDown {
        /// Hops already released, counted from the destination end.
        freed: usize,
    },
    /// The destination refused with a `Nack`, which is releasing the bus
    /// tail-first; `freed` hops have been released so far.
    Nacked {
        /// Hops already released, counted from the destination end.
        freed: usize,
    },
}

impl BusState {
    /// `true` while compaction may consider this bus's hops at all.
    /// Dying buses (`TearingDown`, `Nacked`) are left alone; the freed
    /// space they leave behind is what compaction of *other* buses uses.
    pub const fn compactable(&self) -> bool {
        matches!(
            self,
            BusState::Establishing | BusState::AwaitingHack { .. } | BusState::Streaming(_)
        )
    }

    /// `true` before the header acknowledgement has returned.
    pub const fn pre_hack(&self) -> bool {
        matches!(
            self,
            BusState::Establishing | BusState::AwaitingHack { .. }
        )
    }
}

impl fmt::Display for BusState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusState::Establishing => f.write_str("establishing"),
            BusState::AwaitingHack { hops_left } => write!(f, "awaiting-hack({hops_left})"),
            BusState::Streaming(_) => f.write_str("streaming"),
            BusState::TearingDown { freed } => write!(f, "tearing-down({freed})"),
            BusState::Nacked { freed } => write!(f, "nacked({freed})"),
        }
    }
}

/// Book-keeping for the data-flit stream of an established circuit.
///
/// Flits advance one segment per tick, so a data flit sent at tick `s`
/// over a circuit of `L` hops is delivered at `s + L` and its `Dack` is
/// back at the source at `s + 2L`. The queues hold send ticks awaiting
/// those two milestones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamState {
    /// Tick at which the `Hack` reached the source (circuit established).
    pub circuit_at: u64,
    /// Next data-flit sequence number to send.
    pub next_seq: u32,
    /// Send ticks of data flits not yet delivered to the destination.
    pub awaiting_delivery: VecDeque<u64>,
    /// Send ticks of data flits whose `Dack` has not yet returned.
    pub awaiting_ack: VecDeque<u64>,
    /// Data flits delivered so far.
    pub delivered: u32,
    /// Tick the final flit was sent, once all data flits are out.
    pub ff_sent_at: Option<u64>,
}

/// One virtual bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualBus {
    /// Identity of this circuit.
    pub id: VirtualBusId,
    /// The request it serves.
    pub request: RequestId,
    /// The message being carried.
    pub spec: MessageSpec,
    /// Tick the PE first asked for this connection (across retries).
    pub requested_at: u64,
    /// Tick this attempt's header flit was inserted at the top bus.
    pub injected_at: u64,
    /// `Nack` refusals suffered before this attempt.
    pub refusals: u32,
    /// Physical segment occupied on each hop, hop 0 starting at the
    /// source. Grows as the head extends; entries only ever decrease
    /// (downward compaction).
    pub heights: Vec<BusIndex>,
    /// Tick of the last head advance (injection or extension); used by the
    /// optional head-timeout anti-deadlock extension.
    pub parked_since: u64,
    /// Intermediate destinations of a multicast circuit, in clockwise
    /// order before the final destination. Empty for unicast (the paper's
    /// base protocol); see `RmbNetwork::submit_multicast`.
    pub taps: Vec<NodeId>,
    /// How many of `taps` have taken their receive port so far (taps are
    /// armed in order as the header passes them).
    pub armed_taps: usize,
    /// `true` when this attempt was torn down by a fault (as opposed to a
    /// destination `Nack`); selects the bounded-exponential retry backoff.
    pub fault_killed: bool,
    /// Lifecycle state.
    pub state: BusState,
}

impl VirtualBus {
    /// Number of hops between source and destination along the clockwise
    /// ring — the final span of the circuit.
    pub fn full_span(&self, ring: RingSize) -> u32 {
        ring.clockwise_distance(self.spec.source, self.spec.destination)
    }

    /// The node the header flit is parked at while establishing: one hop
    /// past the last occupied segment.
    pub fn head_node(&self, ring: RingSize) -> NodeId {
        ring.advance(self.spec.source, self.heights.len() as u32)
    }

    /// Number of hops still occupied (the tail `freed` hops are released
    /// first during teardown).
    pub fn active_hops(&self) -> usize {
        match self.state {
            BusState::TearingDown { freed } | BusState::Nacked { freed } => {
                self.heights.len().saturating_sub(freed)
            }
            _ => self.heights.len(),
        }
    }

    /// The upstream INC of hop `j`: the node whose output ports drive the
    /// hop's segment.
    pub fn hop_upstream_node(&self, ring: RingSize, j: usize) -> NodeId {
        ring.advance(self.spec.source, j as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(src: u32, dst: u32, hops: &[u16]) -> VirtualBus {
        VirtualBus {
            id: VirtualBusId::new(1),
            request: RequestId::new(1),
            spec: MessageSpec::new(NodeId::new(src), NodeId::new(dst), 4),
            requested_at: 0,
            injected_at: 0,
            refusals: 0,
            heights: hops.iter().map(|&h| BusIndex::new(h)).collect(),
            parked_since: 0,
            taps: Vec::new(),
            armed_taps: 0,
            fault_killed: false,
            state: BusState::Establishing,
        }
    }

    #[test]
    fn span_and_head_wrap_around_the_ring() {
        let ring = RingSize::new(8).unwrap();
        let b = bus(6, 2, &[3, 3]);
        assert_eq!(b.full_span(ring), 4);
        assert_eq!(b.head_node(ring), NodeId::new(0));
        assert_eq!(b.hop_upstream_node(ring, 0), NodeId::new(6));
        assert_eq!(b.hop_upstream_node(ring, 1), NodeId::new(7));
    }

    #[test]
    fn active_hops_shrink_during_teardown() {
        let mut b = bus(0, 4, &[1, 1, 1, 1]);
        assert_eq!(b.active_hops(), 4);
        b.state = BusState::TearingDown { freed: 3 };
        assert_eq!(b.active_hops(), 1);
        b.state = BusState::Nacked { freed: 5 };
        assert_eq!(b.active_hops(), 0);
    }

    #[test]
    fn compactability_by_state() {
        assert!(BusState::Establishing.compactable());
        assert!(BusState::AwaitingHack { hops_left: 2 }.compactable());
        assert!(BusState::Streaming(StreamState::default()).compactable());
        assert!(!BusState::TearingDown { freed: 0 }.compactable());
        assert!(!BusState::Nacked { freed: 0 }.compactable());
    }

    #[test]
    fn pre_hack_classification() {
        assert!(BusState::Establishing.pre_hack());
        assert!(BusState::AwaitingHack { hops_left: 1 }.pre_hack());
        assert!(!BusState::Streaming(StreamState::default()).pre_hack());
        assert!(!BusState::TearingDown { freed: 0 }.pre_hack());
    }

    #[test]
    fn display_forms() {
        assert_eq!(BusState::Establishing.to_string(), "establishing");
        assert_eq!(
            BusState::AwaitingHack { hops_left: 3 }.to_string(),
            "awaiting-hack(3)"
        );
        assert_eq!(
            BusState::TearingDown { freed: 2 }.to_string(),
            "tearing-down(2)"
        );
        assert_eq!(BusState::Nacked { freed: 1 }.to_string(), "nacked(1)");
    }
}
