//! Virtual buses: the circuits laid over physical bus segments.
//!
//! A virtual bus is the chain of physical segments currently carrying one
//! request's circuit (§2.2, Fig. 2). Its *heights* record which physical
//! segment it occupies on every hop between source and destination; the
//! compaction protocol lowers these heights over time without ever
//! breaking the circuit.
//!
//! Lifecycle state lives in a struct-of-arrays lane owned by the network's
//! bus slab, not on [`VirtualBus`] itself: the per-tick kernel touches only
//! that lane (plus the scheduler's `next_due` lane) for a streaming
//! circuit, leaving the cold request metadata here untouched.

use rmb_types::{BusIndex, MessageSpec, NodeId, RequestId, RingSize, VirtualBusId};
use std::fmt;

/// Lifecycle state of a virtual bus.
///
/// `Copy` by design: the tick kernel reads a bus's state out of the slab's
/// state lane into a register-resident local, advances it, and writes it
/// back — no per-circuit heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusState {
    /// The header flit is drawing the bus toward the destination; the head
    /// is parked at the INC one hop past the last occupied segment.
    Establishing,
    /// The destination accepted; the `Hack` is travelling back to the
    /// source and will arrive after `hops_left` more ticks.
    AwaitingHack {
        /// Segments the `Hack` still has to cross.
        hops_left: u32,
    },
    /// The circuit is up and data flits are streaming.
    Streaming(StreamState),
    /// The `Fack` is removing the bus, tail (destination) end first;
    /// `freed` hops have been released so far.
    TearingDown {
        /// Hops already released, counted from the destination end.
        freed: usize,
    },
    /// The destination refused with a `Nack`, which is releasing the bus
    /// tail-first; `freed` hops have been released so far.
    Nacked {
        /// Hops already released, counted from the destination end.
        freed: usize,
    },
}

impl BusState {
    /// `true` while compaction may consider this bus's hops at all.
    /// Dying buses (`TearingDown`, `Nacked`) are left alone; the freed
    /// space they leave behind is what compaction of *other* buses uses.
    pub const fn compactable(&self) -> bool {
        matches!(
            self,
            BusState::Establishing | BusState::AwaitingHack { .. } | BusState::Streaming(_)
        )
    }

    /// `true` before the header acknowledgement has returned.
    pub const fn pre_hack(&self) -> bool {
        matches!(
            self,
            BusState::Establishing | BusState::AwaitingHack { .. }
        )
    }
}

impl fmt::Display for BusState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusState::Establishing => f.write_str("establishing"),
            BusState::AwaitingHack { hops_left } => write!(f, "awaiting-hack({hops_left})"),
            BusState::Streaming(_) => f.write_str("streaming"),
            BusState::TearingDown { freed } => write!(f, "tearing-down({freed})"),
            BusState::Nacked { freed } => write!(f, "nacked({freed})"),
        }
    }
}

/// Book-keeping for the data-flit stream of an established circuit.
///
/// Flits advance one segment per tick, so a data flit sent at tick `s`
/// over a circuit of `L` hops is delivered at `s + L` and its `Dack` is
/// back at the source at `s + 2L`. The source may have at most `window`
/// unacked flits outstanding, which pins every send tick to a closed form:
/// with the circuit up at tick `c` (so sends start at `c + 1`), flit `i`
/// (0-based) goes out at
///
/// ```text
/// t_i = c + 1 + i + max(0, 2L − W) · ⌊i / W⌋
/// ```
///
/// because the send times obey `t_i = max(t_{i−1} + 1, t_{i−W} + 2L)`:
/// back-to-back while the window has room, then stalled until the ack of
/// the flit a window ago returns. That closed form replaces the old
/// per-flit `VecDeque`s of send ticks with three counters (`next_seq`,
/// `delivered`, `acked`) — the whole stream state is `Copy` and fits in a
/// cache line, which is what makes the per-active-circuit tick budget
/// reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamState {
    /// Tick at which the `Hack` reached the source (circuit established).
    pub circuit_at: u64,
    /// Circuit length in hops, fixed once streaming starts (compaction
    /// changes the heights' *values*, never the count).
    pub span: u32,
    /// Total data flits of the message, snapshotted from the spec.
    pub data_flits: u32,
    /// Ack window `W`: max unacked flits in flight (`u32::MAX` =
    /// unlimited, `1` = per-flit stop-and-wait).
    pub window: u32,
    /// Next data-flit sequence number to send (= flits sent so far).
    pub next_seq: u32,
    /// Data flits delivered so far; flit `delivered` is the next to land.
    pub delivered: u32,
    /// Data flits whose `Dack` has returned; flit `acked`'s ack is the
    /// next due back.
    pub acked: u32,
    /// Tick the final flit was sent, once all data flits are out.
    pub ff_sent_at: Option<u64>,
}

impl StreamState {
    /// Fresh stream for a circuit established at `circuit_at` over `span`
    /// hops, carrying `data_flits` flits under ack window `window`.
    #[must_use]
    pub const fn new(circuit_at: u64, span: u32, data_flits: u32, window: u32) -> Self {
        StreamState {
            circuit_at,
            span,
            data_flits,
            window,
            next_seq: 0,
            delivered: 0,
            acked: 0,
            ff_sent_at: None,
        }
    }

    /// The tick data flit `i` (0-based) is sent, per the closed form
    /// above. Only windows narrower than the round trip (`W < 2L`) ever
    /// stall the source, so the division is skipped in the common
    /// unlimited/wide-window case.
    #[inline]
    #[must_use]
    pub fn send_tick(&self, i: u32) -> u64 {
        let base = self.circuit_at + 1 + u64::from(i);
        let excess = (2 * u64::from(self.span)).saturating_sub(u64::from(self.window));
        if excess == 0 {
            base
        } else {
            base + excess * u64::from(i / self.window)
        }
    }

    /// Flits sent but not yet delivered.
    #[inline]
    #[must_use]
    pub const fn undelivered(&self) -> u32 {
        self.next_seq - self.delivered
    }

    /// Flits sent but not yet acked — the window occupancy.
    #[inline]
    #[must_use]
    pub const fn unacked(&self) -> u32 {
        self.next_seq - self.acked
    }
}

/// One virtual bus: the cold, per-request side of a circuit.
///
/// The lifecycle [`BusState`] is *not* stored here — it lives in the bus
/// slab's state lane (see `RmbNetwork::bus_state`), so methods that depend
/// on it take the state as a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualBus {
    /// Identity of this circuit.
    pub id: VirtualBusId,
    /// The request it serves.
    pub request: RequestId,
    /// The message being carried.
    pub spec: MessageSpec,
    /// Tick the PE first asked for this connection (across retries).
    pub requested_at: u64,
    /// Tick this attempt's header flit was inserted at the top bus.
    pub injected_at: u64,
    /// `Nack` refusals suffered before this attempt.
    pub refusals: u32,
    /// Physical segment occupied on each hop, hop 0 starting at the
    /// source. Grows as the head extends; entries only ever decrease
    /// (downward compaction).
    pub heights: Vec<BusIndex>,
    /// Tick of the last head advance (injection or extension); used by the
    /// optional head-timeout anti-deadlock extension.
    pub parked_since: u64,
    /// Intermediate destinations of a multicast circuit, in clockwise
    /// order before the final destination. Empty for unicast (the paper's
    /// base protocol); see `RmbNetwork::submit_multicast`.
    pub taps: Vec<NodeId>,
    /// How many of `taps` have taken their receive port so far (taps are
    /// armed in order as the header passes them).
    pub armed_taps: usize,
    /// `true` when this attempt was torn down by a fault (as opposed to a
    /// destination `Nack`); selects the bounded-exponential retry backoff.
    pub fault_killed: bool,
}

impl VirtualBus {
    /// Number of hops between source and destination along the clockwise
    /// ring — the final span of the circuit.
    pub fn full_span(&self, ring: RingSize) -> u32 {
        ring.clockwise_distance(self.spec.source, self.spec.destination)
    }

    /// The node the header flit is parked at while establishing: one hop
    /// past the last occupied segment.
    pub fn head_node(&self, ring: RingSize) -> NodeId {
        ring.advance(self.spec.source, self.heights.len() as u32)
    }

    /// Number of hops still occupied under lifecycle state `state` (the
    /// tail `freed` hops are released first during teardown).
    pub fn active_hops(&self, state: BusState) -> usize {
        match state {
            BusState::TearingDown { freed } | BusState::Nacked { freed } => {
                self.heights.len().saturating_sub(freed)
            }
            _ => self.heights.len(),
        }
    }

    /// The upstream INC of hop `j`: the node whose output ports drive the
    /// hop's segment.
    pub fn hop_upstream_node(&self, ring: RingSize, j: usize) -> NodeId {
        ring.advance(self.spec.source, j as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(src: u32, dst: u32, hops: &[u16]) -> VirtualBus {
        VirtualBus {
            id: VirtualBusId::new(1),
            request: RequestId::new(1),
            spec: MessageSpec::new(NodeId::new(src), NodeId::new(dst), 4),
            requested_at: 0,
            injected_at: 0,
            refusals: 0,
            heights: hops.iter().map(|&h| BusIndex::new(h)).collect(),
            parked_since: 0,
            taps: Vec::new(),
            armed_taps: 0,
            fault_killed: false,
        }
    }

    #[test]
    fn span_and_head_wrap_around_the_ring() {
        let ring = RingSize::new(8).unwrap();
        let b = bus(6, 2, &[3, 3]);
        assert_eq!(b.full_span(ring), 4);
        assert_eq!(b.head_node(ring), NodeId::new(0));
        assert_eq!(b.hop_upstream_node(ring, 0), NodeId::new(6));
        assert_eq!(b.hop_upstream_node(ring, 1), NodeId::new(7));
    }

    #[test]
    fn active_hops_shrink_during_teardown() {
        let b = bus(0, 4, &[1, 1, 1, 1]);
        assert_eq!(b.active_hops(BusState::Establishing), 4);
        assert_eq!(b.active_hops(BusState::TearingDown { freed: 3 }), 1);
        assert_eq!(b.active_hops(BusState::Nacked { freed: 5 }), 0);
    }

    #[test]
    fn compactability_by_state() {
        assert!(BusState::Establishing.compactable());
        assert!(BusState::AwaitingHack { hops_left: 2 }.compactable());
        assert!(BusState::Streaming(StreamState::default()).compactable());
        assert!(!BusState::TearingDown { freed: 0 }.compactable());
        assert!(!BusState::Nacked { freed: 0 }.compactable());
    }

    #[test]
    fn pre_hack_classification() {
        assert!(BusState::Establishing.pre_hack());
        assert!(BusState::AwaitingHack { hops_left: 1 }.pre_hack());
        assert!(!BusState::Streaming(StreamState::default()).pre_hack());
        assert!(!BusState::TearingDown { freed: 0 }.pre_hack());
    }

    #[test]
    fn display_forms() {
        assert_eq!(BusState::Establishing.to_string(), "establishing");
        assert_eq!(
            BusState::AwaitingHack { hops_left: 3 }.to_string(),
            "awaiting-hack(3)"
        );
        assert_eq!(
            BusState::TearingDown { freed: 2 }.to_string(),
            "tearing-down(2)"
        );
        assert_eq!(BusState::Nacked { freed: 1 }.to_string(), "nacked(1)");
    }

    /// The closed form must satisfy the windowed-send recurrence
    /// `t_i = max(t_{i-1} + 1, t_{i-W} + 2L)` with `t_0 = c + 1` for every
    /// span/window combination, including the stop-and-wait and unlimited
    /// extremes.
    #[test]
    fn send_tick_satisfies_the_window_recurrence() {
        for &(span, window) in &[
            (1u32, 1u32),
            (1, 2),
            (3, 1),
            (3, 2),
            (3, 5),
            (3, 6),
            (3, 7),
            (7, 3),
            (5, u32::MAX),
        ] {
            let s = StreamState::new(17, span, 1000, window);
            assert_eq!(s.send_tick(0), 18, "t_0 with L={span} W={window}");
            for i in 1..200u32 {
                let mut expect = s.send_tick(i - 1) + 1;
                if i >= window {
                    expect = expect.max(s.send_tick(i - window) + 2 * u64::from(span));
                }
                assert_eq!(
                    s.send_tick(i),
                    expect,
                    "recurrence at i={i} L={span} W={window}"
                );
            }
        }
    }

    #[test]
    fn stream_counters_track_queue_lengths() {
        let mut s = StreamState::new(0, 2, 10, u32::MAX);
        s.next_seq = 7;
        s.delivered = 4;
        s.acked = 2;
        assert_eq!(s.undelivered(), 3);
        assert_eq!(s.unacked(), 5);
    }
}
