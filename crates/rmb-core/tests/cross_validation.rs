//! N-version cross-validation: the arithmetic engine (`RmbNetwork`) and
//! the explicit flit-level engine (`microsim::FlitLevelRmb`) implement
//! the same protocol independently; on identical workloads they must
//! produce identical per-message delivery times, circuit times, refusals
//! and compaction-move counts.

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_core::microsim::FlitLevelRmb;
use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// (request id, circuit tick, delivery tick) per delivered message.
type Outcome = Vec<(u64, u64, u64)>;

fn run_both(n: u32, k: u16, msgs: &[MessageSpec]) -> (Outcome, Outcome) {
    // A fixed tick budget on both engines: workloads that deadlock (for
    // example crossed partial circuits on k = 1 — see the deadlock study)
    // must still produce *identical* partial outcomes.
    let cap = 60_000;
    let cfg = RmbConfig::new(n, k).unwrap();

    let mut reference = RmbNetwork::builder(cfg).checked(true).build();
    for m in msgs {
        reference.submit(*m).unwrap();
    }
    reference.run(cap);
    let report = reference.report();

    let mut explicit = FlitLevelRmb::new(cfg);
    for m in msgs {
        explicit.submit(*m).unwrap();
    }
    explicit.run_to_quiescence(cap);

    let mut a: Outcome = reference
        .delivered_log()
        .iter()
        .map(|d| (d.request.get(), d.circuit_at, d.delivered_at))
        .collect();
    let mut b: Outcome = explicit
        .delivered()
        .iter()
        .map(|d| (d.request.get(), d.circuit_at, d.delivered_at))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    // Compaction-move counts must agree too: the engines make identical
    // decisions, not merely identical deliveries.
    assert_eq!(report.compaction_moves, explicit.compaction_moves());
    assert_eq!(report.refusals, explicit.refusals());
    (a, b)
}

#[test]
fn single_messages_agree_across_spans() {
    for n in [4u32, 8, 12] {
        for dst in 1..n {
            for m in [0u32, 3, 17] {
                let msgs = vec![MessageSpec::new(NodeId::new(0), NodeId::new(dst), m)];
                let (a, b) = run_both(n, 3, &msgs);
                assert_eq!(a, b, "n={n} dst={dst} m={m}");
            }
        }
    }
}

#[test]
fn overlapping_circuits_agree() {
    let msgs = vec![
        MessageSpec::new(NodeId::new(0), NodeId::new(8), 40),
        MessageSpec::new(NodeId::new(1), NodeId::new(7), 40).at(2),
        MessageSpec::new(NodeId::new(2), NodeId::new(9), 24).at(5),
        MessageSpec::new(NodeId::new(10), NodeId::new(3), 12).at(9),
    ];
    let (a, b) = run_both(12, 3, &msgs);
    assert_eq!(a, b);
}

#[test]
fn refusal_and_retry_agree() {
    // Two senders to one destination: one gets Nacked, retries, delivers.
    let msgs = vec![
        MessageSpec::new(NodeId::new(0), NodeId::new(4), 60),
        MessageSpec::new(NodeId::new(2), NodeId::new(4), 6),
    ];
    let (a, b) = run_both(8, 2, &msgs);
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The full cross-check over random workloads: identical deliveries,
    /// identical compaction decisions.
    #[test]
    fn engines_agree_on_random_workloads(
        n in 3u32..14,
        k in 1u16..5,
        raw in vec((any::<u32>(), any::<u32>(), 0u32..24, 0u64..120), 1..14),
    ) {
        let msgs: Vec<MessageSpec> = raw
            .iter()
            .map(|&(s, off, flits, at)| {
                let src = s % n;
                let dst = (src + 1 + off % (n - 1)) % n;
                MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits).at(at)
            })
            .collect();
        let (a, b) = run_both(n, k, &msgs);
        // Note: completeness is NOT required — k = 1 workloads can reach
        // the circular wait documented in EXPERIMENTS.md. The engines
        // must agree on whatever happened.
        prop_assert_eq!(a, b);
    }
}
