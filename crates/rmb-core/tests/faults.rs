//! Fault-injection and recovery tests: deterministic fault schedules
//! drive the network through segment failures, link cuts and dead INCs,
//! and the simulator must tear down, retry and re-route without ever
//! violating the structural invariants or losing a message silently.

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_core::RmbNetwork;
use rmb_types::{BusIndex, FaultPlan, MessageSpec, NodeId, RmbConfig};

fn msg(src: u32, dst: u32, flits: u32) -> MessageSpec {
    MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits)
}

#[test]
fn segment_fault_is_visible_until_repair() {
    let plan = FaultPlan::new().segment_stuck(5, NodeId::new(3), BusIndex::new(1), Some(50));
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .fault_plan(plan)
        .build();
    assert!(!net.is_segment_faulted(NodeId::new(3), BusIndex::new(1)));
    net.run(10);
    assert!(net.is_segment_faulted(NodeId::new(3), BusIndex::new(1)));
    assert_eq!(net.faulted_segments(), 1);
    net.run(50);
    assert!(!net.is_segment_faulted(NodeId::new(3), BusIndex::new(1)));
    assert_eq!(net.faulted_segments(), 0);
}

#[test]
fn link_cut_faults_every_bus_on_the_hop() {
    let plan = FaultPlan::new().link_cut(1, NodeId::new(2), Some(20));
    let mut net = RmbNetwork::builder(RmbConfig::new(6, 3).unwrap())
        .checked(true)
        .fault_plan(plan)
        .build();
    net.run(5);
    assert_eq!(net.faulted_segments(), 3, "all k segments of the hop");
    for b in 0..3 {
        assert!(net.is_segment_faulted(NodeId::new(2), BusIndex::new(b)));
    }
    net.run(20);
    assert_eq!(net.faulted_segments(), 0);
}

#[test]
fn fault_under_live_circuit_kills_then_recovers() {
    // A long stream 0 -> 4 settles on bus 0; at t = 20 that segment dies
    // under it. The circuit is torn down, the source backs off, retries
    // once the fault clears, and the message is still delivered.
    let plan = FaultPlan::new().segment_stuck(20, NodeId::new(1), BusIndex::new(0), Some(120));
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .fault_plan(plan)
        .build();
    net.submit(msg(0, 4, 200)).unwrap();
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 1, "stalled={}", report.stalled);
    assert_eq!(report.undelivered, 0);
    assert!(report.fault_kills >= 1, "the fault must hit the circuit");
    assert!(report.retries >= 1, "the kill must requeue the request");
    assert_eq!(report.recovered(), 1);
    assert!(report.mean_time_to_recover() > 0.0);
    assert!(report.max_time_to_recover() > 0);
    assert!(net.is_quiescent());
}

#[test]
fn live_circuit_routes_around_permanent_fault() {
    // Bus 0 of hop 2 is dead from the start; a circuit crossing hop 2
    // must settle with that hop on bus 1 while free hops compact to 0.
    let plan = FaultPlan::new().segment_stuck(0, NodeId::new(2), BusIndex::new(0), None);
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .fault_plan(plan)
        .build();
    net.submit(msg(0, 5, 400)).unwrap();
    net.run(60);
    let bus = net.virtual_buses().next().expect("circuit is live");
    // Hop index 2 of a circuit from node 0 crosses the faulted segment.
    assert_eq!(bus.heights[2], BusIndex::new(1), "heights: {:?}", bus.heights);
    assert!(
        bus.heights.iter().enumerate().all(|(j, h)| j == 2 || *h == BusIndex::new(0)),
        "unfaulted hops compact to the bottom: {:?}",
        bus.heights
    );
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 1);
}

#[test]
fn dead_destination_aborts_after_retry_budget() {
    let plan = FaultPlan::new().inc_dead(0, NodeId::new(4), None);
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .fault_plan(plan)
        .max_retries(2)
        .build();
    net.submit(msg(0, 4, 4)).unwrap();
    let report = net.run_to_quiescence(1_000_000);
    assert_eq!(report.delivered, 0);
    assert_eq!(report.aborted, 1, "explicitly dropped, not silently lost");
    assert_eq!(report.undelivered, 1);
    assert!(!report.stalled, "an abort is a clean outcome, not a stall");
    assert!(net.is_quiescent());
}

#[test]
fn dead_source_refuses_injection_until_repair() {
    let plan = FaultPlan::new().inc_dead(0, NodeId::new(0), Some(200));
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .fault_plan(plan)
        .build();
    net.submit(msg(0, 3, 2)).unwrap();
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 1, "stalled={}", report.stalled);
    assert!(report.refusals >= 1, "injection refused while the INC is down");
    assert!(net.delivered_log()[0].circuit_at >= 200, "only after repair");
}

#[test]
fn fault_events_appear_in_the_trace() {
    use rmb_sim::trace::TraceKind;
    let plan = FaultPlan::new().segment_stuck(10, NodeId::new(1), BusIndex::new(0), Some(60));
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .recording(true)
        .fault_plan(plan)
        .build();
    net.submit(msg(0, 4, 200)).unwrap();
    net.run_to_quiescence(100_000);
    let events = net.take_events();
    let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceKind::FaultInject));
    assert!(kinds.contains(&TraceKind::FaultRepair));
    assert!(kinds.contains(&TraceKind::FaultKill));
}

#[test]
fn abort_is_traced() {
    use rmb_sim::trace::TraceKind;
    let plan = FaultPlan::new().inc_dead(0, NodeId::new(4), None);
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .recording(true)
        .fault_plan(plan)
        .max_retries(1)
        .build();
    net.submit(msg(0, 4, 4)).unwrap();
    net.run_to_quiescence(1_000_000);
    let events = net.take_events();
    assert!(events.iter().any(|e| e.kind == TraceKind::Abort));
}

#[test]
fn overlapping_faults_keep_segment_down_until_both_clear() {
    // A link cut and a segment fault overlap on the same segment; the
    // segment only returns to service when the *last* covering fault is
    // repaired.
    let plan = FaultPlan::new()
        .segment_stuck(5, NodeId::new(2), BusIndex::new(0), Some(30))
        .link_cut(10, NodeId::new(2), Some(50));
    let mut net = RmbNetwork::builder(RmbConfig::new(6, 2).unwrap())
        .checked(true)
        .fault_plan(plan)
        .build();
    net.run(35);
    assert!(
        net.is_segment_faulted(NodeId::new(2), BusIndex::new(0)),
        "link cut still covers the segment after the stuck fault cleared"
    );
    net.run(20);
    assert!(!net.is_segment_faulted(NodeId::new(2), BusIndex::new(0)));
    assert_eq!(net.faulted_segments(), 0);
}

/// Workload item: (source, destination offset, flits, delay).
type RawMsg = (u32, u32, u32, u64);

fn build_msgs(n: u32, raw: &[RawMsg]) -> Vec<MessageSpec> {
    raw.iter()
        .map(|&(s, off, flits, at)| {
            let src = s % n;
            let dst = (src + 1 + off % (n - 1)) % n;
            MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 24).at(at % 400)
        })
        .collect()
}

/// Raw fault item: (kind, at, node, bus, outage).
type RawFault = (u8, u64, u32, u16, u64);

fn build_plan(n: u32, k: u16, raw: &[RawFault]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(kind, at, node, bus, outage) in raw {
        let at = at % 2_000;
        let node = NodeId::new(node % n);
        let repair = if outage % 3 == 0 { None } else { Some(at + 1 + outage % 600) };
        plan = match kind % 4 {
            0 | 1 => plan.segment_stuck(at, node, BusIndex::new(bus % k), repair),
            2 => plan.link_cut(at, node, repair),
            _ => plan.inc_dead(at, node, repair),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A plan whose events all lie beyond the end of the run changes
    /// nothing: the fault machinery must be a strict no-op on the
    /// fault-free prefix, byte for byte.
    #[test]
    fn fault_free_run_is_byte_identical_to_no_plan_run(
        n in 4u32..12,
        k in 1u16..4,
        raw in vec(any::<RawMsg>(), 1..10),
        seed in any::<u64>(),
    ) {
        let msgs = build_msgs(n, &raw);
        let cfg = RmbConfig::new(n, k).unwrap();

        let mut bare = RmbNetwork::builder(cfg).checked(true).build();
        bare.submit_all(msgs.clone()).unwrap();
        let r_bare = bare.run_to_quiescence(2_000_000);

        // Every fault is scheduled after the bare run finished, so the
        // planned run quiesces before any of them fire.
        let horizon = r_bare.ticks + 1;
        let plan = FaultPlan::new()
            .segment_stuck(horizon, NodeId::new(0), BusIndex::new(0), None)
            .link_cut(horizon + 5, NodeId::new(n - 1), Some(horizon + 10))
            .inc_dead(horizon + 7, NodeId::new(n / 2), None);
        let mut planned = RmbNetwork::builder(cfg)
            .checked(true)
            .fault_plan(plan)
            .fault_seed(seed)
            .build();
        planned.submit_all(msgs).unwrap();
        let r_planned = planned.run_to_quiescence(2_000_000);

        prop_assert_eq!(r_bare.ticks, r_planned.ticks);
        prop_assert_eq!(r_bare.delivered, r_planned.delivered);
        prop_assert_eq!(r_bare.refusals, r_planned.refusals);
        prop_assert_eq!(r_bare.retries, r_planned.retries);
        prop_assert_eq!(r_bare.compaction_moves, r_planned.compaction_moves);
        prop_assert_eq!(r_bare.fault_kills, 0u64);
        prop_assert_eq!(r_planned.fault_kills, 0u64);
        let log = |net: &RmbNetwork| -> Vec<(u64, u64, u64, u32)> {
            net.delivered_log()
                .iter()
                .map(|d| (d.request.get(), d.circuit_at, d.delivered_at, d.refusals))
                .collect()
        };
        prop_assert_eq!(log(&bare), log(&planned));
    }

    /// Under arbitrary fault schedules every submitted message is
    /// accounted for — delivered or explicitly aborted, never silently
    /// lost — the run reaches quiescence (no deadlock), and the
    /// fault-aware invariants hold throughout (checked mode panics on
    /// the first violation).
    #[test]
    fn no_silent_loss_under_random_faults(
        n in 5u32..12,
        k in 2u16..4,
        raw in vec(any::<RawMsg>(), 1..10),
        faults in vec(any::<RawFault>(), 1..8),
        seed in any::<u64>(),
    ) {
        let msgs = build_msgs(n, &raw);
        let submitted = msgs.len();
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(8 * n as u64)
            .retry_backoff(n as u64)
            .build()
            .unwrap();
        let mut net = RmbNetwork::builder(cfg)
            .checked(true)
            .fault_plan(build_plan(n, k, &faults))
            .fault_seed(seed)
            .max_retries(8)
            .build();
        net.submit_all(msgs).unwrap();
        let report = net.run_to_quiescence(4_000_000);

        prop_assert!(!report.stalled, "faults must not deadlock the ring");
        prop_assert!(net.is_quiescent());
        prop_assert_eq!(
            report.delivered + report.aborted,
            submitted,
            "every message delivered or explicitly aborted"
        );
        prop_assert_eq!(report.undelivered, report.aborted);
        net.check_invariants().unwrap();
    }
}
