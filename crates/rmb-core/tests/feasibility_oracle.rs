//! Feasibility-kernel equivalence: the packed-bitmap answers must match
//! the slab-walk oracle on *every* query, at *every* observation point,
//! under random workloads and random fault/repair schedules.
//!
//! Two networks run in lockstep — identical configuration, workload,
//! fault plan and seed, differing only in [`FeasibilityMode`]. At random
//! sample ticks the test asks both for [`RmbNetwork::path_feasible`] over
//! all (src, dst) pairs — including the wrap-around spans crossing the
//! ring's cut — and requires identical verdicts. Both runs are `checked`,
//! so invariant #6 (bitmap lockstep) is also re-verified after every tick.

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_core::{FeasibilityMode, RmbNetwork, SchedulerMode};
use rmb_types::{BusIndex, FaultPlan, MessageSpec, NodeId, RmbConfig};

/// Workload item: (source, destination offset, flits, delay).
type RawMsg = (u32, u32, u32, u64);

/// Raw fault item: (kind, at, node, bus, outage).
type RawFault = (u8, u64, u32, u16, u64);

fn build_net(
    cfg: RmbConfig,
    mode: FeasibilityMode,
    plan: &FaultPlan,
    msgs: &[MessageSpec],
) -> RmbNetwork {
    let mut net = RmbNetwork::builder(cfg)
        .feasibility(mode)
        .scheduler(SchedulerMode::EventDriven)
        .checked(true)
        .fault_plan(plan.clone())
        .fault_seed(11)
        .max_retries(6)
        .build();
    net.submit_all(msgs.to_vec()).unwrap();
    net
}

/// Every (src, dst) pair, src != dst — spans 1..N-1, including every
/// wrap-around arc across the ring's word-boundary cut.
fn assert_all_queries_agree(bitmap: &RmbNetwork, slab: &RmbNetwork, n: u32, tick: u64) {
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let (s, d) = (NodeId::new(src), NodeId::new(dst));
            assert_eq!(
                bitmap.path_feasible(s, d),
                slab.path_feasible(s, d),
                "kernels disagree on {s} -> {d} at tick {tick}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random traffic plus random segment faults and repairs: the two
    /// kernels answer every feasibility query identically at every
    /// sampled instant.
    #[test]
    fn bitmap_matches_slab_walk_under_faults(
        n in 4u32..14,
        k in 1u16..4,
        raw in vec(any::<RawMsg>(), 1..10),
        faults in vec(any::<RawFault>(), 0..8),
        stride in 1u64..40,
    ) {
        let msgs: Vec<MessageSpec> = raw
            .iter()
            .map(|&(s, off, flits, at)| {
                let src = s % n;
                let dst = (src + 1 + off % (n - 1)) % n;
                MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 24).at(at % 300)
            })
            .collect();
        let mut plan = FaultPlan::new();
        for &(kind, at, node, bus, outage) in &faults {
            let at = at % 1_000;
            let node = NodeId::new(node % n);
            let repair = if outage % 3 == 0 { None } else { Some(at + 1 + outage % 400) };
            plan = match kind % 4 {
                0 | 1 => plan.segment_stuck(at, node, BusIndex::new(bus % k), repair),
                2 => plan.link_cut(at, node, repair),
                _ => plan.inc_dead(at, node, repair),
            };
        }
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(8 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()
            .unwrap();
        let mut bitmap = build_net(cfg, FeasibilityMode::Bitmap, &plan, &msgs);
        let mut slab = build_net(cfg, FeasibilityMode::SlabWalk, &plan, &msgs);
        assert_all_queries_agree(&bitmap, &slab, n, 0);
        for tick in 0..2_000u64 {
            if bitmap.is_quiescent() && slab.is_quiescent() && tick > 1_000 {
                break;
            }
            bitmap.tick();
            slab.tick();
            if tick % stride == 0 {
                assert_all_queries_agree(&bitmap, &slab, n, tick + 1);
            }
        }
        assert_all_queries_agree(&bitmap, &slab, n, u64::MAX);
        prop_assert_eq!(bitmap.report().delivered, slab.report().delivered);
        prop_assert_eq!(bitmap.report().fault_kills, slab.report().fault_kills);
    }
}

/// A saturated hop makes exactly the arcs crossing it infeasible, and a
/// repair brings them back — checked in both kernels, across the ring
/// cut where the occupancy bitmap's masked-range query splits into two
/// word spans.
#[test]
fn saturation_and_repair_agree_across_the_cut() {
    let n = 70u32; // > 64 so arcs straddle the bitmap's word boundary
    let cfg = RmbConfig::new(n, 1).unwrap();
    let plan = FaultPlan::new().segment_stuck(5, NodeId::new(67), BusIndex::new(0), Some(400));
    let mk = |mode| {
        RmbNetwork::builder(cfg)
            .feasibility(mode)
            .checked(true)
            .fault_plan(plan.clone())
            .build()
    };
    let mut bitmap = mk(FeasibilityMode::Bitmap);
    let mut slab = mk(FeasibilityMode::SlabWalk);
    for tick in 0..=500u64 {
        assert_all_queries_agree(&bitmap, &slab, n, tick);
        bitmap.tick();
        slab.tick();
    }
    // While the fault at hop 67 is active (k = 1, so the hop is full),
    // the wrapping path 60 -> 3 must read infeasible in both kernels.
    let mut bitmap = mk(FeasibilityMode::Bitmap);
    let mut slab = mk(FeasibilityMode::SlabWalk);
    for _ in 0..50 {
        bitmap.tick();
        slab.tick();
    }
    assert!(!bitmap.path_feasible(NodeId::new(60), NodeId::new(3)));
    assert!(!slab.path_feasible(NodeId::new(60), NodeId::new(3)));
    assert!(bitmap.path_feasible(NodeId::new(0), NodeId::new(60)));
    for _ in 0..400 {
        bitmap.tick();
        slab.tick();
    }
    assert!(bitmap.path_feasible(NodeId::new(60), NodeId::new(3)), "repair restores the arc");
    assert!(slab.path_feasible(NodeId::new(60), NodeId::new(3)));
}
