//! Exhaustive model check of the odd/even cycle handshake (§2.5).
//!
//! The Lemma 1 tests elsewhere *sample* schedules (random pacing, OS
//! threads); this suite *enumerates* them: breadth-first search over the
//! complete reachable state space of a small [`CycleRing`] under an
//! adversarial scheduler that may, at every step, either raise any INC's
//! internal `ID` signal or activate any INC. Lemma 1 bounds neighbouring
//! transition counts by one, which also keeps the quotient state space
//! (flags plus transition counts relative to the minimum) finite — so a
//! terminating BFS that never sees a violation *is* a proof for that ring
//! size.

use rmb_core::CycleRing;
use std::collections::{HashSet, VecDeque};

/// The quotient state: per INC `(OD, OC, ID, t_i - min t)`.
fn encode(ring: &CycleRing) -> Option<Vec<u8>> {
    let n = ring.len();
    let min_t = (0..n).map(|i| ring.controller(i).transitions()).min()?;
    let mut code = Vec::with_capacity(n);
    for i in 0..n {
        let c = ring.controller(i);
        let delta = c.transitions() - min_t;
        if delta > 2 {
            // Beyond the Lemma 1 bound — reported as a violation by the
            // caller (kept representable so the search can surface it).
            return None;
        }
        code.push(
            u8::from(c.flags().data)
                | (u8::from(c.flags().cycle) << 1)
                | (u8::from(c.internal_done()) << 2)
                | ((delta as u8) << 3),
        );
    }
    Some(code)
}

/// Exhaustively explores every interleaving for a ring of `n` INCs.
/// Returns the number of distinct quotient states when Lemma 1 holds
/// everywhere.
fn explore(n: usize) -> Result<usize, String> {
    let initial = CycleRing::new(n);
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut frontier: VecDeque<CycleRing> = VecDeque::new();
    seen.insert(encode(&initial).expect("reset state is within bounds"));
    frontier.push_back(initial);

    while let Some(state) = frontier.pop_front() {
        // Adversarial actions: raise ID at any INC, or activate any INC.
        for i in 0..n {
            // Action A: raise the internal-done signal.
            if !state.controller(i).internal_done() {
                let mut next = state.clone();
                next.set_internal_done(i, true);
                visit(next, &mut seen, &mut frontier)?;
            }
            // Action B: the INC's clock fires.
            let mut next = state.clone();
            next.activate(i);
            visit(next, &mut seen, &mut frontier)?;
        }
    }
    Ok(seen.len())
}

fn visit(
    next: CycleRing,
    seen: &mut HashSet<Vec<u8>>,
    frontier: &mut VecDeque<CycleRing>,
) -> Result<(), String> {
    let skew = next.max_neighbour_skew();
    if skew > 1 {
        return Err(format!("Lemma 1 violated: neighbour skew {skew}"));
    }
    match encode(&next) {
        Some(code) => {
            if seen.insert(code) {
                frontier.push_back(next);
            }
            Ok(())
        }
        None => Err("transition counts diverged beyond the quotient bound".into()),
    }
}

#[test]
fn lemma1_holds_exhaustively_for_three_incs() {
    let states = explore(3).expect("no violation reachable");
    // The reachable quotient space is non-trivial but finite.
    assert!(states > 50, "suspiciously small exploration: {states}");
}

#[test]
fn lemma1_holds_exhaustively_for_four_incs() {
    let states = explore(4).expect("no violation reachable");
    assert!(states > 200, "suspiciously small exploration: {states}");
}

#[test]
fn lemma1_holds_exhaustively_for_five_incs() {
    let states = explore(5).expect("no violation reachable");
    assert!(states > 500, "suspiciously small exploration: {states}");
}

/// The adversary can always drive every INC forward: from every reachable
/// state there is a schedule completing another transition (deadlock
/// freedom of the handshake itself).
#[test]
fn handshake_is_deadlock_free_for_four_incs() {
    // From any reachable state, round-robin with ID raised must advance
    // the minimum transition count within a bounded number of steps.
    let n = 4;
    let initial = CycleRing::new(n);
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut frontier: VecDeque<CycleRing> = VecDeque::new();
    seen.insert(encode(&initial).unwrap());
    frontier.push_back(initial);
    while let Some(state) = frontier.pop_front() {
        // Progress check on this state.
        let mut probe = state.clone();
        let before = probe.min_transitions();
        for _round in 0..16 {
            for i in 0..n {
                probe.set_internal_done(i, true);
                probe.activate(i);
            }
        }
        assert!(
            probe.min_transitions() > before,
            "stuck state found: fair scheduling makes no progress"
        );
        // Expand (same action set as `explore`).
        for i in 0..n {
            if !state.controller(i).internal_done() {
                let mut next = state.clone();
                next.set_internal_done(i, true);
                if let Some(code) = encode(&next) {
                    if seen.insert(code) {
                        frontier.push_back(next);
                    }
                }
            }
            let mut next = state.clone();
            next.activate(i);
            if let Some(code) = encode(&next) {
                if seen.insert(code) {
                    frontier.push_back(next);
                }
            }
        }
    }
}
