//! Tests of the multicast extension (§1: "the RMB concept can also be
//! extended to support broadcasting and multicasting").

use rmb_core::RmbNetwork;
use rmb_types::{MessageSpec, NodeId, ProtocolError, RmbConfig};

fn net(n: u32, k: u16) -> RmbNetwork {
    RmbNetwork::builder(RmbConfig::new(n, k).unwrap())
        .checked(true)
        .build()
}

fn nodes(ids: &[u32]) -> Vec<NodeId> {
    ids.iter().map(|&i| NodeId::new(i)).collect()
}

#[test]
fn multicast_delivers_to_every_destination() {
    let mut net = net(12, 3);
    net.submit_multicast(NodeId::new(1), &nodes(&[4, 7, 9]), 8, 0)
        .unwrap();
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 3, "one delivery per destination");
    assert_eq!(report.undelivered, 0);
    let mut dests: Vec<u32> = net
        .delivered_log()
        .iter()
        .map(|d| d.spec.destination.index())
        .collect();
    dests.sort_unstable();
    assert_eq!(dests, vec![4, 7, 9]);
    // All three share one request and one circuit.
    let log = net.delivered_log();
    assert!(log.iter().all(|d| d.request == log[0].request));
    assert!(log.iter().all(|d| d.circuit_at == log[0].circuit_at));
    assert!(net.is_quiescent());
    assert_eq!(net.busy_segments(), 0);
}

#[test]
fn nearer_taps_receive_earlier() {
    let mut net = net(12, 3);
    net.submit_multicast(NodeId::new(0), &nodes(&[3, 6, 9]), 16, 0)
        .unwrap();
    net.run_to_quiescence(10_000);
    let at = |d: u32| {
        net.delivered_log()
            .iter()
            .find(|m| m.spec.destination.index() == d)
            .unwrap()
            .delivered_at
    };
    assert!(at(3) < at(6));
    assert!(at(6) < at(9));
    // The stream flows one hop per tick past the taps.
    assert_eq!(at(6) - at(3), 3);
    assert_eq!(at(9) - at(6), 3);
}

#[test]
fn multicast_uses_one_circuit_not_three() {
    // One multicast to three destinations occupies one arc; three unicasts
    // need three circuits and (with k = 1) must serialise.
    let destinations = nodes(&[3, 5, 7]);
    let mut mc = net(10, 1);
    mc.submit_multicast(NodeId::new(0), &destinations, 32, 0)
        .unwrap();
    let mc_report = mc.run_to_quiescence(100_000);
    assert_eq!(mc_report.delivered, 3);

    let mut uc = net(10, 1);
    for d in &destinations {
        uc.submit(MessageSpec::new(NodeId::new(0), *d, 32)).unwrap();
    }
    let uc_report = uc.run_to_quiescence(100_000);
    assert_eq!(uc_report.delivered, 3);

    assert!(
        mc_report.makespan() * 2 < uc_report.makespan(),
        "multicast {} vs unicast {}",
        mc_report.makespan(),
        uc_report.makespan()
    );
}

#[test]
fn busy_tap_refuses_and_retries() {
    let mut net = net(12, 3);
    // Keep node 5 busy receiving a long unicast...
    net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(5), 120))
        .unwrap();
    // ... then multicast across it.
    net.submit_multicast(NodeId::new(0), &nodes(&[5, 8]), 4, 4)
        .unwrap();
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 3, "unicast + two multicast legs");
    assert!(report.refusals >= 1, "tap at busy node 5 must Nack once");
    assert!(net.is_quiescent());
}

#[test]
fn broadcast_to_all_other_nodes() {
    let n = 10u32;
    let mut net = net(n, 2);
    let everyone: Vec<NodeId> = (1..n).map(NodeId::new).collect();
    net.submit_multicast(NodeId::new(0), &everyone, 8, 0).unwrap();
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, (n - 1) as usize);
    assert_eq!(report.undelivered, 0);
}

#[test]
fn multicast_validation() {
    let mut net = net(8, 2);
    // Empty destination set.
    assert!(matches!(
        net.submit_multicast(NodeId::new(0), &[], 1, 0),
        Err(ProtocolError::SelfMessage { .. })
    ));
    // Source among destinations.
    assert!(net
        .submit_multicast(NodeId::new(0), &nodes(&[2, 0]), 1, 0)
        .is_err());
    // Duplicate destinations.
    assert!(net
        .submit_multicast(NodeId::new(0), &nodes(&[2, 2]), 1, 0)
        .is_err());
    // Out-of-ring node.
    assert!(matches!(
        net.submit_multicast(NodeId::new(0), &nodes(&[9]), 1, 0),
        Err(ProtocolError::UnknownNode { .. })
    ));
    // A single destination degenerates to unicast and works.
    net.submit_multicast(NodeId::new(0), &nodes(&[4]), 4, 0)
        .unwrap();
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 1);
}

#[test]
fn unordered_destination_lists_are_sorted_along_the_ring() {
    let mut net = net(12, 2);
    net.submit_multicast(NodeId::new(6), &nodes(&[2, 10, 8]), 4, 0)
        .unwrap();
    // Clockwise from 6: 8 (2 hops), 10 (4 hops), 2 (8 hops).
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 3);
    let at = |d: u32| {
        net.delivered_log()
            .iter()
            .find(|m| m.spec.destination.index() == d)
            .unwrap()
            .delivered_at
    };
    assert!(at(8) < at(10));
    assert!(at(10) < at(2));
}

#[test]
fn multicast_circuit_compacts_like_any_other() {
    let mut net = net(12, 4);
    net.submit_multicast(NodeId::new(0), &nodes(&[4, 8]), 200, 0)
        .unwrap();
    net.run(40);
    let bus = net.virtual_buses().next().expect("circuit live");
    assert!(
        bus.heights.iter().all(|h| h.index() == 0),
        "heights: {:?}",
        bus.heights
    );
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 2);
}
