//! Property-based tests of the RMB protocol engine.
//!
//! Each property runs full simulations with per-tick invariant checking
//! enabled, so every generated workload also stress-tests consistency,
//! continuity, head-pinning and the Table 1 port codes.

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_core::{CompactionMode, RmbNetwork, RmbNetworkBuilder};
use rmb_types::{MessageSpec, NodeId, RmbConfig};

/// A generated workload item: (source, destination offset, flits, delay).
type RawMsg = (u32, u32, u32, u64);

fn build_msgs(n: u32, raw: &[RawMsg]) -> Vec<MessageSpec> {
    raw.iter()
        .map(|&(s, off, flits, at)| {
            let src = s % n;
            let dst = (src + 1 + off % (n - 1)) % n;
            MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 24).at(at % 500)
        })
        .collect()
}

fn checked_builder(n: u32, k: u16) -> RmbNetworkBuilder {
    let cfg = RmbConfig::builder(n, k)
        .head_timeout(8 * n as u64)
        .retry_backoff(n as u64)
        .build()
        .unwrap();
    RmbNetwork::builder(cfg).checked(true)
}

fn checked_net(n: u32, k: u16) -> RmbNetwork {
    checked_builder(n, k).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted message is eventually delivered exactly once, and
    /// the network returns to the empty configuration.
    #[test]
    fn all_messages_delivered_and_network_drains(
        n in 3u32..20,
        k in 1u16..6,
        raw in vec(any::<RawMsg>(), 1..40),
    ) {
        let msgs = build_msgs(n, &raw);
        let mut net = checked_net(n, k);
        let ids = net.submit_all(msgs.clone()).unwrap();
        let report = net.run_to_quiescence(4_000_000);
        prop_assert!(!report.stalled, "stalled with {} delivered", report.delivered);
        prop_assert_eq!(report.delivered, msgs.len());
        prop_assert_eq!(net.busy_segments(), 0);
        prop_assert!(net.is_quiescent());
        // Exactly-once delivery: each request id appears once.
        let mut seen: Vec<u64> = net.delivered_log().iter().map(|d| d.request.get()).collect();
        seen.sort_unstable();
        let mut want: Vec<u64> = ids.iter().map(|r| r.get()).collect();
        want.sort_unstable();
        prop_assert_eq!(seen, want);
    }

    /// Latency is bounded below by the physical pipeline: header travel,
    /// Hack return, data stream, final flit.
    #[test]
    fn latency_respects_pipeline_lower_bound(
        n in 3u32..16,
        k in 1u16..5,
        raw in vec(any::<RawMsg>(), 1..16),
    ) {
        let msgs = build_msgs(n, &raw);
        let mut net = checked_net(n, k);
        net.submit_all(msgs).unwrap();
        let report = net.run_to_quiescence(4_000_000);
        prop_assert!(!report.stalled);
        let ring = net.ring();
        for d in net.delivered_log() {
            let span = ring.clockwise_distance(d.spec.source, d.spec.destination) as u64;
            // Head: >= span-1 extension ticks; Hack: span; DFs + FF:
            // >= data + 1 sends; FF travel: span.
            let lower = 3 * span + d.spec.data_flits as u64;
            prop_assert!(
                d.latency() >= lower,
                "latency {} below physical bound {} for {}",
                d.latency(), lower, d.spec
            );
            prop_assert!(d.setup_latency() >= 2 * span);
            prop_assert!(d.circuit_at <= d.delivered_at);
        }
    }

    /// The synchronous and handshake (uniform-clock) compactors deliver
    /// the same set of requests — the five-rule state machine implements
    /// the same cycles the idealised alternation does.
    #[test]
    fn handshake_equals_sync_on_delivered_set(
        n in 3u32..14,
        k in 1u16..5,
        raw in vec(any::<RawMsg>(), 1..20),
    ) {
        let msgs = build_msgs(n, &raw);

        let mut sync = checked_net(n, k);
        sync.submit_all(msgs.clone()).unwrap();
        let r_sync = sync.run_to_quiescence(4_000_000);

        let mut hs = checked_builder(n, k)
            .compaction_mode(CompactionMode::Handshake {
                periods: vec![1; n as usize],
            })
            .build();
        hs.submit_all(msgs).unwrap();
        let r_hs = hs.run_to_quiescence(4_000_000);

        prop_assert!(!r_sync.stalled && !r_hs.stalled);
        prop_assert_eq!(r_sync.delivered, r_hs.delivered);
        prop_assert!(hs.max_cycle_skew().unwrap() <= 1, "Lemma 1");
    }

    /// Lemma 1 holds for arbitrary per-INC activation periods, and the
    /// network still drains.
    #[test]
    fn lemma1_under_arbitrary_clock_skew(
        n in 3u32..12,
        k in 2u16..5,
        periods in vec(1u64..9, 3..12),
        raw in vec(any::<RawMsg>(), 1..12),
    ) {
        let n = n.min(periods.len() as u32).max(3);
        let periods: Vec<u64> = (0..n as usize)
            .map(|i| periods[i % periods.len()])
            .collect();
        let msgs = build_msgs(n, &raw);
        let mut net = checked_builder(n, k)
            .compaction_mode(CompactionMode::Handshake { periods })
            .build();
        net.submit_all(msgs.clone()).unwrap();
        let mut max_skew = 0;
        // Sample the skew during the run, not only at the end.
        while !net.is_quiescent() && net.now().get() < 2_000_000 {
            net.tick();
            max_skew = max_skew.max(net.max_cycle_skew().unwrap());
        }
        prop_assert!(net.is_quiescent(), "did not drain");
        prop_assert_eq!(net.report().delivered, msgs.len());
        prop_assert!(max_skew <= 1, "Lemma 1 violated: skew {}", max_skew);
    }

    /// With a single bus (k = 1) compaction never fires, yet everything
    /// still delivers — the RMB degenerates to a single shared ring bus.
    #[test]
    fn k1_degenerates_to_single_bus(
        n in 3u32..12,
        raw in vec(any::<RawMsg>(), 1..10),
    ) {
        let msgs = build_msgs(n, &raw);
        let mut net = checked_net(n, 1);
        net.submit_all(msgs.clone()).unwrap();
        let report = net.run_to_quiescence(4_000_000);
        prop_assert!(!report.stalled);
        prop_assert_eq!(report.delivered, msgs.len());
        prop_assert_eq!(report.compaction_moves, 0);
    }

    /// Theorem 1 (admission): when the network is otherwise idle, a request
    /// whose clockwise path exists is always granted on first attempt —
    /// no refusals, no retries.
    #[test]
    fn idle_network_always_admits(
        n in 3u32..24,
        k in 1u16..6,
        s in any::<u32>(),
        off in any::<u32>(),
        flits in 0u32..50,
    ) {
        let src = s % n;
        let dst = (src + 1 + off % (n - 1)) % n;
        let mut net = checked_net(n, k);
        prop_assert!(net.path_feasible(NodeId::new(src), NodeId::new(dst)));
        net.submit(MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits)).unwrap();
        let report = net.run_to_quiescence(1_000_000);
        prop_assert_eq!(report.delivered, 1);
        prop_assert_eq!(report.refusals, 0);
        prop_assert_eq!(net.delivered_log()[0].refusals, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The idle-tick fast-forward in `run_to_quiescence` is unobservable:
    /// a trickle workload with multi-thousand-tick gaps produces the same
    /// report (ticks, deliveries, refusals, compaction moves) and the
    /// same per-message delivery log as the naive one-tick-at-a-time run.
    #[test]
    fn fast_forward_matches_naive_run(
        n in 4u32..20,
        k in 1u16..5,
        raw in vec(any::<RawMsg>(), 1..12),
    ) {
        // Spread injections so most ticks have no due work (the case the
        // fast-forward exists for), with occasional bursts.
        let msgs: Vec<MessageSpec> = raw
            .iter()
            .map(|&(s, off, flits, at)| {
                let src = s % n;
                let dst = (src + 1 + off % (n - 1)) % n;
                MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 24)
                    .at((at % 8) * 5_000)
            })
            .collect();
        let run = |fast: bool| {
            let mut net = checked_builder(n, k).fast_forward(fast).build();
            net.submit_all(msgs.iter().copied()).unwrap();
            let r = net.run_to_quiescence(1_000_000);
            let log: Vec<_> = net
                .delivered_log()
                .iter()
                .map(|d| (d.request.get(), d.circuit_at, d.delivered_at, d.refusals))
                .collect();
            (r.ticks, r.delivered, r.refusals, r.compaction_moves, r.stalled, log)
        };
        prop_assert_eq!(run(true), run(false));
    }
}
