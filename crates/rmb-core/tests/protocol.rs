//! Protocol-level tests of the RMB network simulator: exact timing of the
//! routing protocol, compaction behaviour, refusal/retry, ablation modes,
//! and randomized invariant checking.

use rmb_core::{BusState, CompactionMode, RmbNetwork, RunReport};
use rmb_types::{
    AckMode, BusIndex, InsertionPolicy, MessageSpec, NodeId, RmbConfig, RmbConfigBuilder,
};

fn net(n: u32, k: u16) -> RmbNetwork {
    RmbNetwork::builder(RmbConfig::new(n, k).unwrap())
        .checked(true)
        .build()
}

fn msg(src: u32, dst: u32, flits: u32) -> MessageSpec {
    MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits)
}

#[test]
fn single_message_exact_timing() {
    // N=8, k=2, 0 -> 4 (span L=4), 4 data flits, injected at tick 0.
    //
    // t0 inject; t1..t3 header extends; head parked at n4 after t3;
    // t4 accept; Hack crosses 4 segments (t5..t8) -> circuit at t8;
    // DF0..DF3 sent t9..t12; FF sent t13; FF arrives t13+4 = t17.
    let mut net = net(8, 2);
    net.submit(msg(0, 4, 4)).unwrap();
    let report = net.run_to_quiescence(1_000);
    assert_eq!(report.delivered, 1);
    let d = &net.delivered_log()[0];
    assert_eq!(d.requested_at, 0);
    assert_eq!(d.circuit_at, 8);
    assert_eq!(d.delivered_at, 17);
    assert_eq!(d.refusals, 0);
    assert!(!report.stalled);
    assert!(net.is_quiescent());
    assert_eq!(net.busy_segments(), 0);
}

#[test]
fn adjacent_message_minimal_path() {
    // 0 -> 1: span 1. t0 inject (head parked at n1 = dst);
    // t1 accept; Hack 1 hop -> circuit at t2; DF at t3; FF t4; arrives t5.
    let mut net = net(4, 2);
    net.submit(msg(0, 1, 1)).unwrap();
    let report = net.run_to_quiescence(100);
    assert_eq!(report.delivered, 1);
    assert_eq!(net.delivered_log()[0].circuit_at, 2);
    assert_eq!(net.delivered_log()[0].delivered_at, 5);
}

#[test]
fn zero_data_flit_message_is_legal() {
    let mut net = net(6, 2);
    net.submit(msg(1, 3, 0)).unwrap();
    let report = net.run_to_quiescence(1_000);
    assert_eq!(report.delivered, 1);
}

#[test]
fn wraparound_path_crosses_node_zero() {
    let mut net = net(8, 2);
    net.submit(msg(6, 2, 4)).unwrap();
    let report = net.run_to_quiescence(1_000);
    assert_eq!(report.delivered, 1);
    // Span is 4 hops: 6->7->0->1->2.
    assert_eq!(net.delivered_log()[0].circuit_at, 8);
}

#[test]
fn second_circuit_compacts_below_first() {
    // Two long overlapping messages from the same region: the first is
    // compacted off the top bus, letting the second inject while the
    // first still streams.
    let mut net = net(12, 3);
    net.submit(msg(0, 8, 64)).unwrap();
    net.submit(msg(1, 7, 64)).unwrap();
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 2);
    assert!(report.compaction_moves > 0);
    // Both circuits overlap in time: the second need not wait for the
    // first to finish (full utilisation of the multiple buses).
    let d0 = &net.delivered_log()[0];
    let d1 = &net.delivered_log()[1];
    assert!(
        d1.circuit_at < d0.delivered_at || d0.circuit_at < d1.delivered_at,
        "circuits should overlap: {d0:?} {d1:?}"
    );
}

#[test]
fn without_compaction_top_bus_serialises_overlapping_requests() {
    let cfg = RmbConfig::builder(12, 3).compaction(false).build().unwrap();
    let mut without = RmbNetwork::builder(cfg).checked(true).build();
    without.submit(msg(0, 8, 64)).unwrap();
    without.submit(msg(1, 7, 64)).unwrap();
    let r_without = without.run_to_quiescence(10_000);
    assert_eq!(r_without.delivered, 2);
    assert_eq!(r_without.compaction_moves, 0);

    let mut with = net(12, 3);
    with.submit(msg(0, 8, 64)).unwrap();
    with.submit(msg(1, 7, 64)).unwrap();
    let r_with = with.run_to_quiescence(10_000);

    // Compaction strictly improves makespan for overlapping circuits.
    assert!(
        r_with.makespan() < r_without.makespan(),
        "with: {} without: {}",
        r_with.makespan(),
        r_without.makespan()
    );
}

#[test]
fn destination_busy_triggers_nack_and_retry() {
    // Two messages to the same destination: the second is refused while
    // the first is being received, then retried and delivered.
    let mut net = net(8, 2);
    net.submit(msg(0, 4, 40)).unwrap();
    net.submit(msg(2, 4, 4)).unwrap();
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 2);
    assert!(report.refusals >= 1, "one of the requests must be Nacked");
    // Whichever message lost the receive-port race carries the refusals.
    let total_refusals: u32 = net.delivered_log().iter().map(|d| d.refusals).sum();
    assert!(total_refusals >= 1);
}

#[test]
fn nack_releases_all_segments() {
    let mut net = net(8, 2);
    net.submit(msg(0, 4, 100)).unwrap();
    net.submit(msg(2, 4, 4)).unwrap();
    // Run until the refusal has happened and the Nack has torn down.
    net.run(40);
    // At most the two live circuits' segments are busy; the Nacked bus
    // must not leak segments. Invariant checking (set_checked) verifies
    // consistency; here we check the count is sane.
    let live_hops: usize = net
        .virtual_buses()
        .map(|b| b.active_hops(net.bus_state(b.id).expect("live bus")))
        .sum();
    assert_eq!(net.busy_segments(), live_hops);
}

#[test]
fn top_bus_busy_buffers_header_at_node() {
    // k = 1: a single bus segment. Two messages from the same source
    // cannot overlap at all; the second HF waits in the node buffer.
    let mut net = net(6, 1);
    net.submit(msg(0, 3, 8)).unwrap();
    net.submit(msg(0, 3, 8)).unwrap();
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 2);
    assert_eq!(report.compaction_moves, 0, "k=1 has nowhere to compact");
}

#[test]
fn single_send_limit_respected() {
    let mut net = net(8, 4);
    for _ in 0..3 {
        net.submit(msg(0, 4, 16)).unwrap();
    }
    let mut max_seen = 0;
    for _ in 0..200 {
        net.tick();
        let from_zero = net
            .virtual_buses()
            .filter(|b| b.spec.source == NodeId::new(0))
            .count();
        max_seen = max_seen.max(from_zero);
    }
    assert_eq!(max_seen, 1, "paper's base design: one send per PE");
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 3);
}

#[test]
fn multi_send_extension_allows_parallel_sends() {
    let cfg = RmbConfig::builder(8, 4)
        .max_concurrent_sends(2)
        .max_concurrent_receives(2)
        .build()
        .unwrap();
    let mut net = RmbNetwork::builder(cfg).checked(true).build();
    net.submit(msg(0, 4, 64)).unwrap();
    net.submit(msg(0, 5, 64)).unwrap();
    let mut max_seen = 0;
    for _ in 0..300 {
        net.tick();
        let from_zero = net
            .virtual_buses()
            .filter(|b| b.spec.source == NodeId::new(0))
            .count();
        max_seen = max_seen.max(from_zero);
    }
    assert_eq!(max_seen, 2, "future-work extension: two concurrent sends");
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 2);
}

#[test]
fn per_flit_ack_mode_slows_but_delivers() {
    let run = |mode: AckMode| -> RunReport {
        let cfg = RmbConfig::builder(8, 2).ack_mode(mode).build().unwrap();
        let mut net = RmbNetwork::builder(cfg).checked(true).build();
        net.submit(msg(0, 4, 32)).unwrap();
        net.run_to_quiescence(100_000)
    };
    let fast = run(AckMode::Unlimited);
    let windowed = run(AckMode::Windowed { window: 4 });
    let slow = run(AckMode::PerFlit);
    assert_eq!(fast.delivered, 1);
    assert_eq!(windowed.delivered, 1);
    assert_eq!(slow.delivered, 1);
    // Stop-and-wait over a 4-hop circuit costs ~2L per flit.
    assert!(slow.makespan() > windowed.makespan());
    assert!(windowed.makespan() > fast.makespan());
}

#[test]
fn any_free_bus_ablation_delivers() {
    let cfg = RmbConfig::builder(10, 3)
        .insertion(InsertionPolicy::AnyFreeBus)
        .build()
        .unwrap();
    let mut net = RmbNetwork::builder(cfg).checked(true).build();
    for s in 0..5 {
        net.submit(msg(s, s + 5, 16)).unwrap();
    }
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 5);
}

#[test]
fn early_compaction_ablation_freezes_pre_hack_buses() {
    let build = |early: bool| -> RmbConfig {
        RmbConfig::builder(12, 3)
            .early_compaction(early)
            .build()
            .unwrap()
    };
    // With early compaction the top bus is released before the Hack
    // returns; without it the second injection must wait longer.
    let mut early = RmbNetwork::new(build(true));
    early.submit(msg(0, 9, 4)).unwrap();
    early.run(6); // header still travelling / Hack in flight
    let moves_early = early.report().compaction_moves;

    let mut late = RmbNetwork::new(build(false));
    late.submit(msg(0, 9, 4)).unwrap();
    late.run(6);
    let moves_late = late.report().compaction_moves;

    assert!(moves_early > 0, "early compaction moves pre-Hack hops");
    assert_eq!(moves_late, 0, "late compaction must not touch pre-Hack hops");
}

#[test]
fn compaction_settles_circuits_on_lowest_buses() {
    // One long-lived circuit: after compaction quiesces, every hop should
    // sit on bus 0 (nothing below it).
    let mut net = net(10, 4);
    net.submit(msg(0, 6, 500)).unwrap();
    net.run(60);
    let bus = net.virtual_buses().next().expect("circuit is live");
    assert!(matches!(
        net.bus_state(bus.id),
        Some(BusState::Streaming(_))
    ));
    assert!(
        bus.heights.iter().all(|h| *h == BusIndex::new(0)),
        "heights: {:?}",
        bus.heights
    );
}

#[test]
fn compaction_makes_room_for_k_circuits_on_shared_hop() {
    // k = 3 overlapping circuits crossing one shared hop: all three can be
    // live at once thanks to compaction.
    let mut net = net(12, 3);
    net.submit(msg(0, 6, 300)).unwrap();
    net.submit(msg(1, 7, 300)).unwrap();
    net.submit(msg(2, 8, 300)).unwrap();
    net.run(80);
    assert_eq!(net.active_virtual_buses(), 3);
    assert!(net
        .virtual_buses()
        .all(|b| matches!(net.bus_state(b.id), Some(BusState::Streaming(_)))));
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 3);
}

#[test]
fn handshake_mode_uniform_clocks_delivers_same_messages() {
    let workload: Vec<MessageSpec> = (0..6).map(|s| msg(s, (s + 7) % 12, 24)).collect();

    let mut sync = net(12, 3);
    sync.submit_all(workload.clone()).unwrap();
    let r_sync = sync.run_to_quiescence(100_000);

    let mut hs = RmbNetwork::builder(RmbConfig::new(12, 3).unwrap())
        .checked(true)
        .compaction_mode(CompactionMode::Handshake {
            periods: vec![1; 12],
        })
        .build();
    hs.submit_all(workload).unwrap();
    let r_hs = hs.run_to_quiescence(100_000);

    assert_eq!(r_sync.delivered, 6);
    assert_eq!(r_hs.delivered, 6);
    assert!(hs.max_cycle_skew().unwrap() <= 1, "Lemma 1");
}

#[test]
fn handshake_mode_with_skewed_clocks_obeys_lemma1_and_delivers() {
    // Wildly different activation periods: INC 0 is 7x slower than INC 5.
    let periods = vec![7, 1, 3, 2, 5, 1, 4, 2, 6, 3];
    let mut hs = RmbNetwork::builder(RmbConfig::new(10, 3).unwrap())
        .checked(true)
        .compaction_mode(CompactionMode::Handshake { periods })
        .build();
    for s in 0..5 {
        hs.submit(msg(s, s + 5, 32)).unwrap();
    }
    let report = hs.run_to_quiescence(200_000);
    assert_eq!(report.delivered, 5);
    assert!(hs.max_cycle_skew().unwrap() <= 1, "Lemma 1 under skew");
    let transitions = hs.cycle_transitions().unwrap();
    assert!(transitions.iter().all(|&t| t > 0), "all INCs made progress");
}

#[test]
fn path_feasibility_oracle() {
    let mut net = net(8, 2);
    assert!(net.path_feasible(NodeId::new(0), NodeId::new(7)));
    net.submit(msg(0, 4, 400)).unwrap();
    net.submit(msg(1, 5, 400)).unwrap();
    net.run(40);
    // Hops 1..4 carry two circuits on k=2 buses: saturated.
    assert!(!net.path_feasible(NodeId::new(1), NodeId::new(3)));
    // A hop outside the congested stretch is free.
    assert!(net.path_feasible(NodeId::new(6), NodeId::new(7)));
}

#[test]
fn submit_validation() {
    let mut net = net(4, 2);
    assert!(net.submit(msg(0, 0, 1)).is_err());
    assert!(net.submit(msg(0, 9, 1)).is_err());
    assert!(net.submit(msg(9, 0, 1)).is_err());
    assert!(net.submit(msg(3, 0, 1)).is_ok());
}

#[test]
fn delayed_injection_waits_for_its_tick() {
    let mut net = net(6, 2);
    net.submit(msg(0, 3, 2).at(50)).unwrap();
    net.run(50);
    assert_eq!(net.active_virtual_buses(), 0, "not yet injected");
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 1);
    assert!(net.delivered_log()[0].requested_at == 50);
    assert!(net.delivered_log()[0].delivered_at > 50);
}

#[test]
fn saturated_ring_without_timeout_reaches_circular_wait() {
    // Every node sends to the diametrically opposite node simultaneously:
    // total segment demand is N * (N/2) = 128 > N * k = 64, so partial
    // circuits fill every hop and no header can advance — the circular
    // wait the paper's deadlock-avoidance argument does not cover.
    // (See EXPERIMENTS.md, deadlock study.)
    let n = 16u32;
    let mut net = net(n, 4);
    for s in 0..n {
        net.submit(msg(s, (s + n / 2) % n, 8)).unwrap();
    }
    let report = net.run_to_quiescence(1_000_000);
    assert!(report.stalled, "expected circular wait under saturation");
    assert_eq!(report.delivered, 0);
}

#[test]
fn saturation_with_head_timeout_eventually_drains() {
    // The head-timeout extension converts blocked headers into Nacks and
    // retries, which breaks the circular wait.
    let n = 16u32;
    let cfg = RmbConfig::builder(n, 4)
        .head_timeout(64)
        .retry_backoff(16)
        .build()
        .unwrap();
    let mut net = RmbNetwork::builder(cfg).checked(true).build();
    for s in 0..n {
        net.submit(msg(s, (s + n / 2) % n, 8)).unwrap();
    }
    let report = net.run_to_quiescence(1_000_000);
    assert_eq!(
        report.delivered,
        n as usize,
        "stalled={} refusals={}",
        report.stalled,
        report.refusals
    );
    assert!(!report.stalled);
    assert!(report.mean_utilization > 0.0);
}

#[test]
fn moderate_load_drains_without_timeout() {
    // The same permutation injected with staggered start times stays well
    // below saturation and drains under the paper's verbatim protocol.
    let n = 16u32;
    let mut net = net(n, 4);
    for s in 0..n {
        net.submit(msg(s, (s + n / 2) % n, 8).at(s as u64 * 40)).unwrap();
    }
    let report = net.run_to_quiescence(1_000_000);
    assert_eq!(report.delivered, n as usize, "stalled={}", report.stalled);
    assert!(!report.stalled);
}

#[test]
fn random_workload_keeps_invariants_and_drains() {
    // Deterministic pseudo-random workload over a mid-sized network with
    // per-tick invariant checking enabled.
    let n = 24u32;
    let mut net = net(n, 6);
    let mut x: u64 = 0x2545_f491_4f6c_dd1d;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..150 {
        let src = (next() % n as u64) as u32;
        let mut dst = (next() % n as u64) as u32;
        if dst == src {
            dst = (dst + 1) % n;
        }
        let flits = (next() % 32) as u32;
        net.submit(msg(src, dst, flits).at(i * 12)).unwrap();
    }
    let report = net.run_to_quiescence(2_000_000);
    assert_eq!(report.delivered, 150, "stalled={}", report.stalled);
    assert_eq!(net.busy_segments(), 0);
    net.check_invariants().unwrap();
}

#[test]
fn trace_records_protocol_lifecycle() {
    use rmb_sim::trace::TraceKind;
    let mut net = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
        .checked(true)
        .recording(true)
        .build();
    net.submit(msg(0, 3, 2)).unwrap();
    net.run_to_quiescence(1_000);
    let events = net.take_events();
    let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceKind::Inject));
    assert!(kinds.contains(&TraceKind::Extend));
    assert!(kinds.contains(&TraceKind::Accept));
    assert!(kinds.contains(&TraceKind::Deliver));
    assert!(kinds.contains(&TraceKind::Teardown));
    // Lifecycle order: inject before accept before deliver.
    let pos = |k: TraceKind| kinds.iter().position(|&x| x == k).unwrap();
    assert!(pos(TraceKind::Inject) < pos(TraceKind::Accept));
    assert!(pos(TraceKind::Accept) < pos(TraceKind::Deliver));
    assert!(pos(TraceKind::Deliver) < pos(TraceKind::Teardown));
}

#[test]
fn report_metrics_are_consistent() {
    let mut net = net(10, 2);
    net.submit(msg(0, 5, 10)).unwrap();
    net.submit(msg(5, 0, 10)).unwrap();
    let report = net.run_to_quiescence(10_000);
    assert_eq!(report.delivered, 2);
    assert_eq!(report.undelivered, 0);
    assert!(report.mean_latency() > 0.0);
    assert!(report.mean_setup_latency() > 0.0);
    assert!(report.mean_setup_latency() < report.mean_latency());
    assert!(report.makespan() <= report.ticks);
    assert!(report.peak_virtual_buses >= 1);
}

mod builder_misuse {
    use super::*;

    #[test]
    #[should_panic(expected = "one activation period per INC")]
    fn handshake_periods_must_match_ring() {
        let _ = RmbNetwork::builder(RmbConfig::new(8, 2).unwrap())
            .compaction_mode(CompactionMode::Handshake {
                periods: vec![1; 3],
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn handshake_periods_must_be_positive() {
        let _ = RmbNetwork::builder(RmbConfig::new(4, 2).unwrap())
            .compaction_mode(CompactionMode::Handshake {
                periods: vec![1, 0, 1, 1],
            })
            .build();
    }

    #[test]
    fn builder_type_is_reusable() {
        let b: RmbConfigBuilder = RmbConfig::builder(8, 2);
        let cfg = b.clone().compaction(false).build().unwrap();
        assert!(!cfg.compaction);
        let cfg2 = b.build().unwrap();
        assert!(cfg2.compaction);
    }

}
