//! Log-retention policy tests: windowed and counters-only retention keep
//! memory bounded without ever losing a record silently, and every
//! aggregate statistic matches the full-retention oracle bit for bit.

use rmb_core::{LogRetention, RmbNetwork};
use rmb_sim::SimRng;
use rmb_types::{MessageSpec, NodeId, RmbConfig};

fn cfg(n: u32, k: u16) -> RmbConfig {
    RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .unwrap()
}

/// A deterministic batch of random messages spread over a window.
fn workload(n: u32, count: usize, seed: u64) -> Vec<MessageSpec> {
    let mut rng = SimRng::seed(seed);
    (0..count)
        .map(|i| {
            let src = rng.index(n as usize).unwrap() as u32;
            let off = 1 + rng.index(n as usize - 1).unwrap() as u32;
            let dst = (src + off) % n;
            MessageSpec::new(NodeId::new(src), NodeId::new(dst), 4).at(i as u64 * 3)
        })
        .collect()
}

fn run(policy: LogRetention) -> RmbNetwork {
    let mut net = RmbNetwork::builder(cfg(16, 2)).log_retention(policy).build();
    net.submit_all(workload(16, 200, 42)).unwrap();
    net.run_to_quiescence(1_000_000);
    net
}

#[test]
fn window_and_counters_only_match_full_aggregates() {
    let full = run(LogRetention::Full);
    let oracle = full.report();
    assert_eq!(oracle.delivered, 200, "baseline must deliver everything");

    for policy in [LogRetention::Window(16), LogRetention::CountersOnly] {
        let net = run(policy);
        let r = net.report();
        assert_eq!(r.delivered, oracle.delivered, "{policy:?}");
        assert_eq!(r.undelivered, oracle.undelivered, "{policy:?}");
        assert_eq!(r.refusals, oracle.refusals, "{policy:?}");
        assert_eq!(r.ticks, oracle.ticks, "{policy:?}");
        assert_eq!(r.makespan(), oracle.makespan(), "{policy:?}");
        assert_eq!(r.mean_latency(), oracle.mean_latency(), "{policy:?}");
        assert_eq!(net.delivered_total(), full.delivered_total(), "{policy:?}");
    }
}

#[test]
fn window_retains_a_bounded_suffix() {
    let w = 16;
    let net = run(LogRetention::Window(w));
    let retained = net.delivered_log().len();
    assert!(retained >= w && retained <= 2 * w, "retained {retained}");
    // The retained records are exactly the tail of the full log.
    let full = run(LogRetention::Full);
    let tail = &full.delivered_log()[full.delivered_log().len() - retained..];
    assert_eq!(net.delivered_log(), tail);
    // And the absolute cursor of the first retained record is its index
    // in the full log.
    let base = net.delivered_total() as usize - retained;
    assert_eq!(net.delivered_since(base), tail);
}

#[test]
fn counters_only_retains_nothing() {
    let net = run(LogRetention::CountersOnly);
    assert!(net.delivered_log().is_empty());
    assert!(net.aborted_log().is_empty());
    assert_eq!(net.delivered_total(), 200);
    // A cursor at the current total yields the (empty) future.
    assert!(net.delivered_since(net.delivered_total() as usize).is_empty());
}

#[test]
#[should_panic(expected = "points below the retention window")]
fn stale_cursor_panics_instead_of_losing_records() {
    let net = run(LogRetention::CountersOnly);
    // Cursor 0 predates every dropped record: must fail loudly.
    let _ = net.delivered_since(0);
}

#[test]
fn polling_within_the_window_sees_every_delivery() {
    // Drive tick by tick, draining through absolute cursors; with a
    // window comfortably above per-tick completions nothing is missed.
    let mut net = RmbNetwork::builder(cfg(16, 2))
        .log_retention(LogRetention::Window(32))
        .build();
    let msgs = workload(16, 200, 43);
    net.submit_all(msgs).unwrap();
    let mut cursor = 0usize;
    let mut seen = 0usize;
    for _ in 0..1_000_000 {
        if net.is_quiescent() {
            break;
        }
        net.tick();
        let new = net.delivered_since(cursor);
        seen += new.len();
        cursor = net.delivered_total() as usize;
    }
    assert_eq!(seen, 200);
    assert_eq!(net.report().delivered, 200);
}

#[test]
fn latency_sketch_tracks_percentiles_under_counters_only() {
    let mut net = RmbNetwork::builder(cfg(16, 2))
        .log_retention(LogRetention::CountersOnly)
        .latency_sketch(true)
        .build();
    net.submit_all(workload(16, 200, 44)).unwrap();
    let report = net.run_to_quiescence(1_000_000);
    assert_eq!(report.delivered, 200);
    let p50 = net.latency_quantile(0.5).expect("sketch is on");
    let p999 = net.latency_quantile(0.999).expect("sketch is on");
    assert!(p50 >= 1 && p50 <= p999, "p50 {p50}, p999 {p999}");
    // The sketch's mean agrees with the aggregate mean despite the log
    // being empty.
    assert!(net.delivered_log().is_empty());
    assert!(report.mean_latency() > 0.0);
}

#[test]
fn sketch_disabled_by_default() {
    let net = run(LogRetention::Full);
    assert_eq!(net.latency_quantile(0.5), None);
}

#[test]
fn aborts_respect_retention_too() {
    // A fault-free saturated run with a tiny retry budget generates
    // aborts; counters-only must count them without retaining records.
    let build = |policy| {
        let mut net = RmbNetwork::builder(cfg(8, 1))
            .max_retries(1)
            .log_retention(policy)
            .build();
        net.submit_all(workload(8, 120, 45)).unwrap();
        net.run_to_quiescence(1_000_000);
        net
    };
    let full = build(LogRetention::Full);
    let counters = build(LogRetention::CountersOnly);
    assert_eq!(full.report().aborted, counters.report().aborted);
    assert_eq!(full.aborted_records(), counters.aborted_records());
    assert!(counters.aborted_log().is_empty());
    if full.aborted_records() > 0 {
        assert!(!full.aborted_log().is_empty());
    }
}
