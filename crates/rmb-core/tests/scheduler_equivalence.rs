//! Scheduler equivalence: the event-driven active-set engine must be
//! *byte-identical* to the dense per-tick sweep — same delivered log,
//! same protocol trace, same [`RunReport`] — over random workloads,
//! random fault schedules, and every protocol option. The dense sweep is
//! the oracle; any divergence is a scheduler bug by definition.
//!
//! The same contract covers the feasibility kernel: the packed-bitmap
//! default must match the slab-walk oracle, so every scenario here runs
//! three ways — (event, bitmap), (event, slab-walk), (dense, slab-walk) —
//! and all three observations must agree bit for bit (floats included).

use proptest::collection::vec;
use proptest::prelude::*;
use rmb_core::{CompactionMode, FeasibilityMode, RmbNetwork, RunReport, SchedulerMode};
use rmb_sim::trace::TraceEvent;
use rmb_types::{AckMode, BusIndex, FaultPlan, MessageSpec, NodeId, RmbConfig};

/// Workload item: (source, destination offset, flits, delay) — the same
/// shape the fault suite uses.
type RawMsg = (u32, u32, u32, u64);

fn build_msgs(n: u32, raw: &[RawMsg]) -> Vec<MessageSpec> {
    raw.iter()
        .map(|&(s, off, flits, at)| {
            let src = s % n;
            let dst = (src + 1 + off % (n - 1)) % n;
            MessageSpec::new(NodeId::new(src), NodeId::new(dst), flits % 24).at(at % 400)
        })
        .collect()
}

/// Raw fault item: (kind, at, node, bus, outage).
type RawFault = (u8, u64, u32, u16, u64);

fn build_plan(n: u32, k: u16, raw: &[RawFault]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(kind, at, node, bus, outage) in raw {
        let at = at % 2_000;
        let node = NodeId::new(node % n);
        let repair = if outage % 3 == 0 { None } else { Some(at + 1 + outage % 600) };
        plan = match kind % 4 {
            0 | 1 => plan.segment_stuck(at, node, BusIndex::new(bus % k), repair),
            2 => plan.link_cut(at, node, repair),
            _ => plan.inc_dead(at, node, repair),
        };
    }
    plan
}

/// Full observable behaviour of one run.
struct Observed {
    report: RunReport,
    log: Vec<(u64, u64, u64, u64, u32)>,
    events: Vec<TraceEvent>,
}

/// Runs `drive` on a fresh network under the given scheduler and captures
/// everything observable: the report, the delivered log, and the trace.
fn observe(
    cfg: RmbConfig,
    mode: SchedulerMode,
    feasibility: FeasibilityMode,
    compaction: CompactionMode,
    plan: &FaultPlan,
    seed: u64,
    drive: &dyn Fn(&mut RmbNetwork),
) -> Observed {
    let mut net = RmbNetwork::builder(cfg)
        .scheduler(mode)
        .feasibility(feasibility)
        .compaction_mode(compaction)
        .checked(true)
        .recording(true)
        .fault_plan(plan.clone())
        .fault_seed(seed)
        .max_retries(8)
        .build();
    drive(&mut net);
    let report = net.run_to_quiescence(4_000_000);
    let log = net
        .delivered_log()
        .iter()
        .map(|d| (d.request.get(), d.requested_at, d.circuit_at, d.delivered_at, d.refusals))
        .collect();
    Observed { report, log, events: net.take_events() }
}

/// Asserts byte-identical behaviour across engines and feasibility
/// kernels: (event, bitmap) vs (event, slab-walk) vs (dense, slab-walk).
fn assert_equivalent(
    cfg: RmbConfig,
    compaction: CompactionMode,
    plan: &FaultPlan,
    seed: u64,
    drive: &dyn Fn(&mut RmbNetwork),
) -> Result<(), TestCaseError> {
    let ev = observe(
        cfg,
        SchedulerMode::EventDriven,
        FeasibilityMode::Bitmap,
        compaction.clone(),
        plan,
        seed,
        drive,
    );
    let sw = observe(
        cfg,
        SchedulerMode::EventDriven,
        FeasibilityMode::SlabWalk,
        compaction.clone(),
        plan,
        seed,
        drive,
    );
    let dn = observe(
        cfg,
        SchedulerMode::DenseSweep,
        FeasibilityMode::SlabWalk,
        compaction,
        plan,
        seed,
        drive,
    );
    // Same scheduler, different feasibility kernel: everything matches.
    prop_assert_eq!(ev.report.ticks, sw.report.ticks);
    prop_assert_eq!(&ev.log, &sw.log);
    prop_assert_eq!(&ev.events, &sw.events);
    prop_assert_eq!(
        ev.report.mean_utilization.to_bits(),
        sw.report.mean_utilization.to_bits()
    );
    prop_assert_eq!(
        ev.report.mean_latency().to_bits(),
        sw.report.mean_latency().to_bits()
    );
    prop_assert_eq!(ev.report.ticks, dn.report.ticks);
    prop_assert_eq!(ev.report.delivered, dn.report.delivered);
    prop_assert_eq!(ev.report.refusals, dn.report.refusals);
    prop_assert_eq!(ev.report.retries, dn.report.retries);
    prop_assert_eq!(ev.report.aborted, dn.report.aborted);
    prop_assert_eq!(ev.report.compaction_moves, dn.report.compaction_moves);
    prop_assert_eq!(ev.report.fault_kills, dn.report.fault_kills);
    prop_assert_eq!(ev.report.stalled, dn.report.stalled);
    prop_assert_eq!(ev.report.peak_virtual_buses, dn.report.peak_virtual_buses);
    prop_assert_eq!(ev.report.makespan(), dn.report.makespan());
    prop_assert_eq!(ev.report.mean_latency().to_bits(), dn.report.mean_latency().to_bits());
    prop_assert_eq!(ev.report.mean_setup_latency().to_bits(), dn.report.mean_setup_latency().to_bits());
    prop_assert_eq!(ev.report.recovered(), dn.report.recovered());
    prop_assert_eq!(
        ev.report.mean_time_to_recover().to_bits(),
        dn.report.mean_time_to_recover().to_bits()
    );
    prop_assert_eq!(ev.report.max_time_to_recover(), dn.report.max_time_to_recover());
    // Both engines sample utilisation at the same ticks with the same
    // occupancy, so even the floating-point mean matches bit for bit.
    prop_assert_eq!(
        ev.report.mean_utilization.to_bits(),
        dn.report.mean_utilization.to_bits()
    );
    prop_assert_eq!(&ev.log, &dn.log);
    prop_assert_eq!(&ev.events, &dn.events);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random unicast workloads with random fault schedules, synchronous
    /// compaction (the configuration the dirty-set path accelerates).
    #[test]
    fn engines_agree_under_random_faults(
        n in 4u32..12,
        k in 1u16..4,
        raw in vec(any::<RawMsg>(), 1..10),
        faults in vec(any::<RawFault>(), 0..8),
        seed in any::<u64>(),
    ) {
        let msgs = build_msgs(n, &raw);
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(8 * n as u64)
            .retry_backoff(n as u64)
            .build()
            .unwrap();
        let plan = build_plan(n, k, &faults);
        assert_equivalent(cfg, CompactionMode::Synchronous, &plan, seed, &|net| {
            net.submit_all(msgs.clone()).unwrap();
        })?;
    }

    /// Same, under the handshake compactor (per-INC activation periods):
    /// the event engine keeps the dense per-INC scan there, but stream,
    /// establishment and injection still run through the active set.
    #[test]
    fn engines_agree_under_handshake_compaction(
        n in 4u32..10,
        k in 2u16..4,
        raw in vec(any::<RawMsg>(), 1..8),
        faults in vec(any::<RawFault>(), 0..5),
        periods in vec(1u64..4, 10..11),
        seed in any::<u64>(),
    ) {
        let msgs = build_msgs(n, &raw);
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(8 * n as u64)
            .retry_backoff(n as u64)
            .build()
            .unwrap();
        let plan = build_plan(n, k, &faults);
        let mode = CompactionMode::Handshake {
            periods: periods[..n as usize].to_vec(),
        };
        assert_equivalent(cfg, mode, &plan, seed, &|net| {
            net.submit_all(msgs.clone()).unwrap();
        })?;
    }
}

#[test]
fn engines_agree_on_multicast() {
    let cfg = RmbConfig::new(12, 3).unwrap();
    assert_equivalent(cfg, CompactionMode::Synchronous, &FaultPlan::new(), 1, &|net| {
        net.submit_multicast(
            NodeId::new(0),
            &[NodeId::new(3), NodeId::new(6), NodeId::new(9)],
            40,
            0,
        )
        .unwrap();
        net.submit_multicast(NodeId::new(5), &[NodeId::new(7), NodeId::new(10)], 12, 30)
            .unwrap();
        net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(8), 16))
            .unwrap();
    })
    .unwrap();
}

#[test]
fn engines_agree_with_windowed_acks_and_early_compaction() {
    let cfg = RmbConfig::builder(10, 4)
        .ack_mode(AckMode::Windowed { window: 3 })
        .early_compaction(true)
        .head_timeout(64)
        .build()
        .unwrap();
    let plan = FaultPlan::new()
        .segment_stuck(25, NodeId::new(4), BusIndex::new(0), Some(150))
        .inc_dead(300, NodeId::new(7), Some(380));
    assert_equivalent(cfg, CompactionMode::Synchronous, &plan, 7, &|net| {
        for s in 0..10u32 {
            net.submit(MessageSpec::new(NodeId::new(s), NodeId::new((s + 4) % 10), 30).at(u64::from(s) * 7))
                .unwrap();
        }
    })
    .unwrap();
}

#[test]
fn engines_agree_without_compaction_and_without_fast_forward() {
    // `compaction(false)` disables the dirty set entirely; fast-forward
    // off forces every idle tick through the full phase sequence.
    let cfg = RmbConfig::builder(8, 2).compaction(false).build().unwrap();
    let drive: &dyn Fn(&mut RmbNetwork) = &|net| {
        net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(5), 20)).unwrap();
        net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(6), 8).at(400)).unwrap();
    };
    let run = |mode: SchedulerMode| {
        let mut net = RmbNetwork::builder(cfg)
            .scheduler(mode)
            .fast_forward(false)
            .checked(true)
            .recording(true)
            .build();
        drive(&mut net);
        let report = net.run_to_quiescence(100_000);
        (report.ticks, report.delivered, report.compaction_moves, net.take_events())
    };
    assert_eq!(run(SchedulerMode::EventDriven), run(SchedulerMode::DenseSweep));
}
