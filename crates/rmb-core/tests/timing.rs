//! Exact-timing tests of the data-flit pipeline and flow control: the
//! arithmetic the simulator's stream model is built on, checked against
//! first principles.

use rmb_core::{BusState, RmbNetwork};
use rmb_types::{AckMode, MessageSpec, NodeId, RmbConfig};

fn run_one(n: u32, k: u16, span_dst: u32, flits: u32, mode: AckMode) -> (u64, u64) {
    let cfg = RmbConfig::builder(n, k).ack_mode(mode).build().unwrap();
    let mut net = RmbNetwork::builder(cfg).checked(true).build();
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(span_dst), flits))
        .unwrap();
    let report = net.run_to_quiescence(1_000_000);
    assert_eq!(report.delivered, 1);
    let d = &net.delivered_log()[0];
    (d.circuit_at, d.delivered_at)
}

/// Unlimited mode timeline for span L, m data flits, injection at t0 = 0:
/// inject t0; header extends L-1 times (t1..t(L-1)); accept at tL;
/// Hack crosses L hops -> circuit at t2L; DFs sent t2L+1..t2L+m;
/// FF sent t2L+m+1; arrives L later.
#[test]
fn unlimited_pipeline_formula_holds_across_spans_and_sizes() {
    for (n, dst, m) in [(8u32, 4u32, 4u32), (8, 1, 0), (12, 9, 25), (6, 5, 7)] {
        let span = u64::from(dst); // source is node 0
        let (circuit, done) = run_one(n, 2, dst, m, AckMode::Unlimited);
        assert_eq!(circuit, 2 * span, "N={n} dst={dst}");
        assert_eq!(
            done,
            2 * span + u64::from(m) + 1 + span,
            "N={n} dst={dst} m={m}"
        );
    }
}

/// Stop-and-wait (window 1): the source may only have one unacknowledged
/// data flit, and a Dack takes 2L ticks to return, so consecutive sends
/// are 2L apart.
#[test]
fn per_flit_mode_spaces_sends_by_round_trips() {
    let (n, dst, m) = (8u32, 4u32, 6u32);
    let span = u64::from(dst);
    let (circuit, done) = run_one(n, 2, dst, m, AckMode::PerFlit);
    assert_eq!(circuit, 2 * span);
    // First DF at circuit+1; DF i at circuit+1 + i*2L; last DF at
    // circuit+1 + (m-1)*2L; FF one tick later; FF arrives L later.
    let expected = circuit + 1 + (u64::from(m) - 1) * 2 * span + 1 + span;
    assert_eq!(done, expected);
}

/// A window of w >= 2L+1 never stalls: it behaves exactly like Unlimited.
#[test]
fn large_window_equals_unlimited() {
    let (n, dst, m) = (8u32, 4u32, 20u32);
    let span = u64::from(dst);
    let w = (2 * span + 1) as u32;
    let (_, unlimited_done) = run_one(n, 2, dst, m, AckMode::Unlimited);
    let (_, windowed_done) = run_one(n, 2, dst, m, AckMode::Windowed { window: w });
    assert_eq!(windowed_done, unlimited_done);
}

/// A window below the bandwidth-delay product throttles throughput to
/// w flits per 2L ticks.
#[test]
fn small_window_throttles_to_w_per_round_trip() {
    let (n, dst, m, w) = (8u32, 4u32, 24u32, 2u32);
    let span = u64::from(dst);
    let (circuit, done) = run_one(n, 2, dst, m, AckMode::Windowed { window: w });
    // Steady state: w flits per 2L window. The last flit leaves around
    // circuit + (m/w - 1) * 2L + ... — check the throughput bound rather
    // than the exact schedule.
    let lower = circuit + (u64::from(m / w) - 1) * 2 * span;
    let (_, unlimited_done) = run_one(n, 2, dst, m, AckMode::Unlimited);
    assert!(done > unlimited_done, "window must cost something");
    assert!(done >= lower, "done {done} < steady-state bound {lower}");
}

/// The stream state is observable mid-flight: delivered counts grow
/// monotonically, never exceeding sends.
#[test]
fn stream_counters_are_consistent_every_tick() {
    let cfg = RmbConfig::new(10, 2).unwrap();
    let mut net = RmbNetwork::builder(cfg).checked(true).build();
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(6), 40))
        .unwrap();
    let mut last_delivered = 0;
    for _ in 0..300 {
        net.tick();
        if let Some(bus) = net.virtual_buses().next() {
            if let Some(BusState::Streaming(s)) = net.bus_state(bus.id) {
                assert!(s.delivered >= last_delivered);
                assert!(s.delivered <= s.next_seq);
                // Acks trail deliveries: a flit is delivered L ticks after
                // its send, acked after 2L.
                assert!(s.acked <= s.delivered);
                last_delivered = s.delivered;
            }
        }
    }
    assert_eq!(last_delivered, 40, "all data flits observed delivered");
}

/// Latency histograms on the report bin correctly.
#[test]
fn report_latency_histogram() {
    let cfg = RmbConfig::new(8, 2).unwrap();
    let mut net = RmbNetwork::new(cfg);
    for i in 0..4 {
        net.submit(
            MessageSpec::new(NodeId::new(i), NodeId::new((i + 2) % 8), 4).at(u64::from(i) * 100),
        )
        .unwrap();
    }
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 4);
    let h = net.latency_histogram(8);
    assert_eq!(h.total(), 4);
    assert!(h.mean() > 0.0);
}
