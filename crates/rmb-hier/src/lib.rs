//! Hierarchical multi-ring RMB: local rings bridged over a global ring.
//!
//! A single RMB ring scales in `k` (parallel segments per hop) but not in
//! `N` — one ring means one injection domain and mean span `N/2`. This
//! crate composes several *local* rings (each a full
//! [`RmbNetwork`](rmb_core::RmbNetwork) with its own scheduler, fault
//! machinery and compaction) with one *global* ring joined through
//! **bridge INCs**: a bridge occupies one node position on its local ring
//! and one on the global ring.
//!
//! An inter-ring message is carried as a chain of ordinary RMB circuit
//! set-ups — source → bridge on the source ring, bridge → bridge on the
//! global ring, bridge → destination on the destination ring — with the
//! full Nack/teardown and retry/backoff protocol applied per leg. Each
//! ring keeps the paper's no-intermediate-buffering property; the only
//! buffering anywhere is the bridges' bounded queues (one *up* queue
//! toward the global ring and one *down* queue toward the local ring,
//! [`HierConfig::bridge_queue_depth`](rmb_types::HierConfig) slots each).
//! A leg is only launched once a slot at the receiving bridge is
//! reserved; when the queue is full the message stays where it is and
//! backs off — the up/down split makes the slot dependency acyclic, so
//! bridge queues cannot deadlock against each other.
//!
//! # Parallel execution
//!
//! The hierarchy can advance its rings across cores: build with
//! [`HierNetworkBuilder::exec_mode`] and
//! [`ExecMode::Sharded`](rmb_types::ExecMode) and each conservative time
//! window's ring-advance phase is striped over a persistent worker pool,
//! while all cross-ring coordination (leg launches, bridge queues,
//! harvesting) stays on the calling thread. The serial engine remains the
//! oracle: every report, log and trace is byte-identical across modes.
//!
//! # Examples
//!
//! ```
//! use rmb_hier::HierNetwork;
//! use rmb_types::{HierConfig, HierMessageSpec, NodeAddr, NodeId};
//!
//! // 4 local rings of 16 nodes, k = 4, bridges at position 0.
//! let cfg = HierConfig::builder(4, 16, 4).build()?;
//! let mut net = HierNetwork::new(cfg);
//! // r0.n3 → r2.n9 crosses two bridges and the global ring.
//! net.submit(HierMessageSpec::new(
//!     NodeAddr::new(0, NodeId::new(3)),
//!     NodeAddr::new(2, NodeId::new(9)),
//!     16,
//! ))?;
//! let report = net.run_to_quiescence(100_000);
//! assert_eq!(report.delivered, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
mod network;

pub use network::{HierAborted, HierDelivered, HierNetwork, HierNetworkBuilder, HierReport};
