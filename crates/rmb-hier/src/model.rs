//! Analytical latency model for hierarchical routes — the one source of
//! truth for bridge hop cost, shared with `rmb-analysis`.
//!
//! Each leg is an ordinary RMB circuit over `L` hops carrying `m` data
//! flits, so its unloaded delivery time is the single-ring model's
//! `3L + m + 1` (header out, `Hack` back, data streamed; see
//! `rmb-analysis::model`). Crossing a bridge adds [`BRIDGE_DWELL_TICKS`]:
//! the message enters the bounded queue on the tick its leg completes and
//! may launch the next leg on the following tick.

use rmb_types::{HierConfig, HierMessageSpec, NodeId};

/// Ticks a message dwells in a bridge queue between two legs on an
/// otherwise idle network (ingress on the delivery tick, egress launch on
/// the next).
pub const BRIDGE_DWELL_TICKS: u64 = 1;

/// Unloaded delivery time of one RMB circuit leg: `3·span + flits + 1`
/// ticks from injection to the final flit's arrival.
pub const fn leg_delivery_ticks(span: u64, data_flits: u32) -> u64 {
    3 * span + data_flits as u64 + 1
}

/// Predicts the end-to-end unloaded latency of `spec` under `cfg`:
/// the sum of its legs' circuit times plus one bridge dwell per bridge
/// crossed (zero for intra-ring traffic, two for inter-ring traffic).
pub fn unloaded_latency(cfg: &HierConfig, spec: &HierMessageSpec) -> u64 {
    let local = cfg.local().nodes();
    let m = spec.data_flits;
    if spec.is_intra_ring() {
        let span = local.clockwise_distance(spec.source.node, spec.destination.node);
        return leg_delivery_ticks(span as u64, m);
    }
    let l1 = local.clockwise_distance(spec.source.node, cfg.bridge()) as u64;
    let l2 = cfg.global().nodes().clockwise_distance(
        NodeId::new(spec.source.ring),
        NodeId::new(spec.destination.ring),
    ) as u64;
    let l3 = local.clockwise_distance(cfg.bridge(), spec.destination.node) as u64;
    leg_delivery_ticks(l1, m)
        + leg_delivery_ticks(l2, m)
        + leg_delivery_ticks(l3, m)
        + 2 * BRIDGE_DWELL_TICKS
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeAddr;

    fn cfg() -> HierConfig {
        HierConfig::builder(4, 16, 4).build().unwrap()
    }

    #[test]
    fn intra_ring_matches_single_ring_model() {
        let spec = HierMessageSpec::new(
            NodeAddr::new(1, NodeId::new(2)),
            NodeAddr::new(1, NodeId::new(7)),
            8,
        );
        // span 5, m 8: 3·5 + 8 + 1 = 24.
        assert_eq!(unloaded_latency(&cfg(), &spec), 24);
    }

    #[test]
    fn inter_ring_sums_three_legs_and_two_dwells() {
        let spec = HierMessageSpec::new(
            NodeAddr::new(0, NodeId::new(3)),
            NodeAddr::new(2, NodeId::new(9)),
            16,
        );
        // Leg spans: n3→n0 = 13, r0→r2 = 2, n0→n9 = 9.
        let want = leg_delivery_ticks(13, 16) + leg_delivery_ticks(2, 16)
            + leg_delivery_ticks(9, 16)
            + 2 * BRIDGE_DWELL_TICKS;
        assert_eq!(unloaded_latency(&cfg(), &spec), want);
    }
}
