//! The hierarchical network: local rings, a global ring, and the bridge
//! state machine that chains circuit legs across them.
//!
//! # Bridge state machine
//!
//! Every message owned by the hierarchy is in exactly one of these
//! states:
//!
//! ```text
//! AtSource ──(leg 1: source → bridge)──► AtBridge(up, source ring)
//!    │                                        │
//!    │ intra-ring                             │ (leg 2: global ring)
//!    ▼                                        ▼
//! InFlight ──► Done                      AtBridge(down, dest ring)
//!                                             │
//!                                             │ (leg 3: bridge → dest)
//!                                             ▼
//!                                        Done | Failed
//! ```
//!
//! Transitions out of `AtSource` and `AtBridge` only happen when a slot
//! at the *receiving* bridge queue is reserved first; a full queue means
//! refusal and linear backoff, with the message staying where it is. A
//! leg that exhausts its ring's retry budget moves the message to
//! `Failed`, releasing every slot it held, and the failure is reported as
//! a [`ProtocolError::LegAborted`] naming the leg.
//!
//! # Execution modes
//!
//! All cross-ring coupling lives in the coordinator phases above — leg
//! launching reads/writes bridge queues before any ring moves, and
//! harvesting drains ring logs after every ring has finished the tick. The
//! rings themselves advance independently in between. That structure is
//! what makes the conservative parallel engine exact rather than
//! approximate: under [`ExecMode::Sharded`], the ring-advance phase of
//! each synchronisation window runs on a [`ShardPool`] while both
//! coordinator phases stay on the calling thread, so *every* observable —
//! reports, delivery logs, trace events, per-ring RNG draws — is
//! byte-identical to [`ExecMode::Serial`]. The window length equals the
//! model's lookahead (see `DESIGN.md` §9b for the proof sketch); with
//! [`model::BRIDGE_DWELL_TICKS`] = 1 that is one tick per window.

use crate::model;
use rmb_async::ShardPool;
use rmb_core::{RmbNetwork, RunReport, SchedulerMode};
use rmb_sim::trace::{TraceEvent, TraceKind, TraceSink, VecSink};
use rmb_sim::Tick;
use rmb_types::{
    AbortedMessage, DeliveredMessage, ExecMode, FaultPlan, HierConfig, HierLeg, HierMessageSpec,
    MessageSpec, NodeId, PerfStats, ProtocolError, RequestId,
};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Completion record for a hierarchical message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierDelivered {
    /// The end-to-end hierarchical request.
    pub request: RequestId,
    /// The original specification.
    pub spec: HierMessageSpec,
    /// Tick at which the final leg's last flit arrived.
    pub delivered_at: u64,
    /// Bridge-queue refusals suffered along the way (per-leg circuit
    /// refusals are accounted inside each ring).
    pub bridge_refusals: u32,
}

impl HierDelivered {
    /// End-to-end latency in ticks, from injection to last flit.
    pub const fn latency(&self) -> u64 {
        self.delivered_at.saturating_sub(self.spec.inject_at)
    }
}

/// Terminal failure record for a hierarchical message: one of its legs
/// exhausted that ring's retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierAborted {
    /// The end-to-end hierarchical request.
    pub request: RequestId,
    /// The original specification.
    pub spec: HierMessageSpec,
    /// Why it failed: always [`ProtocolError::LegAborted`], naming the
    /// leg and the ring it ran on.
    pub error: ProtocolError,
    /// Tick at which the failing ring recorded the abort.
    pub aborted_at: u64,
}

/// Summary of a hierarchical run.
///
/// Equality ignores [`perf`](Self::perf): wall-clock measurement is host
/// metadata, and a sharded run's report must compare equal to the serial
/// oracle's even though the two clocks differ.
#[derive(Debug, Clone, Copy)]
pub struct HierReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Messages submitted.
    pub submitted: usize,
    /// Messages delivered end to end.
    pub delivered: usize,
    /// Messages that failed permanently on some leg.
    pub aborted: usize,
    /// Messages neither delivered nor aborted when the run ended.
    pub undelivered: usize,
    /// `true` when the run ended on the tick budget or a stall, not
    /// quiescence.
    pub stalled: bool,
    /// Bridge-queue refusals (full up/down queue at launch time).
    pub bridge_refusals: u64,
    /// Circuit refusals summed over every ring (Nacks inside legs).
    pub leg_refusals: u64,
    /// Leg retries summed over every ring.
    pub leg_retries: u64,
    /// Fault kills summed over every ring.
    pub fault_kills: u64,
    /// Tick of the last end-to-end delivery (0 when none).
    pub makespan: u64,
    /// Sum of end-to-end latencies of delivered messages.
    pub latency_sum: u64,
    /// Wall-clock measurement of the run (`None` for reports built by
    /// [`HierNetwork::report`], which does not time anything). Excluded
    /// from equality.
    pub perf: Option<PerfStats>,
}

impl PartialEq for HierReport {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `perf`, which is measurement metadata.
        (
            self.ticks,
            self.submitted,
            self.delivered,
            self.aborted,
            self.undelivered,
            self.stalled,
            self.bridge_refusals,
            self.leg_refusals,
            self.leg_retries,
            self.fault_kills,
            self.makespan,
            self.latency_sum,
        ) == (
            other.ticks,
            other.submitted,
            other.delivered,
            other.aborted,
            other.undelivered,
            other.stalled,
            other.bridge_refusals,
            other.leg_refusals,
            other.leg_retries,
            other.fault_kills,
            other.makespan,
            other.latency_sum,
        )
    }
}

impl HierReport {
    /// Mean end-to-end latency of delivered messages (0 when none).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.delivered as f64
    }
}

impl rmb_types::StatsReport for HierReport {
    fn ticks(&self) -> u64 {
        self.ticks
    }

    fn delivered_count(&self) -> u64 {
        self.delivered as u64
    }

    fn aborted_count(&self) -> u64 {
        self.aborted as u64
    }

    fn refusal_count(&self) -> u64 {
        self.bridge_refusals + self.leg_refusals
    }

    fn is_stalled(&self) -> bool {
        self.stalled
    }

    fn perf(&self) -> Option<PerfStats> {
        self.perf
    }

    fn latency(&self) -> rmb_types::LatencySummary {
        rmb_types::LatencySummary::mean_only(self.delivered as u64, self.mean_latency())
    }
}

/// Where a message currently is; see the module docs for the transition
/// diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting at its source PE (initial state, or backed off after a
    /// bridge-queue refusal).
    AtSource { not_before: u64 },
    /// A leg is in flight inside one ring. `from` is the bridge whose
    /// queue slot the message still occupies (the leg streams out of
    /// that bridge's buffer); `to` is the bridge holding a reservation
    /// for its arrival.
    InFlight {
        leg: HierLeg,
        from: Option<u32>,
        to: Option<u32>,
    },
    /// Parked in a bridge queue, allowed to launch its next leg at
    /// `not_before`.
    AtBridge { not_before: u64 },
    /// Delivered end to end.
    Done,
    /// Aborted on some leg.
    Failed,
}

#[derive(Debug, Clone, Copy)]
struct HierMsg {
    spec: HierMessageSpec,
    /// Bridge-queue refusals so far (drives the linear backoff).
    refusals: u32,
    stage: Stage,
}

/// One bridge INC: a bounded *up* queue toward the global ring and a
/// bounded *down* queue toward the local ring. Slot accounting covers
/// parked messages, inbound reservations and outbound legs still
/// streaming out of this bridge's buffer, so total buffering per
/// direction never exceeds the configured depth. Down slots drain
/// without further reservations, which makes the slot-dependency graph
/// acyclic (up → down → nothing): bridge queues cannot deadlock.
#[derive(Debug, Clone, Default)]
struct Bridge {
    up: VecDeque<u64>,
    down: VecDeque<u64>,
    up_reserved: u32,
    up_in_transit: u32,
    down_reserved: u32,
    down_in_transit: u32,
}

impl Bridge {
    fn up_occupancy(&self) -> u32 {
        self.up.len() as u32 + self.up_reserved + self.up_in_transit
    }

    fn down_occupancy(&self) -> u32 {
        self.down.len() as u32 + self.down_reserved + self.down_in_transit
    }
}

/// A hierarchical multi-ring RMB: `rings` local [`RmbNetwork`]s and one
/// global [`RmbNetwork`], ticked in lockstep, joined by bridge INCs.
///
/// See the crate docs for the routing scheme and an example; see
/// [`HierNetwork::builder`] for fault injection and instrumentation.
#[derive(Debug)]
pub struct HierNetwork {
    cfg: HierConfig,
    locals: Vec<RmbNetwork>,
    global: RmbNetwork,
    bridges: Vec<Bridge>,
    msgs: Vec<HierMsg>,
    /// Ids currently in `AtSource`, in submission (= id) order.
    at_source: Vec<u64>,
    /// `(carrier, ring-local request id) → hier message id` for every leg
    /// in flight. Carrier `r < rings` is local ring `r`; carrier `rings`
    /// is the global ring.
    in_flight: HashMap<(u32, u64), u64>,
    /// Per-carrier cursors into `delivered_log` / `aborted_log`.
    dcur: Vec<usize>,
    acur: Vec<usize>,
    now: u64,
    delivered: Vec<HierDelivered>,
    aborted: Vec<HierAborted>,
    live: usize,
    bridge_refusals: u64,
    latency_sum: u64,
    last_delivery_at: u64,
    last_progress: u64,
    checked: bool,
    recorder: Option<VecSink>,
    exec: ExecMode,
    /// Worker pool for [`ExecMode::Sharded`]; `None` under `Serial`.
    pool: Option<ShardPool>,
}

impl HierNetwork {
    /// Creates an idle hierarchy with default options (no faults, legs
    /// retry forever).
    pub fn new(cfg: HierConfig) -> Self {
        Self::builder(cfg).build()
    }

    /// Starts a builder over this configuration; see
    /// [`HierNetworkBuilder`].
    pub fn builder(cfg: HierConfig) -> HierNetworkBuilder {
        HierNetworkBuilder {
            local_plans: vec![FaultPlan::new(); cfg.rings() as usize],
            global_plan: FaultPlan::new(),
            cfg,
            fault_seed: 0,
            leg_max_retries: None,
            checked: false,
            recording: false,
            scheduler: SchedulerMode::EventDriven,
            exec: ExecMode::Serial,
        }
    }

    /// The static configuration.
    pub const fn config(&self) -> &HierConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub const fn now(&self) -> u64 {
        self.now
    }

    /// Read access to local ring `r` (its report, logs and traces).
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn local(&self, r: u32) -> &RmbNetwork {
        &self.locals[r as usize]
    }

    /// Read access to the global ring.
    pub fn global_ring(&self) -> &RmbNetwork {
        &self.global
    }

    /// Messages delivered end to end so far, in completion order.
    pub fn delivered_log(&self) -> &[HierDelivered] {
        &self.delivered
    }

    /// Messages that failed permanently so far, in abort order. Every
    /// entry's `error` is a [`ProtocolError::LegAborted`] naming the leg.
    pub fn aborted_log(&self) -> &[HierAborted] {
        &self.aborted
    }

    /// Messages submitted but not yet delivered or aborted.
    pub fn pending_messages(&self) -> usize {
        self.live
    }

    /// `true` once every submitted message reached a terminal state.
    pub fn is_quiescent(&self) -> bool {
        self.live == 0
    }

    /// Current occupancy of bridge `r`'s queues as `(up, down)`,
    /// including reservations and legs streaming out of its buffers.
    /// Never exceeds the configured depth per direction.
    pub fn bridge_load(&self, r: u32) -> (u32, u32) {
        let b = &self.bridges[r as usize];
        (b.up_occupancy(), b.down_occupancy())
    }

    /// Takes the hierarchy-level trace (bridge ingress/egress, queue
    /// refusals, end-to-end deliveries and aborts) and keeps recording
    /// into a fresh sink. Per-ring protocol traces are not recorded —
    /// tick the rings through their own recording option if needed.
    ///
    /// # Ordering contract
    ///
    /// Events are returned globally ordered by `(tick, ring, seq)`: first
    /// by the tick they occurred at, then by the ring (`node` field) they
    /// name, then by the order the coordinator emitted them within that
    /// tick and ring. Earlier versions returned raw emission order, which
    /// interleaved rings according to internal phase structure; the sorted
    /// order is what consumers can rely on, it is identical across
    /// [`ExecMode`]s, and the stable sort keeps per-ring causality intact.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self.recorder.take() {
            Some(sink) => {
                self.recorder = Some(VecSink::new());
                let mut events = sink.into_events();
                events.sort_by_key(|e| (e.at, e.node));
                events
            }
            None => Vec::new(),
        }
    }

    /// Submits a message for delivery.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownAddress`] when an endpoint is outside the
    /// hierarchy or names a bridge position, [`ProtocolError::SelfMessage`]
    /// when source and destination coincide.
    pub fn submit(&mut self, spec: HierMessageSpec) -> Result<RequestId, ProtocolError> {
        for addr in [spec.source, spec.destination] {
            if !self.cfg.contains(addr) || self.cfg.is_bridge(addr) {
                return Err(ProtocolError::unknown_address(addr));
            }
        }
        if spec.source == spec.destination {
            return Err(ProtocolError::self_message(spec.source.node));
        }
        let id = self.msgs.len() as u64;
        self.msgs.push(HierMsg {
            spec,
            refusals: 0,
            stage: Stage::AtSource {
                not_before: spec.inject_at,
            },
        });
        self.at_source.push(id);
        self.live += 1;
        Ok(RequestId::new(id))
    }

    /// Submits a batch, stopping at the first invalid spec.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit); earlier messages stay submitted.
    pub fn submit_all<I>(&mut self, specs: I) -> Result<Vec<RequestId>, ProtocolError>
    where
        I: IntoIterator<Item = HierMessageSpec>,
    {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Advances every ring by one synchronisation window (one tick, the
    /// model's lookahead), launching due legs first and harvesting leg
    /// completions afterwards.
    ///
    /// Both launch phases and the harvest run on the calling thread in
    /// every mode; only the ring-advance phase in between is striped
    /// across the shard pool under [`ExecMode::Sharded`]. Rings exchange
    /// no state inside a window, so the result is identical either way.
    pub fn tick(&mut self) {
        self.launch_source_legs();
        self.launch_bridge_legs();
        self.advance_rings(self.now + 1);
        self.harvest();
        self.now += 1;
        if self.checked {
            self.check_bridge_invariants();
        }
    }

    /// The parallel phase: every carrier ring advances itself to the
    /// window boundary `until`, independently of every other ring.
    fn advance_rings(&mut self, until: u64) {
        if let Some(pool) = &mut self.pool {
            let mut shards: Vec<&mut RmbNetwork> = self
                .locals
                .iter_mut()
                .chain(std::iter::once(&mut self.global))
                .collect();
            pool.run_shards(&mut shards, &|_, net| net.run_window(until));
        } else {
            for net in &mut self.locals {
                net.run_window(until);
            }
            self.global.run_window(until);
        }
    }

    /// The execution mode this hierarchy was built with.
    pub const fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// `true` when some ring has due work, or a message is due to launch
    /// a leg this tick.
    pub fn has_due_work(&self) -> bool {
        if self.locals.iter().any(RmbNetwork::has_due_work) || self.global.has_due_work() {
            return true;
        }
        let now = self.now;
        let due = |&id: &u64| match self.msgs[id as usize].stage {
            Stage::AtSource { not_before } | Stage::AtBridge { not_before } => not_before <= now,
            _ => false,
        };
        self.at_source.iter().any(due)
            || self
                .bridges
                .iter()
                .any(|b| b.up.front().is_some_and(&due) || b.down.front().is_some_and(&due))
    }

    /// Runs until every message is terminal, the tick budget is spent, or
    /// no progress is observed for a conservative stall window.
    ///
    /// The returned report carries a [`PerfStats`] timing this call
    /// (wall-clock metadata only — excluded from report equality).
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> HierReport {
        let start = Instant::now();
        let from = self.now;
        let stall_window = self.stall_window();
        let mut stalled = false;
        while !self.is_quiescent() {
            if self.now >= max_ticks {
                stalled = true;
                break;
            }
            self.tick();
            if !self.has_due_work() {
                // Only future-scheduled launches / backoffs remain; the
                // clock itself is the progress.
                self.last_progress = self.now;
            }
            if self.now.saturating_sub(self.last_progress) > stall_window {
                stalled = true;
                break;
            }
        }
        let mut report = self.report_with(stalled);
        report.perf = Some(PerfStats::measure(
            self.now - from,
            start.elapsed(),
            self.exec.threads(),
        ));
        report
    }

    /// Builds a report of everything observed so far.
    pub fn report(&self) -> HierReport {
        self.report_with(false)
    }

    fn report_with(&self, stalled: bool) -> HierReport {
        let mut leg_refusals = 0;
        let mut leg_retries = 0;
        let mut fault_kills = 0;
        for net in self.locals.iter().chain(std::iter::once(&self.global)) {
            let r: RunReport = net.report();
            leg_refusals += r.refusals;
            leg_retries += r.retries;
            fault_kills += r.fault_kills;
        }
        HierReport {
            ticks: self.now,
            submitted: self.msgs.len(),
            delivered: self.delivered.len(),
            aborted: self.aborted.len(),
            undelivered: self.live,
            stalled,
            bridge_refusals: self.bridge_refusals,
            leg_refusals,
            leg_retries,
            fault_kills,
            makespan: self.last_delivery_at,
            latency_sum: self.latency_sum,
            perf: None,
        }
    }

    /// Window for the no-progress stall detector: generous multiples of
    /// the span, backoff and timeout scales involved.
    fn stall_window(&self) -> u64 {
        let backoff = self
            .cfg
            .bridge_backoff()
            .max(self.cfg.local().node.retry_backoff)
            .max(self.cfg.global().node.retry_backoff);
        4 * self.cfg.total_nodes() as u64
            + 16 * backoff
            + 3 * self.cfg.local().head_timeout.unwrap_or(0)
            + 3 * self.cfg.global().head_timeout.unwrap_or(0)
            + 1024
    }

    // ------------------------------------------------------------------
    // Leg launching.
    // ------------------------------------------------------------------

    /// Launches due messages out of their source PEs: intra-ring traffic
    /// goes straight into its local ring; inter-ring traffic needs an up
    /// slot at its ring's bridge first.
    fn launch_source_legs(&mut self) {
        let mut list = std::mem::take(&mut self.at_source);
        list.retain(|&id| !self.try_launch_source(id));
        self.at_source = list;
    }

    /// Attempts the first leg of message `id`; `true` when it launched
    /// (and so left the source list).
    fn try_launch_source(&mut self, id: u64) -> bool {
        let now = self.now;
        let spec = {
            let m = &self.msgs[id as usize];
            match m.stage {
                Stage::AtSource { not_before } if not_before <= now => m.spec,
                _ => return false,
            }
        };
        if spec.is_intra_ring() {
            let r = spec.source.ring;
            let leg = MessageSpec::new(spec.source.node, spec.destination.node, spec.data_flits)
                .at(now);
            self.launch(id, r, leg, HierLeg::SourceLocal, None, None);
            return true;
        }
        let b = spec.source.ring;
        if self.bridges[b as usize].up_occupancy() >= self.cfg.bridge_queue_depth() {
            self.refuse(id, b, "up");
            let m = &mut self.msgs[id as usize];
            m.stage = Stage::AtSource {
                not_before: now + self.cfg.bridge_backoff() * m.refusals as u64,
            };
            return false;
        }
        self.bridges[b as usize].up_reserved += 1;
        let leg = MessageSpec::new(spec.source.node, self.cfg.bridge(), spec.data_flits).at(now);
        self.launch(id, b, leg, HierLeg::SourceLocal, None, Some(b));
        true
    }

    /// Launches due messages out of bridge queues: the down direction
    /// first (it never waits on another queue), then the up direction,
    /// which must reserve a down slot at the destination bridge. One
    /// launch per direction per bridge per tick — a bridge's egress is a
    /// single INC port.
    fn launch_bridge_legs(&mut self) {
        let now = self.now;
        let depth = self.cfg.bridge_queue_depth();
        for r in 0..self.cfg.rings() {
            if let Some(&id) = self.bridges[r as usize].down.front() {
                if self.due_at_bridge(id) {
                    self.bridges[r as usize].down.pop_front();
                    self.bridges[r as usize].down_in_transit += 1;
                    let spec = self.msgs[id as usize].spec;
                    let leg =
                        MessageSpec::new(self.cfg.bridge(), spec.destination.node, spec.data_flits)
                            .at(now);
                    self.launch(id, r, leg, HierLeg::DestLocal, Some(r), None);
                    self.trace(id, TraceKind::BridgeEgress, r, "dest-local leg launched");
                }
            }
            if let Some(&id) = self.bridges[r as usize].up.front() {
                if self.due_at_bridge(id) {
                    let dest = self.msgs[id as usize].spec.destination.ring;
                    if self.bridges[dest as usize].down_occupancy() >= depth {
                        self.refuse(id, dest, "down");
                        let m = &mut self.msgs[id as usize];
                        m.stage = Stage::AtBridge {
                            not_before: now + self.cfg.bridge_backoff() * m.refusals as u64,
                        };
                    } else {
                        self.bridges[r as usize].up.pop_front();
                        self.bridges[r as usize].up_in_transit += 1;
                        self.bridges[dest as usize].down_reserved += 1;
                        let flits = self.msgs[id as usize].spec.data_flits;
                        let leg =
                            MessageSpec::new(NodeId::new(r), NodeId::new(dest), flits).at(now);
                        let g = self.cfg.rings();
                        self.launch(id, g, leg, HierLeg::Global, Some(r), Some(dest));
                        self.trace(id, TraceKind::BridgeEgress, r, "global leg launched");
                    }
                }
            }
        }
    }

    /// Submits one leg into carrier `c` and records it as in flight.
    fn launch(
        &mut self,
        id: u64,
        c: u32,
        leg_spec: MessageSpec,
        leg: HierLeg,
        from: Option<u32>,
        to: Option<u32>,
    ) {
        let net = if (c as usize) < self.locals.len() {
            &mut self.locals[c as usize]
        } else {
            &mut self.global
        };
        let rid = net.submit(leg_spec).expect("leg spec is valid by construction");
        self.in_flight.insert((c, rid.get()), id);
        self.msgs[id as usize].stage = Stage::InFlight { leg, from, to };
        self.last_progress = self.now;
    }

    /// Counts a bridge-queue refusal against message `id` (the caller
    /// rewrites its stage with the backed-off `not_before`).
    fn refuse(&mut self, id: u64, bridge: u32, dir: &str) {
        self.msgs[id as usize].refusals += 1;
        self.bridge_refusals += 1;
        self.last_progress = self.now;
        if self.recorder.is_some() {
            let detail = format!("{dir} queue of bridge {bridge} full");
            self.record(id, TraceKind::Refuse, bridge, detail);
        }
    }

    fn due_at_bridge(&self, id: u64) -> bool {
        matches!(
            self.msgs[id as usize].stage,
            Stage::AtBridge { not_before } if not_before <= self.now
        )
    }

    // ------------------------------------------------------------------
    // Leg completion.
    // ------------------------------------------------------------------

    /// Drains every carrier's new deliveries and aborts, advancing the
    /// affected messages' state machines.
    fn harvest(&mut self) {
        for c in 0..=self.cfg.rings() {
            let net = if (c as usize) < self.locals.len() {
                &self.locals[c as usize]
            } else {
                &self.global
            };
            // Cursors are absolute sequence numbers (`delivered_total` /
            // `aborted_records`), so they remain valid under windowed log
            // retention inside the rings; `*_since` panics rather than
            // skip if this per-tick harvest ever falls behind a window.
            let (dlen, alen) = (net.delivered_total() as usize, net.aborted_records() as usize);
            if dlen > self.dcur[c as usize] {
                let new: Vec<DeliveredMessage> = net.delivered_since(self.dcur[c as usize]).to_vec();
                self.dcur[c as usize] = dlen;
                for d in new {
                    self.leg_delivered(c, &d);
                }
            }
            // Re-borrow: `leg_delivered` needed `&mut self`.
            let net = if (c as usize) < self.locals.len() {
                &self.locals[c as usize]
            } else {
                &self.global
            };
            if alen > self.acur[c as usize] {
                let new: Vec<AbortedMessage> = net.aborted_since(self.acur[c as usize]).to_vec();
                self.acur[c as usize] = alen;
                for a in new {
                    self.leg_aborted(c, &a);
                }
            }
        }
    }

    fn leg_delivered(&mut self, c: u32, d: &DeliveredMessage) {
        let id = self
            .in_flight
            .remove(&(c, d.request.get()))
            .expect("every carrier request belongs to a tracked leg");
        let Stage::InFlight { leg, from, to } = self.msgs[id as usize].stage else {
            unreachable!("a delivered leg implies an in-flight message");
        };
        self.last_progress = self.now;
        match (leg, to) {
            // Leg 1 of an inter-ring route: into the up queue. The dwell
            // clock starts at the tick the leg's last flit landed (equal
            // to `self.now` when harvest runs every window, but anchored
            // to the event so the formula stays exact under any window
            // length).
            (HierLeg::SourceLocal, Some(b)) => {
                self.bridges[b as usize].up_reserved -= 1;
                self.bridges[b as usize].up.push_back(id);
                self.msgs[id as usize].stage = Stage::AtBridge {
                    not_before: d.delivered_at + model::BRIDGE_DWELL_TICKS,
                };
                self.trace(id, TraceKind::BridgeIngress, b, "entered up queue");
            }
            // Leg 2: across the global ring, into the down queue.
            (HierLeg::Global, _) => {
                let (a, b) = (from.expect("global legs leave a bridge"), to.expect("global legs enter a bridge"));
                self.bridges[a as usize].up_in_transit -= 1;
                self.bridges[b as usize].down_reserved -= 1;
                self.bridges[b as usize].down.push_back(id);
                self.msgs[id as usize].stage = Stage::AtBridge {
                    not_before: d.delivered_at + model::BRIDGE_DWELL_TICKS,
                };
                self.trace(id, TraceKind::BridgeIngress, b, "entered down queue");
            }
            // Final leg (or the only leg of intra-ring traffic).
            (HierLeg::DestLocal, _) | (HierLeg::SourceLocal, None) => {
                if let Some(b) = from {
                    self.bridges[b as usize].down_in_transit -= 1;
                }
                let m = &mut self.msgs[id as usize];
                m.stage = Stage::Done;
                let rec = HierDelivered {
                    request: RequestId::new(id),
                    spec: m.spec,
                    delivered_at: d.delivered_at,
                    bridge_refusals: m.refusals,
                };
                self.latency_sum += rec.latency();
                self.last_delivery_at = self.last_delivery_at.max(d.delivered_at);
                self.delivered.push(rec);
                self.live -= 1;
                let ring = rec.spec.destination.ring;
                self.trace(id, TraceKind::Deliver, ring, "delivered end to end");
            }
        }
    }

    fn leg_aborted(&mut self, c: u32, a: &AbortedMessage) {
        let id = self
            .in_flight
            .remove(&(c, a.request.get()))
            .expect("every carrier request belongs to a tracked leg");
        let Stage::InFlight { leg, from, to } = self.msgs[id as usize].stage else {
            unreachable!("an aborted leg implies an in-flight message");
        };
        // Release every slot the dead message held or reserved.
        if let Some(b) = from {
            match leg {
                HierLeg::Global => self.bridges[b as usize].up_in_transit -= 1,
                HierLeg::DestLocal => self.bridges[b as usize].down_in_transit -= 1,
                HierLeg::SourceLocal => unreachable!("leg 1 launches from a PE, not a bridge"),
            }
        }
        if let Some(b) = to {
            match leg {
                HierLeg::SourceLocal => self.bridges[b as usize].up_reserved -= 1,
                HierLeg::Global => self.bridges[b as usize].down_reserved -= 1,
                HierLeg::DestLocal => unreachable!("the final leg reserves nothing"),
            }
        }
        let ring = if c < self.cfg.rings() { Some(c) } else { None };
        let m = &mut self.msgs[id as usize];
        m.stage = Stage::Failed;
        let rec = HierAborted {
            request: RequestId::new(id),
            spec: m.spec,
            error: ProtocolError::leg_aborted(leg, ring, RequestId::new(id)),
            aborted_at: a.aborted_at,
        };
        self.aborted.push(rec);
        self.live -= 1;
        self.last_progress = self.now;
        let at = ring.unwrap_or(self.cfg.rings());
        self.trace(id, TraceKind::Abort, at, "leg aborted, message dropped");
    }

    // ------------------------------------------------------------------
    // Instrumentation.
    // ------------------------------------------------------------------

    fn trace(&mut self, id: u64, kind: TraceKind, ring: u32, detail: &str) {
        if self.recorder.is_some() {
            self.record(id, kind, ring, detail.to_owned());
        }
    }

    fn record(&mut self, id: u64, kind: TraceKind, ring: u32, detail: String) {
        if let Some(rec) = &mut self.recorder {
            rec.record(TraceEvent {
                at: Tick::new(self.now),
                kind,
                id: Some(id),
                node: Some(ring),
                bus: None,
                detail,
            });
        }
    }

    /// Panics when slot accounting drifted: occupancy above depth, or
    /// counters inconsistent with the message stages.
    fn check_bridge_invariants(&self) {
        let depth = self.cfg.bridge_queue_depth();
        for (r, b) in self.bridges.iter().enumerate() {
            assert!(
                b.up_occupancy() <= depth && b.down_occupancy() <= depth,
                "bridge {r} over depth: up {} down {} (depth {depth})",
                b.up_occupancy(),
                b.down_occupancy(),
            );
            for &id in b.up.iter().chain(b.down.iter()) {
                assert!(
                    matches!(self.msgs[id as usize].stage, Stage::AtBridge { .. }),
                    "queued message {id} not AtBridge"
                );
            }
        }
        let terminal = self
            .msgs
            .iter()
            .filter(|m| matches!(m.stage, Stage::Done | Stage::Failed))
            .count();
        assert_eq!(self.msgs.len() - terminal, self.live, "live count drifted");
    }
}

/// Builds a [`HierNetwork`]: per-ring fault plans, retry budget and
/// instrumentation.
#[derive(Debug, Clone)]
pub struct HierNetworkBuilder {
    cfg: HierConfig,
    local_plans: Vec<FaultPlan>,
    global_plan: FaultPlan,
    fault_seed: u64,
    leg_max_retries: Option<u32>,
    checked: bool,
    recording: bool,
    scheduler: SchedulerMode,
    exec: ExecMode,
}

impl HierNetworkBuilder {
    /// Installs a deterministic fault schedule on local ring `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    #[must_use]
    pub fn local_fault_plan(mut self, r: u32, plan: FaultPlan) -> Self {
        self.local_plans[r as usize] = plan;
        self
    }

    /// Installs a deterministic fault schedule on the global ring.
    #[must_use]
    pub fn global_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.global_plan = plan;
        self
    }

    /// Seeds the fault-retry jitter streams (each ring gets a distinct
    /// derived seed).
    #[must_use]
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Bounds retries per leg: a leg refused more than `limit` times
    /// aborts its whole message (reported as
    /// [`ProtocolError::LegAborted`]). Without it legs retry forever,
    /// the classic protocol behaviour.
    #[must_use]
    pub fn leg_max_retries(mut self, limit: u32) -> Self {
        self.leg_max_retries = Some(limit);
        self
    }

    /// Enables invariant checking: per-tick protocol invariants inside
    /// every ring, plus bridge slot accounting at the hierarchy level.
    #[must_use]
    pub fn checked(mut self, on: bool) -> Self {
        self.checked = on;
        self
    }

    /// Records the hierarchy-level trace (bridge ingress/egress, queue
    /// refusals, end-to-end completions).
    #[must_use]
    pub fn recording(mut self, on: bool) -> Self {
        self.recording = on;
        self
    }

    /// Selects the per-tick engine driving every ring.
    #[must_use]
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Selects the execution mode: [`ExecMode::Serial`] (default) runs
    /// every ring on the calling thread; [`ExecMode::Sharded`] advances
    /// rings on a worker pool inside each conservative window. The mode
    /// changes wall-clock time only — reports, logs, traces and RNG
    /// streams are byte-identical across modes (the exec-equivalence
    /// suite enforces this).
    #[must_use]
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// Constructs the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics when a fault plan names nodes or buses outside its ring.
    #[must_use]
    pub fn build(self) -> HierNetwork {
        let rings = self.cfg.rings();
        let mut locals = Vec::with_capacity(rings as usize);
        for (r, plan) in self.local_plans.into_iter().enumerate() {
            let mut b = RmbNetwork::builder(*self.cfg.local())
                .fault_plan(plan)
                .fault_seed(self.fault_seed.wrapping_add(r as u64 + 1))
                .checked(self.checked)
                .scheduler(self.scheduler);
            if let Some(limit) = self.leg_max_retries {
                b = b.max_retries(limit);
            }
            locals.push(b.build());
        }
        let mut g = RmbNetwork::builder(*self.cfg.global())
            .fault_plan(self.global_plan)
            .fault_seed(self.fault_seed)
            .checked(self.checked)
            .scheduler(self.scheduler);
        if let Some(limit) = self.leg_max_retries {
            g = g.max_retries(limit);
        }
        let carriers = rings as usize + 1;
        HierNetwork {
            bridges: vec![Bridge::default(); rings as usize],
            cfg: self.cfg,
            locals,
            global: g.build(),
            msgs: Vec::new(),
            at_source: Vec::new(),
            in_flight: HashMap::new(),
            dcur: vec![0; carriers],
            acur: vec![0; carriers],
            now: 0,
            delivered: Vec::new(),
            aborted: Vec::new(),
            live: 0,
            bridge_refusals: 0,
            latency_sum: 0,
            last_delivery_at: 0,
            last_progress: 0,
            checked: self.checked,
            recorder: self.recording.then(VecSink::new),
            exec: self.exec,
            pool: self
                .exec
                .is_sharded()
                .then(|| ShardPool::new(self.exec.threads())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeAddr;

    fn addr(ring: u32, node: u32) -> NodeAddr {
        NodeAddr::new(ring, NodeId::new(node))
    }

    fn small() -> HierConfig {
        HierConfig::builder(2, 8, 2).build().unwrap()
    }

    #[test]
    fn submit_validates_addresses() {
        let mut net = HierNetwork::new(small());
        let ok = HierMessageSpec::new(addr(0, 1), addr(1, 2), 4);
        assert!(net.submit(ok).is_ok());
        let bridge = HierMessageSpec::new(addr(0, 1), addr(1, 0), 4);
        assert!(matches!(
            net.submit(bridge),
            Err(ProtocolError::UnknownAddress { .. })
        ));
        let far = HierMessageSpec::new(addr(2, 1), addr(1, 2), 4);
        assert!(matches!(
            net.submit(far),
            Err(ProtocolError::UnknownAddress { .. })
        ));
        let selfmsg = HierMessageSpec::new(addr(1, 3), addr(1, 3), 4);
        assert!(matches!(
            net.submit(selfmsg),
            Err(ProtocolError::SelfMessage { .. })
        ));
    }

    #[test]
    fn unloaded_runs_match_the_analytical_model() {
        for spec in [
            HierMessageSpec::new(addr(0, 2), addr(0, 6), 8), // intra
            HierMessageSpec::new(addr(0, 3), addr(1, 5), 8), // inter
            HierMessageSpec::new(addr(1, 7), addr(0, 1), 16), // inter, wrap
        ] {
            let cfg = small();
            let mut net = HierNetwork::builder(cfg).checked(true).build();
            net.submit(spec).unwrap();
            let report = net.run_to_quiescence(10_000);
            assert_eq!(report.delivered, 1, "{spec}");
            assert_eq!(
                net.delivered_log()[0].latency(),
                model::unloaded_latency(&cfg, &spec),
                "{spec}"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut net = HierNetwork::builder(small()).recording(true).build();
            for i in 0..20u32 {
                let src = addr(i % 2, 1 + i % 7);
                let dst = addr((i + 1) % 2, 1 + (i + 3) % 7);
                net.submit(HierMessageSpec::new(src, dst, 4).at(u64::from(i) * 3))
                    .unwrap();
            }
            let report = net.run_to_quiescence(100_000);
            (report, net.delivered_log().to_vec(), net.take_events())
        };
        let (r1, d1, e1) = run();
        let (r2, d2, e2) = run();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
        assert_eq!(e1, e2);
        assert_eq!(r1.delivered, 20);
    }

    #[test]
    fn bounded_queue_refuses_and_recovers() {
        // Depth 1 with a burst of inter-ring messages: refusals must
        // occur, yet everything is delivered and the bound holds (the
        // checked build panics on any overflow).
        let cfg = HierConfig::builder(2, 8, 2)
            .bridge_queue_depth(1)
            .bridge_backoff(4)
            .build()
            .unwrap();
        let mut net = HierNetwork::builder(cfg).checked(true).build();
        for i in 0..10u32 {
            net.submit(HierMessageSpec::new(addr(0, 1 + i % 7), addr(1, 1 + (i + 2) % 7), 8))
                .unwrap();
        }
        let report = net.run_to_quiescence(1_000_000);
        assert_eq!(report.delivered, 10);
        assert!(report.bridge_refusals > 0, "depth 1 must refuse a burst");
        assert_eq!(net.bridge_load(0), (0, 0));
        assert_eq!(net.bridge_load(1), (0, 0));
    }

    #[test]
    fn traces_name_bridge_crossings() {
        let mut net = HierNetwork::builder(small()).recording(true).build();
        net.submit(HierMessageSpec::new(addr(0, 3), addr(1, 5), 4))
            .unwrap();
        net.run_to_quiescence(10_000);
        let events = net.take_events();
        let count = |k: TraceKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::BridgeIngress), 2, "up then down queue");
        assert_eq!(count(TraceKind::BridgeEgress), 2, "global then dest-local");
        assert_eq!(count(TraceKind::Deliver), 1);
    }

    #[test]
    fn intra_ring_traffic_never_touches_bridges() {
        let mut net = HierNetwork::builder(small()).recording(true).checked(true).build();
        for i in 0..6u32 {
            net.submit(HierMessageSpec::new(addr(1, 1 + i), addr(1, 1 + (i + 2) % 7), 4))
                .unwrap();
        }
        let report = net.run_to_quiescence(10_000);
        assert_eq!(report.delivered, 6);
        assert_eq!(report.bridge_refusals, 0);
        let events = net.take_events();
        assert!(events
            .iter()
            .all(|e| !matches!(e.kind, TraceKind::BridgeIngress | TraceKind::BridgeEgress)));
        // The global ring never saw a request.
        assert_eq!(net.global_ring().report().delivered, 0);
    }
}
