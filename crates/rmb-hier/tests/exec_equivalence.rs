//! Scheduler-equivalence suite for the execution modes: the serial
//! engine is the oracle, and `Sharded(n)` must reproduce it **byte for
//! byte** — hierarchy report, delivery and abort logs, trace events,
//! per-ring logs and counters (which pin the per-ring RNG streams) — for
//! every thread count, under random faults, locality mixes and bridge
//! overflow. The only thing a mode may change is wall-clock time.

use proptest::prelude::*;
use rmb_hier::{HierAborted, HierDelivered, HierNetwork, HierReport};
use rmb_sim::trace::TraceEvent;
use rmb_sim::SimRng;
use rmb_types::{ExecMode, HierConfig, HierMessageSpec, NodeId, StatsReport};
use rmb_workloads::{FaultScenario, LocalityTraffic};

/// Everything observable from one run. `ring_state` carries, per carrier
/// (locals then global), the full delivery log plus the counters that are
/// sensitive to every RNG draw and scheduling decision inside the ring.
struct Observed {
    report: HierReport,
    report_json: String,
    delivered: Vec<HierDelivered>,
    aborted: Vec<HierAborted>,
    events: Vec<TraceEvent>,
    ring_state: Vec<(Vec<rmb_types::DeliveredMessage>, u64, u64, u64, u64)>,
}

struct Scenario {
    cfg: HierConfig,
    fault_fraction: f64,
    permanent: bool,
    seed: u64,
    locality: f64,
    count: usize,
    max_ticks: u64,
}

fn run(s: &Scenario, mode: ExecMode) -> Observed {
    let rings = s.cfg.rings();
    let nodes = s.cfg.local().nodes().get();
    let k = s.cfg.local().buses();
    let scenario = FaultScenario {
        fraction: s.fault_fraction,
        horizon: 3_000,
        outage: if s.permanent { None } else { Some(500) },
    };
    let mut rng = SimRng::seed(s.seed);
    let mut builder = HierNetwork::builder(s.cfg)
        .checked(true)
        .recording(true)
        .fault_seed(s.seed)
        .leg_max_retries(4)
        .exec_mode(mode);
    for r in 0..rings {
        builder = builder.local_fault_plan(r, scenario.draw(nodes, k, &mut rng));
    }
    builder = builder.global_fault_plan(scenario.draw(rings, k, &mut rng));
    let mut net = builder.build();
    assert_eq!(net.exec_mode(), mode);

    let msgs = LocalityTraffic {
        rings,
        nodes,
        bridge: NodeId::new(0),
        locality: s.locality,
        flits: 6,
    }
    .generate(s.count, 1_500, &mut rng);
    net.submit_all(msgs).unwrap();
    let report = net.run_to_quiescence(s.max_ticks);

    // Timed runs carry perf; it must record the mode's thread count.
    let perf = report.perf.expect("run_to_quiescence times itself");
    assert_eq!(perf.threads as usize, mode.threads());

    let ring_state = (0..=rings)
        .map(|c| {
            let ring = if c < rings { net.local(c) } else { net.global_ring() };
            let r = ring.report();
            (
                ring.delivered_log().to_vec(),
                r.refusals,
                r.retries,
                r.fault_kills,
                r.compaction_moves,
            )
        })
        .collect();
    Observed {
        report,
        // `report()` is untimed (perf = null), so the canonical JSON row
        // must be byte-identical across modes, not merely field-equal.
        report_json: net.report().to_json_object(),
        delivered: net.delivered_log().to_vec(),
        aborted: net.aborted_log().to_vec(),
        events: net.take_events(),
        ring_state,
    }
}

fn assert_equivalent(oracle: &Observed, sharded: &Observed, label: &str) {
    assert_eq!(oracle.report, sharded.report, "{label}: report");
    assert_eq!(
        oracle.report.latency_sum, sharded.report.latency_sum,
        "{label}: latency_sum"
    );
    assert_eq!(
        oracle.report_json, sharded.report_json,
        "{label}: canonical JSON row"
    );
    assert_eq!(oracle.delivered, sharded.delivered, "{label}: delivered log");
    assert_eq!(oracle.aborted, sharded.aborted, "{label}: aborted log");
    assert_eq!(oracle.events, sharded.events, "{label}: trace events");
    for (c, (a, b)) in oracle.ring_state.iter().zip(&sharded.ring_state).enumerate() {
        assert_eq!(a.0, b.0, "{label}: carrier {c} delivery log");
        assert_eq!(
            (a.1, a.2, a.3, a.4),
            (b.1, b.2, b.3, b.4),
            "{label}: carrier {c} counters (refusals, retries, fault_kills, compaction_moves)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core property: for random hierarchies, fault mixes, traffic
    /// localities, queue depths and thread counts, `Sharded(t)` equals
    /// the serial oracle on every observable.
    #[test]
    fn sharded_matches_serial_oracle(
        rings in 2u32..5,
        nodes in 4u32..10,
        k in 1u16..4,
        depth in 1u32..4,
        locality_pct in 0u32..101,
        fault_fraction in 0u32..35,
        permanent in any::<bool>(),
        count in 10usize..50,
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        let cfg = HierConfig::builder(rings, nodes, k)
            .bridge_queue_depth(depth)
            .build()
            .unwrap();
        let s = Scenario {
            cfg,
            fault_fraction: f64::from(fault_fraction) / 100.0,
            permanent,
            seed,
            locality: f64::from(locality_pct) / 100.0,
            count,
            max_ticks: 10_000_000,
        };
        let oracle = run(&s, ExecMode::Serial);
        let sharded = run(&s, ExecMode::Sharded(threads));
        assert_equivalent(&oracle, &sharded, &format!("sharded({threads})"));
    }
}

/// The PR 3 acceptance scenario (4 rings, N=16, k=4, locality 0.8,
/// transient faults everywhere, retry forever → zero loss) must hold
/// unchanged in every mode, with byte-identical reports.
#[test]
fn fault_acceptance_scenario_is_mode_invariant() {
    let run_mode = |mode: ExecMode| {
        let scenario = FaultScenario {
            fraction: 0.15,
            horizon: 2_000,
            outage: Some(400),
        };
        let mut rng = SimRng::seed(0xFA);
        let mut builder = HierNetwork::builder(HierConfig::builder(4, 16, 4).build().unwrap())
            .checked(true)
            .fault_seed(7)
            .exec_mode(mode);
        for r in 0..4 {
            builder = builder.local_fault_plan(r, scenario.draw(16, 4, &mut rng));
        }
        builder = builder.global_fault_plan(scenario.draw(4, 4, &mut rng));
        let mut net = builder.build();
        let msgs = LocalityTraffic {
            rings: 4,
            nodes: 16,
            bridge: NodeId::new(0),
            locality: 0.8,
            flits: 8,
        }
        .generate(240, 2_000, &mut SimRng::seed(42));
        net.submit_all(msgs).unwrap();
        let report = net.run_to_quiescence(5_000_000);
        assert!(!report.stalled, "{mode}: must quiesce");
        assert_eq!(report.delivered, 240, "{mode}: zero lost messages");
        assert_eq!(report.aborted, 0, "{mode}");
        assert!(report.fault_kills > 0, "{mode}: faults must hit circuits");
        (report, net.delivered_log().to_vec())
    };
    let (oracle, oracle_log) = run_mode(ExecMode::Serial);
    for threads in [1, 2, 4, 8] {
        let (r, log) = run_mode(ExecMode::Sharded(threads));
        assert_eq!(oracle, r, "sharded({threads}) report differs from serial");
        assert_eq!(oracle_log, log, "sharded({threads}) log differs from serial");
    }
}

/// Bridge overflow (depth 1, bursty inter-ring traffic) exercises the
/// refusal/backoff machinery; refusal counts and recovery must be
/// identical across modes.
#[test]
fn bridge_overflow_is_mode_invariant() {
    let run_mode = |mode: ExecMode| {
        let cfg = HierConfig::builder(3, 8, 2)
            .bridge_queue_depth(1)
            .bridge_backoff(4)
            .build()
            .unwrap();
        let mut net = HierNetwork::builder(cfg)
            .checked(true)
            .recording(true)
            .exec_mode(mode)
            .build();
        for i in 0..24u32 {
            let src = rmb_types::NodeAddr::new(i % 3, NodeId::new(1 + i % 7));
            let dst = rmb_types::NodeAddr::new((i + 1) % 3, NodeId::new(1 + (i + 2) % 7));
            net.submit(HierMessageSpec::new(src, dst, 8)).unwrap();
        }
        let report = net.run_to_quiescence(1_000_000);
        assert_eq!(report.delivered, 24, "{mode}");
        assert!(report.bridge_refusals > 0, "{mode}: depth 1 must refuse");
        (report, net.delivered_log().to_vec(), net.take_events())
    };
    let serial = run_mode(ExecMode::Serial);
    let sharded = run_mode(ExecMode::Sharded(4));
    assert_eq!(serial.0, sharded.0);
    assert_eq!(serial.1, sharded.1);
    assert_eq!(serial.2, sharded.2);
}

/// `take_events` contract: globally ordered by `(tick, ring, seq)` — at
/// nondecreasing, ring nondecreasing within a tick — in every mode.
#[test]
fn take_events_is_ordered_by_tick_then_ring() {
    for mode in [ExecMode::Serial, ExecMode::Sharded(3)] {
        let mut net = HierNetwork::builder(HierConfig::builder(3, 8, 2).build().unwrap())
            .recording(true)
            .exec_mode(mode)
            .build();
        for i in 0..30u32 {
            let src = rmb_types::NodeAddr::new(i % 3, NodeId::new(1 + i % 7));
            let dst = rmb_types::NodeAddr::new((i + 1) % 3, NodeId::new(1 + (i + 3) % 7));
            net.submit(HierMessageSpec::new(src, dst, 4).at(u64::from(i)))
                .unwrap();
        }
        net.run_to_quiescence(100_000);
        let events = net.take_events();
        assert!(!events.is_empty(), "{mode}: bridge traffic must trace");
        for w in events.windows(2) {
            let a = (w[0].at, w[0].node);
            let b = (w[1].at, w[1].node);
            assert!(a <= b, "{mode}: events out of (tick, ring) order: {w:?}");
        }
    }
}
