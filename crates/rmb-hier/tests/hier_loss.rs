//! No-silent-loss property: under random locality and random per-ring
//! fault schedules, every injected message must end in exactly one
//! terminal state — delivered once, or aborted with a `ProtocolError`
//! naming the failing leg. Nothing may vanish, duplicate, or hang.

use proptest::prelude::*;
use rmb_hier::HierNetwork;
use rmb_sim::SimRng;
use rmb_types::{HierConfig, ProtocolError, RequestId};
use rmb_workloads::{FaultScenario, LocalityTraffic};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_message_is_delivered_or_aborted_with_a_named_leg(
        rings in 2u32..5,
        nodes in 4u32..10,
        k in 1u16..4,
        locality_pct in 0u32..101,
        fault_fraction in 0u32..35,
        permanent in any::<bool>(),
        count in 10usize..60,
        seed in any::<u64>(),
    ) {
        let cfg = HierConfig::builder(rings, nodes, k)
            .bridge_queue_depth(2)
            .build()
            .unwrap();
        let scenario = FaultScenario {
            fraction: f64::from(fault_fraction) / 100.0,
            horizon: 3_000,
            outage: if permanent { None } else { Some(500) },
        };
        let mut rng = SimRng::seed(seed);
        let mut builder = HierNetwork::builder(cfg)
            .checked(true)
            .fault_seed(seed)
            .leg_max_retries(4);
        for r in 0..rings {
            builder = builder.local_fault_plan(r, scenario.draw(nodes, k, &mut rng));
        }
        builder = builder.global_fault_plan(scenario.draw(rings, k, &mut rng));
        let mut net = builder.build();

        let msgs = LocalityTraffic {
            rings,
            nodes,
            bridge: rmb_types::NodeId::new(0),
            locality: f64::from(locality_pct) / 100.0,
            flits: 6,
        }
        .generate(count, 1_500, &mut rng);
        let ids = net.submit_all(msgs).unwrap();
        let report = net.run_to_quiescence(10_000_000);

        // Exactly-once: terminal states partition the submitted set.
        prop_assert!(!report.stalled, "stalled: {report:?}");
        prop_assert_eq!(report.delivered + report.aborted, count);
        prop_assert_eq!(report.undelivered, 0);
        prop_assert!(net.is_quiescent());

        let mut seen: HashSet<RequestId> = HashSet::new();
        for d in net.delivered_log() {
            prop_assert!(seen.insert(d.request), "duplicate delivery {:?}", d.request);
        }
        for a in net.aborted_log() {
            prop_assert!(seen.insert(a.request), "delivered AND aborted {:?}", a.request);
            // Every abort names its failing leg and ring.
            match a.error {
                ProtocolError::LegAborted { leg, ring, request } => {
                    prop_assert_eq!(request, a.request);
                    if a.spec.is_intra_ring() {
                        prop_assert_eq!(ring, Some(a.spec.source.ring));
                    }
                    let _ = leg; // any leg can fail; naming it is the contract
                }
                other => prop_assert!(false, "expected LegAborted, got {:?}", other),
            }
        }
        let all: HashSet<RequestId> = ids.into_iter().collect();
        prop_assert_eq!(seen, all, "terminal set must equal the submitted set");

        // All bridge slots returned once quiescent.
        for r in 0..rings {
            prop_assert_eq!(net.bridge_load(r), (0, 0));
        }
    }
}
