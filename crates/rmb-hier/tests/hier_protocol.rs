//! End-to-end hierarchical protocol tests, including the PR's acceptance
//! scenario: a 4-ring hierarchy (N=16, k=4, locality 0.8) completing a
//! random workload with zero lost messages under fault injection.

use rmb_hier::HierNetwork;
use rmb_sim::SimRng;
use rmb_types::{HierConfig, HierMessageSpec, NodeAddr, NodeId};
use rmb_workloads::{FaultScenario, LocalityTraffic};

fn four_rings() -> HierConfig {
    HierConfig::builder(4, 16, 4).build().unwrap()
}

fn workload(count: usize, locality: f64, spread: u64, seed: u64) -> Vec<HierMessageSpec> {
    LocalityTraffic {
        rings: 4,
        nodes: 16,
        bridge: NodeId::new(0),
        locality,
        flits: 8,
    }
    .generate(count, spread, &mut SimRng::seed(seed))
}

/// Acceptance: transient faults on every local ring and on the global
/// ring, legs retrying forever — every message must still arrive.
#[test]
fn four_ring_workload_survives_faults_with_zero_loss() {
    let scenario = FaultScenario {
        fraction: 0.15,
        horizon: 2_000,
        outage: Some(400),
    };
    let mut rng = SimRng::seed(0xFA);
    let mut builder = HierNetwork::builder(four_rings()).checked(true).fault_seed(7);
    for r in 0..4 {
        builder = builder.local_fault_plan(r, scenario.draw(16, 4, &mut rng));
    }
    builder = builder.global_fault_plan(scenario.draw(4, 4, &mut rng));
    let mut net = builder.build();

    let msgs = workload(240, 0.8, 2_000, 42);
    let submitted = msgs.len();
    net.submit_all(msgs).unwrap();
    let report = net.run_to_quiescence(5_000_000);

    assert!(!report.stalled, "must quiesce: {report:?}");
    assert_eq!(report.delivered, submitted, "zero lost messages");
    assert_eq!(report.aborted, 0);
    assert_eq!(report.undelivered, 0);
    assert!(report.fault_kills > 0, "faults must actually hit circuits");
    assert!(net.is_quiescent());
    // All bridge slots returned.
    for r in 0..4 {
        assert_eq!(net.bridge_load(r), (0, 0));
    }
}

/// The same workload without faults delivers everything too, and higher
/// locality means lower mean latency (fewer bridge crossings).
#[test]
fn locality_lowers_latency() {
    let run = |locality: f64| {
        let mut net = HierNetwork::new(four_rings());
        net.submit_all(workload(300, locality, 3_000, 9)).unwrap();
        let report = net.run_to_quiescence(1_000_000);
        assert_eq!(report.delivered, 300, "locality {locality}: {report:?}");
        report.mean_latency()
    };
    let local = run(0.9);
    let remote = run(0.1);
    assert!(
        local < remote,
        "locality 0.9 ({local:.1}) must beat 0.1 ({remote:.1})"
    );
}

/// Legs carry the per-ring retry machinery: a permanently dead segment
/// wall on one ring aborts exactly the messages that need it, each with
/// an error naming the failing leg, while unaffected traffic flows.
#[test]
fn permanent_fault_aborts_name_the_leg() {
    use rmb_types::{BusIndex, FaultPlan, ProtocolError};
    // Kill every bus of hop n2 on ring 1 forever: circuits from n1 to n3
    // on ring 1 cannot form.
    let mut plan = FaultPlan::new();
    for b in 0..4 {
        plan = plan.segment_stuck(0, NodeId::new(2), BusIndex::new(b), None);
    }
    let mut net = HierNetwork::builder(four_rings())
        .local_fault_plan(1, plan)
        .leg_max_retries(3)
        .build();
    // Blocked: r1.n1 → r1.n3 crosses the dead hop.
    net.submit(HierMessageSpec::new(
        NodeAddr::new(1, NodeId::new(1)),
        NodeAddr::new(1, NodeId::new(3)),
        8,
    ))
    .unwrap();
    // Unaffected: a different ring entirely.
    net.submit(HierMessageSpec::new(
        NodeAddr::new(2, NodeId::new(1)),
        NodeAddr::new(3, NodeId::new(5)),
        8,
    ))
    .unwrap();
    let report = net.run_to_quiescence(2_000_000);
    assert!(!report.stalled, "{report:?}");
    assert_eq!(report.delivered, 1);
    assert_eq!(report.aborted, 1);
    let abort = &net.aborted_log()[0];
    match abort.error {
        ProtocolError::LegAborted { ring, .. } => assert_eq!(ring, Some(1)),
        other => panic!("expected LegAborted, got {other:?}"),
    }
    assert!(abort.error.to_string().contains("leg on ring 1"));
}
