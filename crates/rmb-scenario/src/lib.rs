//! Declarative scenario harness for the RMB reproduction.
//!
//! Every experiment so far has been configured in Rust: pick a topology,
//! pick knobs, wire a workload, emit a report. This crate turns that
//! recipe into *data* — a small TOML file any session can read, diff and
//! pin — so a whole experiment is one artifact:
//!
//! ```toml
//! name = "flat-uniform-smoke"
//! seed = 42
//!
//! [topology]
//! kind = "flat"
//! nodes = 16
//! buses = 4
//!
//! [workload]
//! kind = "uniform"
//! messages = 64
//! flits = 4
//! ```
//!
//! Three layers:
//!
//! * [`toml`] — a hand-rolled, line-tracking parser for the TOML subset
//!   scenarios need (the workspace is fully offline, so no external
//!   `toml` crate). Errors carry the offending line.
//! * [`schema`] — the typed [`Scenario`] model plus [`parse_scenario`]:
//!   every key is validated against the engines' real invariants, and a
//!   bad file fails with the key *and line* that broke it, not a panic
//!   three crates down. [`Scenario::to_toml`] round-trips.
//! * [`run`] — [`run_scenario`] executes a scenario on the engine its
//!   topology names (flat ring, bridged hierarchy, grid, lattice, or the
//!   wormhole-torus baseline; batch or open-loop serving) and returns a
//!   canonical, wall-clock-free JSON row suitable for byte-exact golden
//!   pinning.
//!
//! # Examples
//!
//! ```
//! use rmb_scenario::{parse_scenario, run_scenario};
//!
//! let scenario = parse_scenario(
//!     r#"
//!     name = "doc-smoke"
//!     seed = 7
//!     [topology]
//!     kind = "flat"
//!     nodes = 8
//!     buses = 2
//!     [workload]
//!     kind = "uniform"
//!     messages = 16
//!     flits = 4
//!     "#,
//! )
//! .unwrap();
//! let out = run_scenario(&scenario, std::path::Path::new(".")).unwrap();
//! assert_eq!(out.mode, "batch");
//! assert!(out.stats_json.contains("\"delivered\":16"));
//! // Same scenario, same seed: byte-identical row.
//! assert_eq!(out.row_json, run_scenario(&scenario, std::path::Path::new(".")).unwrap().row_json);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod run;
pub mod schema;
pub mod toml;

pub use run::{run_scenario, RecordedTrace, ScenarioOutcome};
pub use schema::{
    parse_scenario, Admission, Engine, Exec, FaultKindSpec, FaultSpec, Feasibility, Hotspot,
    Retention, RingSel, Scenario, Scheduler, ServeOptions, Topology, Workload,
};
pub use toml::ScenarioError;
