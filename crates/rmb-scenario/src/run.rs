//! Executes a validated [`Scenario`] against the workspace engines.
//!
//! One entry point: [`run_scenario`]. Batch scenarios run to quiescence
//! on the engine the topology names (flat ring, hierarchy, grid, lattice
//! or wormhole torus); streaming scenarios drive the open-loop serving
//! loop. Either way the result is a [`ScenarioOutcome`] whose JSON row is
//! *canonical* — fixed key order, no whitespace, and never a wall-clock
//! field — so the same scenario file and seed produce byte-identical rows
//! on every host, which is what lets `scenarios/golden/` pin outputs
//! exactly.

use crate::schema::{
    Admission, Engine, Exec, Feasibility, Retention, RingSel, Scenario, Scheduler, ServeOptions,
    Topology, Workload,
};
use crate::toml::ScenarioError;
use rmb_analysis::{RmbGrid, RmbLattice, Table};
use rmb_baselines::{KAryNCube, Network};
use rmb_core::{FeasibilityMode, LogRetention, RmbNetwork, SchedulerMode};
use rmb_hier::HierNetwork;
use rmb_serve::{
    serve_with_policy, AdmissionMode, DestinationPolicy, FlatTarget, HierTarget, ServeConfig,
    ServeTarget, WormholeTarget,
};
use rmb_sim::SimRng;
use rmb_types::json::escape;
use rmb_types::{
    ExecMode, FaultPlan, HierConfig, LatencySummary, MessageSpec, NodeId, RmbConfig, StatsReport,
};
use rmb_workloads::{
    all_to_all, decode_trace, encode_trace, nearest_neighbour, BurstyStream, ExchangeStream,
    LocalityTraffic, PoissonStream,
};
use std::path::Path;

/// A trace produced by a `[record]` scenario. The runner never touches
/// the filesystem for output — the caller decides where (and whether) to
/// write `content`, resolving `path` against the scenario file's
/// directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Path as written in the scenario (`[record] trace = ...`).
    pub path: String,
    /// Canonical trace text ([`encode_trace`] of the delivered set).
    pub content: String,
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Topology label.
    pub topology: String,
    /// Workload label.
    pub workload: String,
    /// `"batch"` or `"serve"`.
    pub mode: &'static str,
    /// The canonical cross-engine stats object
    /// ([`StatsReport::to_json_object`], wall-clock scrubbed).
    pub stats_json: String,
    /// The full canonical row:
    /// `{"name":...,"topology":...,"workload":...,"mode":...,"stats":{...}}`.
    pub row_json: String,
    /// Rendered text table (one row).
    pub table: String,
    /// Recorded trace, when the scenario asked for one.
    pub recorded: Option<RecordedTrace>,
}

fn external(what: impl std::fmt::Display) -> ScenarioError {
    ScenarioError::external(what.to_string())
}

/// Wall-clock-free [`StatsReport`] view over a baseline
/// [`RoutingOutcome`](rmb_baselines::RoutingOutcome): the delivered log is
/// complete, so latency percentiles are exact.
struct OutcomeStats {
    ticks: u64,
    delivered: u64,
    refusals: u64,
    stalled: bool,
    latency: LatencySummary,
}

impl StatsReport for OutcomeStats {
    fn ticks(&self) -> u64 {
        self.ticks
    }
    fn delivered_count(&self) -> u64 {
        self.delivered
    }
    fn aborted_count(&self) -> u64 {
        0
    }
    fn refusal_count(&self) -> u64 {
        self.refusals
    }
    fn is_stalled(&self) -> bool {
        self.stalled
    }
    fn latency(&self) -> LatencySummary {
        self.latency
    }
}

/// Runs a scenario. `base` is the directory trace paths resolve against
/// (normally the scenario file's parent).
///
/// # Errors
///
/// [`ScenarioError`] (line 0) when an engine rejects the configuration,
/// a trace file cannot be read or parsed, or a workload is unroutable.
pub fn run_scenario(s: &Scenario, base: &Path) -> Result<ScenarioOutcome, ScenarioError> {
    let (mode, stats_json, recorded) = match &s.serve {
        Some(opts) => ("serve", run_serve(s, opts)?, None),
        None => {
            let (stats, recorded) = run_batch(s, base)?;
            ("batch", stats, recorded)
        }
    };

    let name = &s.name;
    let topology = s.topology.label();
    let workload = s.workload.label();
    let row_json = format!(
        "{{\"name\":{},\"topology\":{},\"workload\":{},\"mode\":{},\"stats\":{stats_json}}}",
        escape(name),
        escape(&topology),
        escape(&workload),
        escape(mode),
    );
    let table = render_table(name, &topology, &workload, mode, &stats_json)?;

    Ok(ScenarioOutcome {
        name: name.clone(),
        topology,
        workload,
        mode,
        stats_json,
        row_json,
        table,
        recorded,
    })
}

/// Renders the one-row text table from the already-canonical stats JSON
/// (parsing it back keeps a single source of truth for the numbers).
fn render_table(
    name: &str,
    topology: &str,
    workload: &str,
    mode: &str,
    stats_json: &str,
) -> Result<String, ScenarioError> {
    use rmb_types::json::Value;
    let v = Value::parse(stats_json).map_err(external)?;
    let int = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .map_or_else(|| "-".to_string(), |x| x.to_string())
    };
    let lat = v.get("latency");
    let mean = lat
        .and_then(|l| l.get("mean"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let p99 = lat
        .and_then(|l| l.get("p99"))
        .and_then(Value::as_u64)
        .map_or_else(|| "-".to_string(), |x| x.to_string());
    let stalled = v.get("stalled").and_then(Value::as_bool).unwrap_or(false);
    let mut t = Table::new(vec![
        "scenario", "topology", "workload", "mode", "ticks", "delivered", "aborted", "shed",
        "refusals", "stalled", "mean-lat", "p99",
    ]);
    t.row(vec![
        name.to_string(),
        topology.to_string(),
        workload.to_string(),
        mode.to_string(),
        int("ticks"),
        int("delivered"),
        int("aborted"),
        int("shed"),
        int("refusals"),
        stalled.to_string(),
        format!("{mean:.1}"),
        p99,
    ]);
    Ok(t.to_string())
}

// ---------------------------------------------------------------------------
// Engine construction
// ---------------------------------------------------------------------------

fn scheduler_mode(e: &Engine) -> SchedulerMode {
    match e.scheduler {
        Scheduler::Event => SchedulerMode::EventDriven,
        Scheduler::Dense => SchedulerMode::DenseSweep,
    }
}

fn exec_mode(e: &Engine) -> ExecMode {
    match e.exec {
        Exec::Serial => ExecMode::Serial,
        Exec::Sharded(t) => ExecMode::Sharded(t as usize),
    }
}

/// Flat-ring fault plan: every fault (validation guarantees `ring` is
/// absent on flat scenarios).
fn flat_fault_plan(s: &Scenario) -> FaultPlan {
    s.faults
        .iter()
        .fold(FaultPlan::new(), |plan, f| f.apply_to(plan))
}

fn build_flat(s: &Scenario) -> Result<RmbNetwork, ScenarioError> {
    let Topology::Flat {
        nodes,
        buses,
        head_timeout,
        retry_backoff,
    } = s.topology
    else {
        unreachable!("caller matched the topology");
    };
    let cfg = RmbConfig::builder(nodes, buses)
        .head_timeout(head_timeout.unwrap_or(16 * u64::from(nodes)))
        .retry_backoff(retry_backoff.unwrap_or(u64::from(nodes)))
        .build()
        .map_err(external)?;
    let mut b = RmbNetwork::builder(cfg)
        .scheduler(scheduler_mode(&s.engine))
        .feasibility(match s.engine.feasibility {
            Feasibility::Bitmap => FeasibilityMode::Bitmap,
            Feasibility::SlabWalk => FeasibilityMode::SlabWalk,
        })
        .log_retention(match s.engine.retention {
            Retention::Full => LogRetention::Full,
            Retention::Window(w) => LogRetention::Window(w as usize),
            Retention::CountersOnly => LogRetention::CountersOnly,
        })
        .checked(s.engine.checked);
    if let Some(r) = s.engine.max_retries {
        b = b.max_retries(r);
    }
    if !s.faults.is_empty() {
        b = b
            .fault_plan(flat_fault_plan(s))
            .fault_seed(s.seed ^ 0x5eed_fa17);
    }
    Ok(b.build())
}

fn build_hier(s: &Scenario) -> Result<HierNetwork, ScenarioError> {
    let Topology::Hier {
        rings,
        nodes_per_ring,
        buses,
        global_buses,
        bridge_queue_depth,
        head_timeout,
        retry_backoff,
    } = s.topology
    else {
        unreachable!("caller matched the topology");
    };
    let mut cb = HierConfig::builder(rings, nodes_per_ring, buses)
        .head_timeout(head_timeout.unwrap_or(16 * u64::from(nodes_per_ring)))
        .retry_backoff(retry_backoff.unwrap_or(u64::from(nodes_per_ring)));
    if let Some(g) = global_buses {
        cb = cb.global_buses(g);
    }
    if let Some(q) = bridge_queue_depth {
        cb = cb.bridge_queue_depth(q);
    }
    let cfg = cb.build().map_err(external)?;
    let mut b = HierNetwork::builder(cfg)
        .scheduler(scheduler_mode(&s.engine))
        .exec_mode(exec_mode(&s.engine))
        .checked(s.engine.checked);
    if let Some(r) = s.engine.max_retries {
        b = b.leg_max_retries(r);
    }
    if !s.faults.is_empty() {
        for f in &s.faults {
            let plan = f.apply_to(FaultPlan::new());
            match f.ring {
                Some(RingSel::Local(r)) => b = b.local_fault_plan(r, plan),
                Some(RingSel::Global) => b = b.global_fault_plan(plan),
                None => unreachable!("validation requires a ring selector on hier faults"),
            }
        }
        b = b.fault_seed(s.seed ^ 0x5eed_fa17);
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------------

/// Flat-indexed batch message set for a topology with `n` endpoints.
fn batch_messages(
    s: &Scenario,
    n: u32,
    base: &Path,
) -> Result<Vec<MessageSpec>, ScenarioError> {
    match &s.workload {
        Workload::Uniform {
            messages,
            spread,
            flits,
        } => {
            let mut rng = SimRng::seed(s.seed);
            Ok((0..*messages)
                .map(|_| {
                    let src = rng.index(n as usize).unwrap_or(0) as u32;
                    let dst = {
                        let r = rng.index((n - 1) as usize).expect("n >= 2") as u32;
                        if r >= src {
                            r + 1
                        } else {
                            r
                        }
                    };
                    let at = rng.index(*spread as usize).unwrap_or(0) as u64;
                    MessageSpec::new(NodeId::new(src), NodeId::new(dst), *flits).at(at)
                })
                .collect())
        }
        Workload::AllToAll { flits, stagger } => Ok(all_to_all(n, *flits, *stagger)),
        Workload::NearestNeighbour {
            flits,
            rounds,
            stagger,
        } => Ok(nearest_neighbour(n, *flits, *rounds, *stagger)),
        Workload::Trace { path } => {
            let full = base.join(path);
            let text = std::fs::read_to_string(&full)
                .map_err(|e| external(format!("trace `{}`: {e}", full.display())))?;
            let specs = decode_trace(&text)
                .map_err(|e| external(format!("trace `{}`: {e}", full.display())))?;
            if let Some(bad) = specs
                .iter()
                .find(|m| m.source.index() >= n || m.destination.index() >= n)
            {
                return Err(external(format!(
                    "trace `{}`: node {} is outside the {} endpoints",
                    full.display(),
                    bad.source.index().max(bad.destination.index()),
                    n
                )));
            }
            Ok(specs)
        }
        other => unreachable!("validation bars `{}` from batch flat runs", other.kind_name()),
    }
}

fn run_batch(
    s: &Scenario,
    base: &Path,
) -> Result<(String, Option<RecordedTrace>), ScenarioError> {
    match &s.topology {
        Topology::Flat { nodes, .. } => {
            let msgs = batch_messages(s, *nodes, base)?;
            let mut net = build_flat(s)?;
            net.submit_all(msgs.iter().copied()).map_err(external)?;
            let report = net.run_to_quiescence(s.max_ticks);
            let recorded = s.record.as_ref().map(|path| RecordedTrace {
                path: path.clone(),
                content: encode_trace(
                    &net.delivered_log()
                        .iter()
                        .map(|d| d.spec)
                        .collect::<Vec<_>>(),
                ),
            });
            Ok((report.to_json_object(), recorded))
        }
        Topology::Hier {
            rings,
            nodes_per_ring,
            ..
        } => {
            let Workload::Locality {
                messages,
                spread,
                flits,
                locality,
            } = &s.workload
            else {
                unreachable!("validation pairs hier batch with the locality workload");
            };
            let mut net = build_hier(s)?;
            let traffic = LocalityTraffic {
                rings: *rings,
                nodes: *nodes_per_ring,
                bridge: net.config().bridge(),
                locality: *locality,
                flits: *flits,
            };
            let msgs = traffic.generate(*messages as usize, *spread, &mut SimRng::seed(s.seed));
            net.submit_all(msgs).map_err(external)?;
            net.run_to_quiescence(s.max_ticks);
            // Emit the untimed report: same counters, no wall-clock, so
            // rows stay byte-stable across hosts and exec modes.
            Ok((net.report().to_json_object(), None))
        }
        Topology::Grid { rows, cols, buses } => {
            let ring_cfg = RmbConfig::new((*cols).max(*rows), *buses).map_err(external)?;
            let mut grid = RmbGrid::new(*rows, *cols, ring_cfg);
            run_baseline_batch(s, &mut grid, base)
        }
        Topology::Lattice { dims, buses } => {
            let max_dim = dims.iter().copied().max().unwrap_or(2);
            let ring_cfg = RmbConfig::new(max_dim, *buses).map_err(external)?;
            let mut lattice = RmbLattice::new(dims.clone(), ring_cfg);
            run_baseline_batch(s, &mut lattice, base)
        }
        Topology::Torus { radix, dims } => {
            let mut torus = KAryNCube::new(*radix, *dims);
            run_baseline_batch(s, &mut torus, base)
        }
    }
}

fn run_baseline_batch(
    s: &Scenario,
    net: &mut dyn Network,
    base: &Path,
) -> Result<(String, Option<RecordedTrace>), ScenarioError> {
    let n = net.node_count();
    let msgs = batch_messages(s, n, base)?;
    let outcome = net.route_messages(&msgs, s.max_ticks);
    let latencies: Vec<u64> = outcome.delivered.iter().map(|d| d.latency()).collect();
    let stats = OutcomeStats {
        ticks: outcome.ticks,
        delivered: outcome.delivered.len() as u64,
        refusals: outcome.delivered.iter().map(|d| u64::from(d.refusals)).sum(),
        stalled: outcome.stalled,
        latency: LatencySummary::exact_from(&latencies),
    };
    Ok((stats.to_json_object(), None))
}

// ---------------------------------------------------------------------------
// Serve mode
// ---------------------------------------------------------------------------

fn run_serve(s: &Scenario, opts: &ServeOptions) -> Result<String, ScenarioError> {
    let mut target: Box<dyn ServeTarget> = match &s.topology {
        Topology::Flat { .. } => Box::new(FlatTarget::new(build_flat(s)?)),
        Topology::Hier { .. } => Box::new(HierTarget::new(build_hier(s)?)),
        Topology::Torus { radix, dims } => Box::new(WormholeTarget::torus(*radix, *dims)),
        other => unreachable!("validation bars serving on `{}`", other.kind_name()),
    };

    let (rate, flits, hotspot) = match &s.workload {
        Workload::Poisson {
            rate,
            flits,
            hotspot,
        } => (*rate, *flits, *hotspot),
        Workload::Bursty {
            rate,
            flits,
            hotspot,
            ..
        } => (*rate, *flits, *hotspot),
        Workload::Exchange { period, flits } => (1.0 / *period as f64, *flits, None),
        other => unreachable!("`{}` is not a streaming workload", other.kind_name()),
    };

    let cfg = ServeConfig {
        rate,
        warmup: opts.warmup,
        duration: opts.duration,
        flits,
        admission: match opts.admission {
            Admission::PerSource { depth } => AdmissionMode::PerSource { depth },
            Admission::Aggregate { depth } => AdmissionMode::Aggregate { depth },
        },
        seed: s.seed,
    };
    let policy = match hotspot {
        Some(h) => DestinationPolicy::Hotspot {
            node: h.node,
            fraction: h.fraction,
        },
        None => DestinationPolicy::Uniform,
    };

    let mut report = match &s.workload {
        Workload::Poisson { .. } => serve_with_policy(
            target.as_mut(),
            &mut PoissonStream::new(rate),
            &cfg,
            policy,
        ),
        Workload::Bursty { burst, .. } => serve_with_policy(
            target.as_mut(),
            &mut BurstyStream::new(rate, *burst),
            &cfg,
            policy,
        ),
        Workload::Exchange { period, .. } => serve_with_policy(
            target.as_mut(),
            &mut ExchangeStream::new(*period),
            &cfg,
            policy,
        ),
        _ => unreachable!("streaming workloads matched above"),
    };
    // Scrub the wall-clock measurement: golden rows must be host- and
    // thread-count-independent.
    report.perf = None;
    Ok(report.to_json_object())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::parse_scenario;

    fn base() -> &'static Path {
        Path::new(".")
    }

    #[test]
    fn flat_batch_runs_and_is_deterministic() {
        let s = parse_scenario(
            r#"
name = "t"
seed = 9
[topology]
kind = "flat"
nodes = 8
buses = 2
[workload]
kind = "uniform"
messages = 24
flits = 4
"#,
        )
        .unwrap();
        let a = run_scenario(&s, base()).unwrap();
        let b = run_scenario(&s, base()).unwrap();
        assert_eq!(a.row_json, b.row_json);
        assert!(a.row_json.contains("\"mode\":\"batch\""));
        assert!(a.stats_json.contains("\"delivered\":24"));
        assert!(a.stats_json.contains("\"wall_ms\":null"));
        assert!(a.recorded.is_none());
    }

    #[test]
    fn collective_runs_on_the_torus() {
        let s = parse_scenario(
            r#"
name = "t"
seed = 1
[topology]
kind = "torus"
radix = 3
dims = 2
[workload]
kind = "all-to-all"
flits = 2
stagger = 4
"#,
        )
        .unwrap();
        let out = run_scenario(&s, base()).unwrap();
        assert!(out.stats_json.contains("\"delivered\":72"), "{}", out.stats_json);
    }

    #[test]
    fn serve_mode_scrubs_wall_clock() {
        let s = parse_scenario(
            r#"
name = "t"
seed = 4
[topology]
kind = "flat"
nodes = 8
buses = 2
[workload]
kind = "poisson"
rate = 0.002
flits = 4
[serve]
warmup = 500
duration = 2000
"#,
        )
        .unwrap();
        let a = run_scenario(&s, base()).unwrap();
        let b = run_scenario(&s, base()).unwrap();
        assert_eq!(a.row_json, b.row_json);
        assert!(a.row_json.contains("\"mode\":\"serve\""));
        assert!(a.stats_json.contains("\"wall_ms\":null"));
        assert!(a.stats_json.contains("\"threads\":null"));
    }

    #[test]
    fn missing_trace_file_is_a_named_error() {
        let s = parse_scenario(
            r#"
name = "t"
seed = 1
[topology]
kind = "flat"
nodes = 4
buses = 2
[workload]
kind = "trace"
path = "does-not-exist.trace.json"
"#,
        )
        .unwrap();
        let err = run_scenario(&s, base()).unwrap_err();
        assert!(err.message.contains("does-not-exist.trace.json"), "{err}");
    }
}
