//! The typed scenario schema: decoding, validation and serialization.
//!
//! [`parse_scenario`] turns TOML text into a fully validated [`Scenario`];
//! every rejection names the offending key and source line. The inverse,
//! [`Scenario::to_toml`], emits canonical TOML that parses back to an
//! equal value (property-tested in `tests/roundtrip.rs`).

use crate::toml::{escape_str, parse_toml, ScenarioError, Spanned, TomlTable, TomlValue};
use rmb_types::{BusIndex, FaultPlan, NodeId};
use std::fmt::Write as _;

/// Default batch tick budget when `max-ticks` is omitted.
pub const DEFAULT_MAX_TICKS: u64 = 8_000_000;

/// A fully validated scenario, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in report rows).
    pub name: String,
    /// Deterministic seed for workload generation and the engines.
    pub seed: u64,
    /// Batch tick budget (ignored in serve mode, which uses
    /// `warmup + duration`).
    pub max_ticks: u64,
    /// The simulated network.
    pub topology: Topology,
    /// Engine options (scheduler / exec / feasibility / retention).
    pub engine: Engine,
    /// What traffic to offer.
    pub workload: Workload,
    /// Open-loop serving options; `None` = batch run to quiescence.
    pub serve: Option<ServeOptions>,
    /// Scheduled fault events.
    pub faults: Vec<FaultSpec>,
    /// Path (relative to the scenario file) to write the delivered trace
    /// to after a batch run.
    pub record: Option<String>,
}

/// Which network a scenario drives.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// A single flat RMB ring (`RmbNetwork`).
    Flat {
        /// Node count (>= 2).
        nodes: u32,
        /// Buses per hop (>= 1).
        buses: u16,
        /// Circuit head timeout override (default `16 * nodes`).
        head_timeout: Option<u64>,
        /// Retry backoff override (default `nodes`).
        retry_backoff: Option<u64>,
    },
    /// Bridged multi-ring hierarchy (`HierNetwork`).
    Hier {
        /// Local ring count (>= 2).
        rings: u32,
        /// Nodes per local ring, bridge included (>= 3).
        nodes_per_ring: u32,
        /// Buses per hop on the local rings.
        buses: u16,
        /// Buses per hop on the global ring (defaults to `buses`).
        global_buses: Option<u16>,
        /// Bridge queue depth override.
        bridge_queue_depth: Option<u32>,
        /// Head timeout override (default `16 * nodes_per_ring`).
        head_timeout: Option<u64>,
        /// Retry backoff override (default `nodes_per_ring`).
        retry_backoff: Option<u64>,
    },
    /// Row/column RMB grid (`RmbGrid`, batch only).
    Grid {
        /// Rows (>= 2).
        rows: u32,
        /// Columns (>= 2).
        cols: u32,
        /// Buses per hop on each row/column ring.
        buses: u16,
    },
    /// Multi-dimensional RMB lattice (`RmbLattice`, batch only).
    Lattice {
        /// Nodes per dimension (each >= 2, at least two dimensions).
        dims: Vec<u32>,
        /// Buses per hop on each dimension ring.
        buses: u16,
    },
    /// Wormhole k-ary n-cube baseline (`KAryNCube` / `WormholeTarget`).
    Torus {
        /// Radix (>= 3).
        radix: u32,
        /// Dimensions (>= 1).
        dims: u32,
    },
}

impl Topology {
    /// Schema name of the topology kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Topology::Flat { .. } => "flat",
            Topology::Hier { .. } => "hier",
            Topology::Grid { .. } => "grid",
            Topology::Lattice { .. } => "lattice",
            Topology::Torus { .. } => "torus",
        }
    }

    /// Human-readable label used in report rows.
    pub fn label(&self) -> String {
        match self {
            Topology::Flat { nodes, buses, .. } => format!("flat(n={nodes},k={buses})"),
            Topology::Hier {
                rings,
                nodes_per_ring,
                buses,
                ..
            } => format!("hier({rings}x{nodes_per_ring},k={buses})"),
            Topology::Grid { rows, cols, buses } => format!("grid({rows}x{cols},k={buses})"),
            Topology::Lattice { dims, buses } => {
                let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                format!("lattice({},k={buses})", dims.join("x"))
            }
            Topology::Torus { radix, dims } => format!("torus(radix={radix},dims={dims})"),
        }
    }

    /// Number of message endpoints (compute nodes) the topology offers.
    pub fn endpoints(&self) -> u64 {
        match self {
            Topology::Flat { nodes, .. } => u64::from(*nodes),
            Topology::Hier {
                rings,
                nodes_per_ring,
                ..
            } => u64::from(*rings) * u64::from(nodes_per_ring - 1),
            Topology::Grid { rows, cols, .. } => u64::from(*rows) * u64::from(*cols),
            Topology::Lattice { dims, .. } => dims.iter().map(|&d| u64::from(d)).product(),
            Topology::Torus { radix, dims } => u64::from(radix.pow(*dims)),
        }
    }
}

/// Scheduler choice (flat ring and hierarchy engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Event-driven active-set scheduler (the default).
    #[default]
    Event,
    /// Dense per-tick sweep (the bit-identical oracle).
    Dense,
}

/// Execution mode of the hierarchy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// All carriers advance on the calling thread.
    #[default]
    Serial,
    /// Carriers advance on a shard pool with this many threads (>= 2).
    Sharded(u32),
}

/// Path-feasibility kernel of the flat ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Feasibility {
    /// Packed occupancy bitmaps (the default).
    #[default]
    Bitmap,
    /// The retained slab-walk oracle.
    SlabWalk,
}

/// Delivered-log retention of the flat ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep every record (the default).
    #[default]
    Full,
    /// Keep a sliding window of this many records.
    Window(u32),
    /// Keep aggregate counters only.
    CountersOnly,
}

/// Engine options; the default value matches every builder default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Engine {
    /// Scheduler choice.
    pub scheduler: Scheduler,
    /// Execution mode (hierarchy only).
    pub exec: Exec,
    /// Feasibility kernel (flat ring only).
    pub feasibility: Feasibility,
    /// Delivered-log retention (flat ring only).
    pub retention: Retention,
    /// Per-message retry budget (`None` = retry forever).
    pub max_retries: Option<u32>,
    /// Run per-tick invariant checks.
    pub checked: bool,
}

/// Offered traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Uniform random pairs spread over a window of ticks (batch).
    Uniform {
        /// Message count.
        messages: u32,
        /// Injection times are drawn from `0..spread`.
        spread: u64,
        /// Data flits per message.
        flits: u32,
    },
    /// Locality-parameterized hierarchical traffic (batch, hier only).
    Locality {
        /// Message count.
        messages: u32,
        /// Injection times are drawn from `0..spread`.
        spread: u64,
        /// Data flits per message.
        flits: u32,
        /// Fraction of messages staying on their source ring.
        locality: f64,
    },
    /// All-to-all personalized exchange (batch).
    AllToAll {
        /// Data flits per message.
        flits: u32,
        /// Ticks between successive rounds.
        stagger: u64,
    },
    /// Nearest-neighbour (halo) exchange (batch).
    NearestNeighbour {
        /// Data flits per message.
        flits: u32,
        /// Exchange rounds.
        rounds: u32,
        /// Ticks between successive rounds.
        stagger: u64,
    },
    /// Memoryless streaming arrivals (serve mode).
    Poisson {
        /// Per-node per-tick arrival rate.
        rate: f64,
        /// Data flits per message.
        flits: u32,
        /// Optional hot-spot destination bias.
        hotspot: Option<Hotspot>,
    },
    /// Bursty streaming arrivals (serve mode).
    Bursty {
        /// Per-node per-tick mean arrival rate.
        rate: f64,
        /// Mean burst length.
        burst: u32,
        /// Data flits per message.
        flits: u32,
        /// Optional hot-spot destination bias.
        hotspot: Option<Hotspot>,
    },
    /// Deterministic fixed-period arrivals (serve mode, BSP-style).
    Exchange {
        /// Ticks between successive arrivals at each node.
        period: u64,
        /// Data flits per message.
        flits: u32,
    },
    /// Replay a recorded delivered trace (batch).
    Trace {
        /// Trace file path, relative to the scenario file.
        path: String,
    },
}

impl Workload {
    /// Schema name of the workload kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Workload::Uniform { .. } => "uniform",
            Workload::Locality { .. } => "locality",
            Workload::AllToAll { .. } => "all-to-all",
            Workload::NearestNeighbour { .. } => "nearest-neighbour",
            Workload::Poisson { .. } => "poisson",
            Workload::Bursty { .. } => "bursty",
            Workload::Exchange { .. } => "exchange",
            Workload::Trace { .. } => "trace",
        }
    }

    /// Whether this workload streams arrivals (needs a `[serve]` section).
    pub fn is_streaming(&self) -> bool {
        matches!(
            self,
            Workload::Poisson { .. } | Workload::Bursty { .. } | Workload::Exchange { .. }
        )
    }

    /// Human-readable label used in report rows.
    pub fn label(&self) -> String {
        match self {
            Workload::Uniform {
                messages,
                spread,
                flits,
            } => format!("uniform(messages={messages},spread={spread},flits={flits})"),
            Workload::Locality {
                messages,
                spread,
                flits,
                locality,
            } => format!(
                "locality(messages={messages},spread={spread},flits={flits},locality={locality:?})"
            ),
            Workload::AllToAll { flits, stagger } => {
                format!("all-to-all(flits={flits},stagger={stagger})")
            }
            Workload::NearestNeighbour {
                flits,
                rounds,
                stagger,
            } => format!("nearest-neighbour(flits={flits},rounds={rounds},stagger={stagger})"),
            Workload::Poisson {
                rate,
                flits,
                hotspot,
            } => match hotspot {
                Some(h) => format!(
                    "poisson(rate={rate:?},flits={flits},hotspot={}@{:?})",
                    h.node, h.fraction
                ),
                None => format!("poisson(rate={rate:?},flits={flits})"),
            },
            Workload::Bursty {
                rate,
                burst,
                flits,
                hotspot,
            } => match hotspot {
                Some(h) => format!(
                    "bursty(rate={rate:?},burst={burst},flits={flits},hotspot={}@{:?})",
                    h.node, h.fraction
                ),
                None => format!("bursty(rate={rate:?},burst={burst},flits={flits})"),
            },
            Workload::Exchange { period, flits } => {
                format!("exchange(period={period},flits={flits})")
            }
            Workload::Trace { path } => format!("trace({path})"),
        }
    }
}

/// Hot-spot destination bias for streaming workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Serving index of the hot node.
    pub node: u32,
    /// Probability a message is redirected to the hot node.
    pub fraction: f64,
}

/// Admission policy of the serving driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Bound each source's outstanding messages.
    PerSource {
        /// Maximum outstanding messages per source.
        depth: u32,
    },
    /// Bound the aggregate in-flight count at `depth * nodes`.
    Aggregate {
        /// Maximum in-flight messages per node, in aggregate.
        depth: u32,
    },
}

/// Open-loop serving options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Warmup ticks excluded from statistics.
    pub warmup: u64,
    /// Measured ticks after warmup.
    pub duration: u64,
    /// Admission policy.
    pub admission: Admission,
}

/// Which carrier ring a hierarchical fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingSel {
    /// A local ring by index.
    Local(u32),
    /// The global bridge ring.
    Global,
}

/// What breaks in a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKindSpec {
    /// One bus segment sticks at a hop.
    SegmentStuck {
        /// Hop index.
        hop: u32,
        /// Bus index at that hop.
        bus: u16,
    },
    /// All buses at a hop go down.
    LinkCut {
        /// Hop index.
        hop: u32,
    },
    /// A node's INC dies (refuses everything through it).
    IncDead {
        /// Node index.
        node: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What breaks.
    pub kind: FaultKindSpec,
    /// Tick the fault activates.
    pub at: u64,
    /// Optional repair tick (must be strictly after `at`).
    pub repair_at: Option<u64>,
    /// Target carrier; `None` for the flat ring.
    pub ring: Option<RingSel>,
}

impl FaultSpec {
    /// Appends this fault to a [`FaultPlan`].
    pub fn apply_to(&self, plan: FaultPlan) -> FaultPlan {
        match self.kind {
            FaultKindSpec::SegmentStuck { hop, bus } => plan.segment_stuck(
                self.at,
                NodeId::new(hop),
                BusIndex::new(bus),
                self.repair_at,
            ),
            FaultKindSpec::LinkCut { hop } => plan.link_cut(self.at, NodeId::new(hop), self.repair_at),
            FaultKindSpec::IncDead { node } => {
                plan.inc_dead(self.at, NodeId::new(node), self.repair_at)
            }
        }
    }
}

/// Parses and validates a scenario from TOML text.
pub fn parse_scenario(text: &str) -> Result<Scenario, ScenarioError> {
    let root = parse_toml(text)?;
    decode_scenario(&root)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A table being decoded: tracks which keys were consumed so leftovers
/// become "unknown key" errors, and prefixes key names with the section
/// path for error messages.
struct Section<'a> {
    table: &'a TomlTable,
    path: &'static str,
    used: Vec<bool>,
}

impl<'a> Section<'a> {
    fn new(table: &'a TomlTable, path: &'static str) -> Self {
        Section {
            used: vec![false; table.entries.len()],
            table,
            path,
        }
    }

    fn key_name(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a Spanned> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn req(&mut self, key: &str) -> Result<&'a Spanned, ScenarioError> {
        self.take(key).ok_or_else(|| {
            ScenarioError::at(
                self.table.line,
                format!("missing required key `{}`", self.key_name(key)),
            )
        })
    }

    fn type_err(&self, key: &str, spanned: &Spanned, expected: &str) -> ScenarioError {
        ScenarioError::at(
            spanned.line,
            format!(
                "key `{}`: expected {expected}, got {}",
                self.key_name(key),
                spanned.value.type_name()
            ),
        )
    }

    fn range_err(&self, key: &str, line: usize, what: &str) -> ScenarioError {
        ScenarioError::at(line, format!("key `{}`: {what}", self.key_name(key)))
    }

    fn str_of(&self, key: &str, spanned: &Spanned) -> Result<String, ScenarioError> {
        match &spanned.value {
            TomlValue::Str(s) => Ok(s.clone()),
            _ => Err(self.type_err(key, spanned, "string")),
        }
    }

    fn int_of(&self, key: &str, spanned: &Spanned) -> Result<i64, ScenarioError> {
        match spanned.value {
            TomlValue::Int(i) => Ok(i),
            _ => Err(self.type_err(key, spanned, "integer")),
        }
    }

    fn u64_of(&self, key: &str, spanned: &Spanned) -> Result<u64, ScenarioError> {
        let i = self.int_of(key, spanned)?;
        u64::try_from(i).map_err(|_| self.range_err(key, spanned.line, "must be non-negative"))
    }

    fn u32_of(&self, key: &str, spanned: &Spanned) -> Result<u32, ScenarioError> {
        let i = self.int_of(key, spanned)?;
        u32::try_from(i).map_err(|_| {
            self.range_err(key, spanned.line, "out of range (expected 0..=4294967295)")
        })
    }

    fn u16_of(&self, key: &str, spanned: &Spanned) -> Result<u16, ScenarioError> {
        let i = self.int_of(key, spanned)?;
        u16::try_from(i)
            .map_err(|_| self.range_err(key, spanned.line, "out of range (expected 0..=65535)"))
    }

    fn f64_of(&self, key: &str, spanned: &Spanned) -> Result<f64, ScenarioError> {
        match spanned.value {
            TomlValue::Float(f) => Ok(f),
            TomlValue::Int(i) => Ok(i as f64),
            _ => Err(self.type_err(key, spanned, "float")),
        }
    }

    fn req_str(&mut self, key: &str) -> Result<(String, usize), ScenarioError> {
        let s = self.req(key)?;
        Ok((self.str_of(key, s)?, s.line))
    }

    fn req_u64(&mut self, key: &str) -> Result<(u64, usize), ScenarioError> {
        let s = self.req(key)?;
        Ok((self.u64_of(key, s)?, s.line))
    }

    fn req_u32(&mut self, key: &str) -> Result<(u32, usize), ScenarioError> {
        let s = self.req(key)?;
        Ok((self.u32_of(key, s)?, s.line))
    }

    fn req_u16(&mut self, key: &str) -> Result<(u16, usize), ScenarioError> {
        let s = self.req(key)?;
        Ok((self.u16_of(key, s)?, s.line))
    }

    fn req_f64(&mut self, key: &str) -> Result<(f64, usize), ScenarioError> {
        let s = self.req(key)?;
        Ok((self.f64_of(key, s)?, s.line))
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<(String, usize)>, ScenarioError> {
        match self.take(key) {
            Some(s) => Ok(Some((self.str_of(key, s)?, s.line))),
            None => Ok(None),
        }
    }

    fn opt_u64(&mut self, key: &str) -> Result<Option<(u64, usize)>, ScenarioError> {
        match self.take(key) {
            Some(s) => Ok(Some((self.u64_of(key, s)?, s.line))),
            None => Ok(None),
        }
    }

    fn opt_u32(&mut self, key: &str) -> Result<Option<(u32, usize)>, ScenarioError> {
        match self.take(key) {
            Some(s) => Ok(Some((self.u32_of(key, s)?, s.line))),
            None => Ok(None),
        }
    }

    fn opt_u16(&mut self, key: &str) -> Result<Option<(u16, usize)>, ScenarioError> {
        match self.take(key) {
            Some(s) => Ok(Some((self.u16_of(key, s)?, s.line))),
            None => Ok(None),
        }
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<(f64, usize)>, ScenarioError> {
        match self.take(key) {
            Some(s) => Ok(Some((self.f64_of(key, s)?, s.line))),
            None => Ok(None),
        }
    }

    fn opt_bool(&mut self, key: &str) -> Result<Option<(bool, usize)>, ScenarioError> {
        match self.take(key) {
            Some(s) => match s.value {
                TomlValue::Bool(b) => Ok(Some((b, s.line))),
                _ => Err(self.type_err(key, s, "boolean")),
            },
            None => Ok(None),
        }
    }

    fn opt_table(&mut self, key: &str) -> Result<Option<&'a TomlTable>, ScenarioError> {
        match self.take(key) {
            Some(s) => match &s.value {
                TomlValue::Table(t) => Ok(Some(t)),
                _ => Err(self.type_err(key, s, "table")),
            },
            None => Ok(None),
        }
    }

    fn req_table(&mut self, key: &str) -> Result<&'a TomlTable, ScenarioError> {
        let s = self.req(key)?;
        match &s.value {
            TomlValue::Table(t) => Ok(t),
            _ => Err(self.type_err(key, s, "table")),
        }
    }

    fn opt_table_array(&mut self, key: &str) -> Result<&'a [TomlTable], ScenarioError> {
        match self.take(key) {
            Some(s) => match &s.value {
                TomlValue::TableArray(ts) => Ok(ts),
                _ => Err(self.type_err(key, s, "array of tables (`[[fault]]`)")),
            },
            None => Ok(&[]),
        }
    }

    /// Errors on the first key no decoder consumed.
    fn finish(self) -> Result<(), ScenarioError> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(ScenarioError::at(
                    v.line,
                    format!("unknown key `{}`", self.key_name(k)),
                ));
            }
        }
        Ok(())
    }
}

fn decode_scenario(root: &TomlTable) -> Result<Scenario, ScenarioError> {
    let mut sec = Section::new(root, "");

    let (name, name_line) = sec.req_str("name")?;
    if name.is_empty() {
        return Err(sec.range_err("name", name_line, "must not be empty"));
    }
    let (seed, _) = sec.req_u64("seed")?;
    let max_ticks = match sec.opt_u64("max-ticks")? {
        Some((0, line)) => return Err(sec.range_err("max-ticks", line, "must be at least 1")),
        Some((t, _)) => t,
        None => DEFAULT_MAX_TICKS,
    };

    let topology = decode_topology(sec.req_table("topology")?)?;
    let engine = match sec.opt_table("engine")? {
        Some(t) => Some(decode_engine(t, &topology)?),
        None => None,
    };
    let workload = decode_workload(sec.req_table("workload")?, &topology)?;
    let serve = match sec.opt_table("serve")? {
        Some(t) => Some(decode_serve(t)?),
        None => None,
    };
    let fault_tables = sec.opt_table_array("fault")?;
    let record = match sec.opt_table("record")? {
        Some(t) => Some(decode_record(t)?),
        None => None,
    };
    sec.finish()?;

    let engine = engine.unwrap_or_default();

    // Streaming workloads need a [serve] section; batch workloads must
    // not have one.
    let workload_line = root
        .get("workload")
        .map_or(0, |s| match &s.value {
            TomlValue::Table(t) => t.line_of_kind(),
            _ => s.line,
        });
    if workload.is_streaming() && serve.is_none() {
        return Err(ScenarioError::at(
            workload_line,
            format!(
                "key `workload.kind`: streaming workload `{}` needs a [serve] section",
                workload.kind_name()
            ),
        ));
    }
    if !workload.is_streaming() {
        if let Some(serve_line) = root.get("serve").map(|s| s.line) {
            return Err(ScenarioError::at(
                serve_line,
                format!(
                    "[serve] requires a streaming workload (poisson, bursty or exchange), \
                     got `{}`",
                    workload.kind_name()
                ),
            ));
        }
    }
    if workload.is_streaming()
        && !matches!(
            topology,
            Topology::Flat { .. } | Topology::Hier { .. } | Topology::Torus { .. }
        )
    {
        return Err(ScenarioError::at(
            workload_line,
            format!(
                "key `workload.kind`: serving supports flat, hier and torus topologies, \
                 not `{}`",
                topology.kind_name()
            ),
        ));
    }

    // Per-source admission polls completion records; counters-only
    // retention drops them.
    if let Some(s) = &serve {
        if matches!(s.admission, Admission::PerSource { .. })
            && matches!(engine.retention, Retention::CountersOnly)
        {
            let line = root.get("serve").map_or(0, |t| t.line);
            return Err(ScenarioError::at(
                line,
                "key `serve.admission`: per-source admission needs completion records; \
                 use `retention = \"full\"` or `\"window\"`, or aggregate admission"
                    .to_string(),
            ));
        }
    }

    // Hot-spot node must be a valid serving endpoint.
    if let Workload::Poisson {
        hotspot: Some(h), ..
    }
    | Workload::Bursty {
        hotspot: Some(h), ..
    } = &workload
    {
        if u64::from(h.node) >= topology.endpoints() {
            return Err(ScenarioError::at(
                workload_line,
                format!(
                    "key `workload.hotspot-node`: node {} is outside the {} serving endpoints",
                    h.node,
                    topology.endpoints()
                ),
            ));
        }
    }

    let faults = decode_faults(fault_tables, &topology)?;

    if let Some(path) = &record {
        let line = root.get("record").map_or(0, |t| t.line);
        if !matches!(topology, Topology::Flat { .. }) {
            return Err(ScenarioError::at(
                line,
                format!(
                    "key `record.trace`: trace recording needs the flat topology \
                     (got `{}`)",
                    topology.kind_name()
                ),
            ));
        }
        if serve.is_some() {
            return Err(ScenarioError::at(
                line,
                "key `record.trace`: trace recording works in batch mode only".to_string(),
            ));
        }
        if !matches!(engine.retention, Retention::Full) {
            return Err(ScenarioError::at(
                line,
                "key `record.trace`: trace recording needs `retention = \"full\"` \
                 (the delivered log is the trace)"
                    .to_string(),
            ));
        }
        if path.is_empty() {
            return Err(ScenarioError::at(
                line,
                "key `record.trace`: must not be empty".to_string(),
            ));
        }
    }

    Ok(Scenario {
        name,
        seed,
        max_ticks,
        topology,
        engine,
        workload,
        serve,
        faults,
        record,
    })
}

impl TomlTable {
    /// Line of the `kind` key if present, else the table header line.
    fn line_of_kind(&self) -> usize {
        self.get("kind").map_or(self.line, |s| s.line)
    }
}

fn decode_topology(table: &TomlTable) -> Result<Topology, ScenarioError> {
    let mut sec = Section::new(table, "topology");
    let (kind, kind_line) = sec.req_str("kind")?;
    let topo = match kind.as_str() {
        "flat" => {
            let (nodes, nl) = sec.req_u32("nodes")?;
            if nodes < 2 {
                return Err(sec.range_err("nodes", nl, "must be at least 2"));
            }
            let (buses, bl) = sec.req_u16("buses")?;
            if buses == 0 {
                return Err(sec.range_err("buses", bl, "must be at least 1"));
            }
            Topology::Flat {
                nodes,
                buses,
                head_timeout: decode_timeout(&mut sec, "head-timeout")?,
                retry_backoff: decode_timeout(&mut sec, "retry-backoff")?,
            }
        }
        "hier" => {
            let (rings, rl) = sec.req_u32("rings")?;
            if rings < 2 {
                return Err(sec.range_err("rings", rl, "must be at least 2"));
            }
            let (nodes_per_ring, nl) = sec.req_u32("nodes-per-ring")?;
            if nodes_per_ring < 3 {
                return Err(sec.range_err(
                    "nodes-per-ring",
                    nl,
                    "must be at least 3 (a bridge plus two compute nodes)",
                ));
            }
            let (buses, bl) = sec.req_u16("buses")?;
            if buses == 0 {
                return Err(sec.range_err("buses", bl, "must be at least 1"));
            }
            let global_buses = match sec.opt_u16("global-buses")? {
                Some((0, gl)) => {
                    return Err(sec.range_err("global-buses", gl, "must be at least 1"))
                }
                Some((g, _)) => Some(g),
                None => None,
            };
            let bridge_queue_depth = match sec.opt_u32("bridge-queue-depth")? {
                Some((0, ql)) => {
                    return Err(sec.range_err("bridge-queue-depth", ql, "must be at least 1"))
                }
                Some((q, _)) => Some(q),
                None => None,
            };
            Topology::Hier {
                rings,
                nodes_per_ring,
                buses,
                global_buses,
                bridge_queue_depth,
                head_timeout: decode_timeout(&mut sec, "head-timeout")?,
                retry_backoff: decode_timeout(&mut sec, "retry-backoff")?,
            }
        }
        "grid" => {
            let (rows, rl) = sec.req_u32("rows")?;
            if rows < 2 {
                return Err(sec.range_err("rows", rl, "must be at least 2"));
            }
            let (cols, cl) = sec.req_u32("cols")?;
            if cols < 2 {
                return Err(sec.range_err("cols", cl, "must be at least 2"));
            }
            let (buses, bl) = sec.req_u16("buses")?;
            if buses == 0 {
                return Err(sec.range_err("buses", bl, "must be at least 1"));
            }
            Topology::Grid { rows, cols, buses }
        }
        "lattice" => {
            let dims_spanned = sec.req("dims")?;
            let dims = match &dims_spanned.value {
                TomlValue::Array(items) => {
                    let mut dims = Vec::with_capacity(items.len());
                    for item in items {
                        match item.value {
                            TomlValue::Int(i) if (2..=u32::MAX as i64).contains(&i) => {
                                dims.push(i as u32)
                            }
                            _ => {
                                return Err(sec.range_err(
                                    "dims",
                                    item.line,
                                    "every dimension must be an integer >= 2",
                                ))
                            }
                        }
                    }
                    dims
                }
                _ => return Err(sec.type_err("dims", dims_spanned, "array of integers")),
            };
            if dims.len() < 2 {
                return Err(sec.range_err(
                    "dims",
                    dims_spanned.line,
                    "needs at least two dimensions",
                ));
            }
            let (buses, bl) = sec.req_u16("buses")?;
            if buses == 0 {
                return Err(sec.range_err("buses", bl, "must be at least 1"));
            }
            Topology::Lattice { dims, buses }
        }
        "torus" => {
            let (radix, rl) = sec.req_u32("radix")?;
            if radix < 3 {
                return Err(sec.range_err("radix", rl, "must be at least 3"));
            }
            let (dims, dl) = sec.req_u32("dims")?;
            if dims == 0 {
                return Err(sec.range_err("dims", dl, "must be at least 1"));
            }
            if u64::from(radix).pow(dims.min(16)) > 1 << 20 || dims > 16 {
                return Err(sec.range_err(
                    "dims",
                    dl,
                    "torus too large (radix^dims must stay within 2^20 nodes)",
                ));
            }
            Topology::Torus { radix, dims }
        }
        other => {
            return Err(ScenarioError::at(
                kind_line,
                format!(
                    "key `topology.kind`: unknown topology `{other}` \
                     (expected flat, hier, grid, lattice or torus)"
                ),
            ))
        }
    };
    sec.finish()?;
    Ok(topo)
}

fn decode_timeout(sec: &mut Section<'_>, key: &str) -> Result<Option<u64>, ScenarioError> {
    match sec.opt_u64(key)? {
        Some((0, line)) => Err(sec.range_err(key, line, "must be at least 1")),
        Some((t, _)) => Ok(Some(t)),
        None => Ok(None),
    }
}

fn decode_engine(table: &TomlTable, topology: &Topology) -> Result<Engine, ScenarioError> {
    let mut sec = Section::new(table, "engine");
    if matches!(
        topology,
        Topology::Grid { .. } | Topology::Lattice { .. } | Topology::Torus { .. }
    ) {
        return Err(ScenarioError::at(
            table.line,
            format!(
                "[engine] is only supported for the flat and hier topologies \
                 (got `{}`)",
                topology.kind_name()
            ),
        ));
    }
    let is_hier = matches!(topology, Topology::Hier { .. });

    let scheduler = match sec.opt_str("scheduler")? {
        None => Scheduler::Event,
        Some((s, line)) => match s.as_str() {
            "event" => Scheduler::Event,
            "dense" => Scheduler::Dense,
            other => {
                return Err(sec.range_err(
                    "scheduler",
                    line,
                    &format!("unknown scheduler `{other}` (expected event or dense)"),
                ))
            }
        },
    };

    let exec_choice = sec.opt_str("exec")?;
    let threads = sec.opt_u32("threads")?;
    let exec = match exec_choice {
        None => {
            if let Some((_, line)) = threads {
                return Err(sec.range_err(
                    "threads",
                    line,
                    "only meaningful with `exec = \"sharded\"`",
                ));
            }
            Exec::Serial
        }
        Some((s, line)) => match s.as_str() {
            "serial" => {
                if let Some((_, tl)) = threads {
                    return Err(sec.range_err(
                        "threads",
                        tl,
                        "only meaningful with `exec = \"sharded\"`",
                    ));
                }
                Exec::Serial
            }
            "sharded" => {
                if !is_hier {
                    return Err(sec.range_err(
                        "exec",
                        line,
                        "sharded execution requires the hier topology",
                    ));
                }
                match threads {
                    Some((t, _)) if t >= 2 => Exec::Sharded(t),
                    Some((_, tl)) => {
                        return Err(sec.range_err("threads", tl, "must be at least 2"))
                    }
                    None => {
                        return Err(sec.range_err(
                            "exec",
                            line,
                            "sharded execution needs a `threads` key (>= 2)",
                        ))
                    }
                }
            }
            other => {
                return Err(sec.range_err(
                    "exec",
                    line,
                    &format!("unknown exec mode `{other}` (expected serial or sharded)"),
                ))
            }
        },
    };

    let feasibility = match sec.opt_str("feasibility")? {
        None => Feasibility::Bitmap,
        Some((s, line)) => {
            if is_hier {
                return Err(sec.range_err(
                    "feasibility",
                    line,
                    "only the flat topology exposes the feasibility kernel choice",
                ));
            }
            match s.as_str() {
                "bitmap" => Feasibility::Bitmap,
                "slab-walk" => Feasibility::SlabWalk,
                other => {
                    return Err(sec.range_err(
                        "feasibility",
                        line,
                        &format!("unknown feasibility mode `{other}` (expected bitmap or slab-walk)"),
                    ))
                }
            }
        }
    };

    let retention_choice = sec.opt_str("retention")?;
    let window = sec.opt_u32("window")?;
    let retention = match retention_choice {
        None => {
            if let Some((_, line)) = window {
                return Err(sec.range_err(
                    "window",
                    line,
                    "only meaningful with `retention = \"window\"`",
                ));
            }
            Retention::Full
        }
        Some((s, line)) => {
            if is_hier {
                return Err(sec.range_err(
                    "retention",
                    line,
                    "only the flat topology exposes log retention",
                ));
            }
            match s.as_str() {
                "full" => {
                    if let Some((_, wl)) = window {
                        return Err(sec.range_err(
                            "window",
                            wl,
                            "only meaningful with `retention = \"window\"`",
                        ));
                    }
                    Retention::Full
                }
                "window" => match window {
                    Some((w, _)) if w >= 1 => Retention::Window(w),
                    Some((_, wl)) => {
                        return Err(sec.range_err("window", wl, "must be at least 1"))
                    }
                    None => {
                        return Err(sec.range_err(
                            "retention",
                            line,
                            "windowed retention needs a `window` key (>= 1)",
                        ))
                    }
                },
                "counters-only" => {
                    if let Some((_, wl)) = window {
                        return Err(sec.range_err(
                            "window",
                            wl,
                            "only meaningful with `retention = \"window\"`",
                        ));
                    }
                    Retention::CountersOnly
                }
                other => {
                    return Err(sec.range_err(
                        "retention",
                        line,
                        &format!(
                            "unknown retention `{other}` (expected full, window or counters-only)"
                        ),
                    ))
                }
            }
        }
    };

    let max_retries = sec.opt_u32("max-retries")?.map(|(v, _)| v);
    let checked = sec.opt_bool("checked")?.map(|(v, _)| v).unwrap_or(false);
    sec.finish()?;

    Ok(Engine {
        scheduler,
        exec,
        feasibility,
        retention,
        max_retries,
        checked,
    })
}

fn decode_workload(table: &TomlTable, topology: &Topology) -> Result<Workload, ScenarioError> {
    let mut sec = Section::new(table, "workload");
    let (kind, kind_line) = sec.req_str("kind")?;
    let is_hier = matches!(topology, Topology::Hier { .. });

    let require_flat_family = |sec: &Section<'_>| -> Result<(), ScenarioError> {
        if is_hier {
            Err(ScenarioError::at(
                kind_line,
                format!(
                    "key `{}`: workload `{kind}` addresses flat node indices; \
                     use `locality` for the hier topology",
                    sec.key_name("kind")
                ),
            ))
        } else {
            Ok(())
        }
    };

    let req_flits = |sec: &mut Section<'_>| -> Result<u32, ScenarioError> {
        let (flits, fl) = sec.req_u32("flits")?;
        if flits == 0 {
            return Err(sec.range_err("flits", fl, "must be at least 1"));
        }
        Ok(flits)
    };

    let workload = match kind.as_str() {
        "uniform" => {
            require_flat_family(&sec)?;
            let (messages, ml) = sec.req_u32("messages")?;
            if messages == 0 {
                return Err(sec.range_err("messages", ml, "must be at least 1"));
            }
            let spread = match sec.opt_u64("spread")? {
                Some((0, sl)) => return Err(sec.range_err("spread", sl, "must be at least 1")),
                Some((s, _)) => s,
                None => 64,
            };
            Workload::Uniform {
                messages,
                spread,
                flits: req_flits(&mut sec)?,
            }
        }
        "locality" => {
            if !is_hier {
                return Err(ScenarioError::at(
                    kind_line,
                    format!(
                        "key `workload.kind`: `locality` drives the hier topology, \
                         not `{}`",
                        topology.kind_name()
                    ),
                ));
            }
            let (messages, ml) = sec.req_u32("messages")?;
            if messages == 0 {
                return Err(sec.range_err("messages", ml, "must be at least 1"));
            }
            let spread = match sec.opt_u64("spread")? {
                Some((0, sl)) => return Err(sec.range_err("spread", sl, "must be at least 1")),
                Some((s, _)) => s,
                None => 64,
            };
            let (locality, ll) = sec.req_f64("locality")?;
            if !(0.0..=1.0).contains(&locality) {
                return Err(sec.range_err("locality", ll, "must lie in 0.0..=1.0"));
            }
            Workload::Locality {
                messages,
                spread,
                flits: req_flits(&mut sec)?,
                locality,
            }
        }
        "all-to-all" => {
            require_flat_family(&sec)?;
            Workload::AllToAll {
                flits: req_flits(&mut sec)?,
                stagger: sec.opt_u64("stagger")?.map(|(v, _)| v).unwrap_or(0),
            }
        }
        "nearest-neighbour" => {
            require_flat_family(&sec)?;
            let rounds = match sec.opt_u32("rounds")? {
                Some((0, rl)) => return Err(sec.range_err("rounds", rl, "must be at least 1")),
                Some((r, _)) => r,
                None => 1,
            };
            Workload::NearestNeighbour {
                flits: req_flits(&mut sec)?,
                rounds,
                stagger: sec.opt_u64("stagger")?.map(|(v, _)| v).unwrap_or(0),
            }
        }
        "poisson" => Workload::Poisson {
            rate: decode_rate(&mut sec)?,
            flits: req_flits(&mut sec)?,
            hotspot: decode_hotspot(&mut sec)?,
        },
        "bursty" => {
            let rate = decode_rate(&mut sec)?;
            let (burst, bl) = sec.req_u32("burst")?;
            if burst == 0 {
                return Err(sec.range_err("burst", bl, "must be at least 1"));
            }
            Workload::Bursty {
                rate,
                burst,
                flits: req_flits(&mut sec)?,
                hotspot: decode_hotspot(&mut sec)?,
            }
        }
        "exchange" => {
            let (period, pl) = sec.req_u64("period")?;
            if period == 0 {
                return Err(sec.range_err("period", pl, "must be at least 1"));
            }
            Workload::Exchange {
                period,
                flits: req_flits(&mut sec)?,
            }
        }
        "trace" => {
            require_flat_family(&sec)?;
            let (path, pl) = sec.req_str("path")?;
            if path.is_empty() {
                return Err(sec.range_err("path", pl, "must not be empty"));
            }
            Workload::Trace { path }
        }
        other => {
            return Err(ScenarioError::at(
                kind_line,
                format!(
                    "key `workload.kind`: unknown workload `{other}` (expected uniform, \
                     locality, all-to-all, nearest-neighbour, poisson, bursty, exchange \
                     or trace)"
                ),
            ))
        }
    };
    sec.finish()?;
    Ok(workload)
}

fn decode_rate(sec: &mut Section<'_>) -> Result<f64, ScenarioError> {
    let (rate, rl) = sec.req_f64("rate")?;
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(sec.range_err("rate", rl, "must lie in (0.0, 1.0]"));
    }
    Ok(rate)
}

fn decode_hotspot(sec: &mut Section<'_>) -> Result<Option<Hotspot>, ScenarioError> {
    let node = sec.opt_u32("hotspot-node")?;
    let fraction = sec.opt_f64("hotspot-fraction")?;
    match (node, fraction) {
        (None, None) => Ok(None),
        (Some((node, _)), Some((fraction, fl))) => {
            if !(0.0..=1.0).contains(&fraction) {
                return Err(sec.range_err("hotspot-fraction", fl, "must lie in 0.0..=1.0"));
            }
            Ok(Some(Hotspot { node, fraction }))
        }
        (Some((_, nl)), None) => Err(sec.range_err(
            "hotspot-node",
            nl,
            "needs a matching `hotspot-fraction` key",
        )),
        (None, Some((_, fl))) => Err(sec.range_err(
            "hotspot-fraction",
            fl,
            "needs a matching `hotspot-node` key",
        )),
    }
}

fn decode_serve(table: &TomlTable) -> Result<ServeOptions, ScenarioError> {
    let mut sec = Section::new(table, "serve");
    let warmup = sec.opt_u64("warmup")?.map(|(v, _)| v).unwrap_or(2_000);
    let (duration, dl) = sec.req_u64("duration")?;
    if duration == 0 {
        return Err(sec.range_err("duration", dl, "must be at least 1"));
    }
    let depth = match sec.opt_u32("depth")? {
        Some((0, dl)) => return Err(sec.range_err("depth", dl, "must be at least 1")),
        Some((d, _)) => d,
        None => 4,
    };
    let admission = match sec.opt_str("admission")? {
        None => Admission::PerSource { depth },
        Some((s, line)) => match s.as_str() {
            "per-source" => Admission::PerSource { depth },
            "aggregate" => Admission::Aggregate { depth },
            other => {
                return Err(sec.range_err(
                    "admission",
                    line,
                    &format!("unknown admission `{other}` (expected per-source or aggregate)"),
                ))
            }
        },
    };
    sec.finish()?;
    Ok(ServeOptions {
        warmup,
        duration,
        admission,
    })
}

fn decode_record(table: &TomlTable) -> Result<String, ScenarioError> {
    let mut sec = Section::new(table, "record");
    let (path, _) = sec.req_str("trace")?;
    sec.finish()?;
    Ok(path)
}

fn decode_faults(
    tables: &[TomlTable],
    topology: &Topology,
) -> Result<Vec<FaultSpec>, ScenarioError> {
    if tables.is_empty() {
        return Ok(Vec::new());
    }
    let (is_flat, is_hier) = (
        matches!(topology, Topology::Flat { .. }),
        matches!(topology, Topology::Hier { .. }),
    );
    if !is_flat && !is_hier {
        return Err(ScenarioError::at(
            tables[0].line,
            format!(
                "[[fault]] is only supported for the flat and hier topologies (got `{}`)",
                topology.kind_name()
            ),
        ));
    }

    let mut faults = Vec::with_capacity(tables.len());
    for table in tables {
        let mut sec = Section::new(table, "fault");
        let (kind, kind_line) = sec.req_str("kind")?;
        let fault_kind = match kind.as_str() {
            "segment-stuck" => FaultKindSpec::SegmentStuck {
                hop: sec.req_u32("hop")?.0,
                bus: sec.req_u16("bus")?.0,
            },
            "link-cut" => FaultKindSpec::LinkCut {
                hop: sec.req_u32("hop")?.0,
            },
            "inc-dead" => FaultKindSpec::IncDead {
                node: sec.req_u32("node")?.0,
            },
            other => {
                return Err(ScenarioError::at(
                    kind_line,
                    format!(
                        "key `fault.kind`: unknown fault `{other}` (expected segment-stuck, \
                         link-cut or inc-dead)"
                    ),
                ))
            }
        };
        let (at, _) = sec.req_u64("at")?;
        let repair_at = match sec.opt_u64("repair-at")? {
            Some((r, rl)) => {
                if r <= at {
                    return Err(sec.range_err(
                        "repair-at",
                        rl,
                        "must be strictly after the fault's `at` tick",
                    ));
                }
                Some(r)
            }
            None => None,
        };
        let ring = match sec.take("ring") {
            None => {
                if is_hier {
                    return Err(ScenarioError::at(
                        table.line,
                        "key `fault.ring`: hier faults must name a carrier \
                         (a ring index or \"global\")"
                            .to_string(),
                    ));
                }
                None
            }
            Some(s) => {
                if is_flat {
                    return Err(ScenarioError::at(
                        s.line,
                        "key `fault.ring`: only meaningful for the hier topology".to_string(),
                    ));
                }
                match &s.value {
                    TomlValue::Int(i) => {
                        let rings = match topology {
                            Topology::Hier { rings, .. } => *rings,
                            _ => unreachable!("is_hier checked"),
                        };
                        let r = u32::try_from(*i).ok().filter(|r| *r < rings).ok_or_else(|| {
                            ScenarioError::at(
                                s.line,
                                format!(
                                    "key `fault.ring`: ring index {i} is outside 0..{rings}"
                                ),
                            )
                        })?;
                        Some(RingSel::Local(r))
                    }
                    TomlValue::Str(txt) if txt == "global" => Some(RingSel::Global),
                    other => {
                        return Err(ScenarioError::at(
                            s.line,
                            format!(
                                "key `fault.ring`: expected a ring index or \"global\", got {}",
                                other.type_name()
                            ),
                        ))
                    }
                }
            }
        };
        sec.finish()?;
        let spec = FaultSpec {
            kind: fault_kind,
            at,
            repair_at,
            ring,
        };
        // Range-check hop/bus/node indices against the target carrier by
        // building a throwaway plan and reusing FaultPlan::validate.
        let (n, k) = match (topology, spec.ring) {
            (Topology::Flat { nodes, buses, .. }, None) => (*nodes, *buses),
            (
                Topology::Hier {
                    nodes_per_ring,
                    buses,
                    ..
                },
                Some(RingSel::Local(_)),
            ) => (*nodes_per_ring, *buses),
            (
                Topology::Hier {
                    rings,
                    buses,
                    global_buses,
                    ..
                },
                Some(RingSel::Global),
            ) => (*rings, global_buses.unwrap_or(*buses)),
            _ => unreachable!("ring selector validated against topology"),
        };
        if let Err(e) = spec.apply_to(FaultPlan::new()).validate(n, k) {
            return Err(ScenarioError::at(
                table.line,
                format!("[[fault]] invalid for its target carrier (n={n}, k={k}): {e}"),
            ));
        }
        faults.push(spec);
    }
    Ok(faults)
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

impl Scenario {
    /// Emits canonical TOML that [`parse_scenario`] decodes back to an
    /// equal value.
    pub fn to_toml(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "name = \"{}\"", escape_str(&self.name));
        let _ = writeln!(out, "seed = {}", self.seed);
        if self.max_ticks != DEFAULT_MAX_TICKS {
            let _ = writeln!(out, "max-ticks = {}", self.max_ticks);
        }

        out.push_str("\n[topology]\n");
        match &self.topology {
            Topology::Flat {
                nodes,
                buses,
                head_timeout,
                retry_backoff,
            } => {
                out.push_str("kind = \"flat\"\n");
                let _ = writeln!(out, "nodes = {nodes}");
                let _ = writeln!(out, "buses = {buses}");
                if let Some(t) = head_timeout {
                    let _ = writeln!(out, "head-timeout = {t}");
                }
                if let Some(t) = retry_backoff {
                    let _ = writeln!(out, "retry-backoff = {t}");
                }
            }
            Topology::Hier {
                rings,
                nodes_per_ring,
                buses,
                global_buses,
                bridge_queue_depth,
                head_timeout,
                retry_backoff,
            } => {
                out.push_str("kind = \"hier\"\n");
                let _ = writeln!(out, "rings = {rings}");
                let _ = writeln!(out, "nodes-per-ring = {nodes_per_ring}");
                let _ = writeln!(out, "buses = {buses}");
                if let Some(g) = global_buses {
                    let _ = writeln!(out, "global-buses = {g}");
                }
                if let Some(q) = bridge_queue_depth {
                    let _ = writeln!(out, "bridge-queue-depth = {q}");
                }
                if let Some(t) = head_timeout {
                    let _ = writeln!(out, "head-timeout = {t}");
                }
                if let Some(t) = retry_backoff {
                    let _ = writeln!(out, "retry-backoff = {t}");
                }
            }
            Topology::Grid { rows, cols, buses } => {
                out.push_str("kind = \"grid\"\n");
                let _ = writeln!(out, "rows = {rows}");
                let _ = writeln!(out, "cols = {cols}");
                let _ = writeln!(out, "buses = {buses}");
            }
            Topology::Lattice { dims, buses } => {
                out.push_str("kind = \"lattice\"\n");
                let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                let _ = writeln!(out, "dims = [{}]", dims.join(", "));
                let _ = writeln!(out, "buses = {buses}");
            }
            Topology::Torus { radix, dims } => {
                out.push_str("kind = \"torus\"\n");
                let _ = writeln!(out, "radix = {radix}");
                let _ = writeln!(out, "dims = {dims}");
            }
        }

        if self.engine != Engine::default() {
            out.push_str("\n[engine]\n");
            if self.engine.scheduler == Scheduler::Dense {
                out.push_str("scheduler = \"dense\"\n");
            }
            if let Exec::Sharded(t) = self.engine.exec {
                out.push_str("exec = \"sharded\"\n");
                let _ = writeln!(out, "threads = {t}");
            }
            if self.engine.feasibility == Feasibility::SlabWalk {
                out.push_str("feasibility = \"slab-walk\"\n");
            }
            match self.engine.retention {
                Retention::Full => {}
                Retention::Window(w) => {
                    out.push_str("retention = \"window\"\n");
                    let _ = writeln!(out, "window = {w}");
                }
                Retention::CountersOnly => out.push_str("retention = \"counters-only\"\n"),
            }
            if let Some(r) = self.engine.max_retries {
                let _ = writeln!(out, "max-retries = {r}");
            }
            if self.engine.checked {
                out.push_str("checked = true\n");
            }
        }

        out.push_str("\n[workload]\n");
        match &self.workload {
            Workload::Uniform {
                messages,
                spread,
                flits,
            } => {
                out.push_str("kind = \"uniform\"\n");
                let _ = writeln!(out, "messages = {messages}");
                let _ = writeln!(out, "spread = {spread}");
                let _ = writeln!(out, "flits = {flits}");
            }
            Workload::Locality {
                messages,
                spread,
                flits,
                locality,
            } => {
                out.push_str("kind = \"locality\"\n");
                let _ = writeln!(out, "messages = {messages}");
                let _ = writeln!(out, "spread = {spread}");
                let _ = writeln!(out, "locality = {}", toml_float(*locality));
                let _ = writeln!(out, "flits = {flits}");
            }
            Workload::AllToAll { flits, stagger } => {
                out.push_str("kind = \"all-to-all\"\n");
                let _ = writeln!(out, "flits = {flits}");
                let _ = writeln!(out, "stagger = {stagger}");
            }
            Workload::NearestNeighbour {
                flits,
                rounds,
                stagger,
            } => {
                out.push_str("kind = \"nearest-neighbour\"\n");
                let _ = writeln!(out, "flits = {flits}");
                let _ = writeln!(out, "rounds = {rounds}");
                let _ = writeln!(out, "stagger = {stagger}");
            }
            Workload::Poisson {
                rate,
                flits,
                hotspot,
            } => {
                out.push_str("kind = \"poisson\"\n");
                let _ = writeln!(out, "rate = {}", toml_float(*rate));
                let _ = writeln!(out, "flits = {flits}");
                if let Some(h) = hotspot {
                    let _ = writeln!(out, "hotspot-node = {}", h.node);
                    let _ = writeln!(out, "hotspot-fraction = {}", toml_float(h.fraction));
                }
            }
            Workload::Bursty {
                rate,
                burst,
                flits,
                hotspot,
            } => {
                out.push_str("kind = \"bursty\"\n");
                let _ = writeln!(out, "rate = {}", toml_float(*rate));
                let _ = writeln!(out, "burst = {burst}");
                let _ = writeln!(out, "flits = {flits}");
                if let Some(h) = hotspot {
                    let _ = writeln!(out, "hotspot-node = {}", h.node);
                    let _ = writeln!(out, "hotspot-fraction = {}", toml_float(h.fraction));
                }
            }
            Workload::Exchange { period, flits } => {
                out.push_str("kind = \"exchange\"\n");
                let _ = writeln!(out, "period = {period}");
                let _ = writeln!(out, "flits = {flits}");
            }
            Workload::Trace { path } => {
                out.push_str("kind = \"trace\"\n");
                let _ = writeln!(out, "path = \"{}\"", escape_str(path));
            }
        }

        if let Some(s) = &self.serve {
            out.push_str("\n[serve]\n");
            let _ = writeln!(out, "warmup = {}", s.warmup);
            let _ = writeln!(out, "duration = {}", s.duration);
            match s.admission {
                Admission::PerSource { depth } => {
                    out.push_str("admission = \"per-source\"\n");
                    let _ = writeln!(out, "depth = {depth}");
                }
                Admission::Aggregate { depth } => {
                    out.push_str("admission = \"aggregate\"\n");
                    let _ = writeln!(out, "depth = {depth}");
                }
            }
        }

        for f in &self.faults {
            out.push_str("\n[[fault]]\n");
            match f.kind {
                FaultKindSpec::SegmentStuck { hop, bus } => {
                    out.push_str("kind = \"segment-stuck\"\n");
                    let _ = writeln!(out, "hop = {hop}");
                    let _ = writeln!(out, "bus = {bus}");
                }
                FaultKindSpec::LinkCut { hop } => {
                    out.push_str("kind = \"link-cut\"\n");
                    let _ = writeln!(out, "hop = {hop}");
                }
                FaultKindSpec::IncDead { node } => {
                    out.push_str("kind = \"inc-dead\"\n");
                    let _ = writeln!(out, "node = {node}");
                }
            }
            let _ = writeln!(out, "at = {}", f.at);
            if let Some(r) = f.repair_at {
                let _ = writeln!(out, "repair-at = {r}");
            }
            match f.ring {
                None => {}
                Some(RingSel::Local(r)) => {
                    let _ = writeln!(out, "ring = {r}");
                }
                Some(RingSel::Global) => out.push_str("ring = \"global\"\n"),
            }
        }

        if let Some(path) = &self.record {
            out.push_str("\n[record]\n");
            let _ = writeln!(out, "trace = \"{}\"", escape_str(path));
        }
        out
    }
}

/// Formats a float so the TOML parser reads it back as a float (always
/// keeps a decimal point or exponent) and bit-exactly (shortest
/// round-trip formatting).
fn toml_float(f: f64) -> String {
    let s = format!("{f:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAT: &str = r#"
name = "flat-demo"
seed = 7

[topology]
kind = "flat"
nodes = 16
buses = 4

[workload]
kind = "uniform"
messages = 32
flits = 8
"#;

    #[test]
    fn decodes_a_minimal_flat_scenario() {
        let s = parse_scenario(FLAT).expect("valid");
        assert_eq!(s.name, "flat-demo");
        assert_eq!(s.seed, 7);
        assert_eq!(s.max_ticks, DEFAULT_MAX_TICKS);
        assert_eq!(
            s.topology,
            Topology::Flat {
                nodes: 16,
                buses: 4,
                head_timeout: None,
                retry_backoff: None
            }
        );
        assert_eq!(
            s.workload,
            Workload::Uniform {
                messages: 32,
                spread: 64,
                flits: 8
            }
        );
        assert_eq!(s.engine, Engine::default());
        assert!(s.serve.is_none() && s.faults.is_empty() && s.record.is_none());
    }

    #[test]
    fn unknown_key_names_key_and_line() {
        let bad = FLAT.replace("nodes = 16", "nodes = 16\nnoodles = 7");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("unknown key `topology.noodles`"), "{err}");
        assert_eq!(err.line, 8);
    }

    #[test]
    fn minimal_round_trips() {
        let s = parse_scenario(FLAT).expect("valid");
        let emitted = s.to_toml();
        assert_eq!(parse_scenario(&emitted).expect("round-trips"), s);
    }

    #[test]
    fn toml_float_always_reparses_as_float() {
        for f in [0.5, 1.0, 1e-9, 123.456, 0.07] {
            let s = toml_float(f);
            assert!(s.contains('.') || s.contains('e'), "{s}");
            assert_eq!(s.parse::<f64>().unwrap(), f);
        }
    }
}
