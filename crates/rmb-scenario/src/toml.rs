//! A hand-rolled TOML-subset parser with line tracking.
//!
//! The workspace is fully offline, so the real `toml` crate cannot be
//! used; scenarios need only the core of the format anyway. Supported:
//!
//! - `key = value` pairs with bare keys (letters, digits, `-`, `_`)
//! - basic strings (`"..."` with `\" \\ \n \t \r` escapes)
//! - integers (optional sign, `_` separators), floats, booleans
//! - homogeneous-or-not arrays `[1, 2, 3]` (the schema layer checks
//!   element types)
//! - `[table]` and `[dotted.table]` headers
//! - `[[array.of.tables]]` headers
//! - `#` comments and blank lines
//!
//! Not supported (rejected with a named error, never silently ignored):
//! literal/multiline strings, inline tables, dotted keys in `key =`
//! position, dates.
//!
//! Every parsed value carries the **line** it came from; the schema layer
//! threads those lines into validation errors so a bad scenario names the
//! offending key and line.

use std::fmt;

/// A parse or validation error: `line` is 1-based (0 when the error has
/// no meaningful source position, e.g. an unreadable trace file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line of the offending construct (0 = none).
    pub line: usize,
    /// Human-readable message naming the offending key where possible.
    pub message: String,
}

impl ScenarioError {
    /// Creates an error anchored at `line`.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        ScenarioError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error with no source position.
    pub fn external(message: impl Into<String>) -> Self {
        ScenarioError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} (line {})", self.message, self.line)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One TOML value, without its position.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Spanned>),
    /// A nested table (`[a.b]` headers create these).
    Table(TomlTable),
    /// An array of tables (`[[a]]` headers create these).
    TableArray(Vec<TomlTable>),
}

impl TomlValue {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
            TomlValue::Table(_) => "table",
            TomlValue::TableArray(_) => "array of tables",
        }
    }
}

/// A value plus the line it was written on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The value.
    pub value: TomlValue,
    /// 1-based source line.
    pub line: usize,
}

/// An ordered table: entries keep document order so error messages and
/// round-trips are stable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlTable {
    /// `(key, value)` pairs in document order.
    pub entries: Vec<(String, Spanned)>,
    /// Line of the table header (0 for the root table).
    pub line: usize,
}

impl TomlTable {
    /// Looks up a direct entry.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parses a TOML document into its root table.
pub fn parse_toml(input: &str) -> Result<TomlTable, ScenarioError> {
    let mut root = TomlTable::default();
    // Path of the table currently receiving `key = value` lines; empty =
    // root. The final component may address the last element of a table
    // array.
    let mut current: Vec<String> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest.strip_suffix("]]").ok_or_else(|| {
                ScenarioError::at(line_no, "unterminated `[[` table-array header".to_string())
            })?;
            let path = parse_key_path(inner, line_no)?;
            push_table_array(&mut root, &path, line_no)?;
            current = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest.strip_suffix(']').ok_or_else(|| {
                ScenarioError::at(line_no, "unterminated `[` table header".to_string())
            })?;
            let path = parse_key_path(inner, line_no)?;
            open_table(&mut root, &path, line_no)?;
            current = path;
        } else {
            let eq = line.find('=').ok_or_else(|| {
                ScenarioError::at(line_no, format!("expected `key = value`, got `{line}`"))
            })?;
            let key = line[..eq].trim();
            check_bare_key(key, line_no)?;
            let value_text = line[eq + 1..].trim();
            let value = parse_value(value_text, line_no)?;
            let table = resolve_mut(&mut root, &current, line_no)?;
            if table.get(key).is_some() {
                return Err(ScenarioError::at(
                    line_no,
                    format!("duplicate key `{}`", dotted(&current, key)),
                ));
            }
            table.entries.push((
                key.to_string(),
                Spanned {
                    value,
                    line: line_no,
                },
            ));
        }
    }
    Ok(root)
}

/// Strips a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn check_bare_key(key: &str, line: usize) -> Result<(), ScenarioError> {
    if key.is_empty() {
        return Err(ScenarioError::at(line, "empty key".to_string()));
    }
    if let Some(bad) = key
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '-' || *c == '_'))
    {
        return Err(ScenarioError::at(
            line,
            format!("key `{key}` contains unsupported character `{bad}` (bare keys only)"),
        ));
    }
    Ok(())
}

fn parse_key_path(text: &str, line: usize) -> Result<Vec<String>, ScenarioError> {
    let text = text.trim();
    let mut path = Vec::new();
    for part in text.split('.') {
        let part = part.trim();
        check_bare_key(part, line)?;
        path.push(part.to_string());
    }
    Ok(path)
}

fn dotted(path: &[String], key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{}.{key}", path.join("."))
    }
}

/// Creates (or re-opens) the table at `path` under `root`.
fn open_table(root: &mut TomlTable, path: &[String], line: usize) -> Result<(), ScenarioError> {
    let mut table = root;
    for (depth, part) in path.iter().enumerate() {
        let missing = table.get(part).is_none();
        if missing {
            table.entries.push((
                part.clone(),
                Spanned {
                    value: TomlValue::Table(TomlTable {
                        entries: Vec::new(),
                        line,
                    }),
                    line,
                },
            ));
        } else if depth + 1 == path.len() {
            // Re-opening an existing leaf table is a duplicate header
            // (re-opening an *intermediate* table to add a child is fine).
            let existing = table.get(part).expect("just checked");
            if matches!(existing.value, TomlValue::Table(_)) && !missing {
                return Err(ScenarioError::at(
                    line,
                    format!("duplicate table header `[{}]`", path.join(".")),
                ));
            }
        }
        table = descend(table, part, line)?;
    }
    Ok(())
}

/// Appends a fresh element to the table array at `path`.
fn push_table_array(
    root: &mut TomlTable,
    path: &[String],
    line: usize,
) -> Result<(), ScenarioError> {
    let (last, prefix) = path.split_last().expect("non-empty path");
    let mut table = root;
    for part in prefix {
        if table.get(part).is_none() {
            table.entries.push((
                part.clone(),
                Spanned {
                    value: TomlValue::Table(TomlTable {
                        entries: Vec::new(),
                        line,
                    }),
                    line,
                },
            ));
        }
        table = descend(table, part, line)?;
    }
    match table.entries.iter_mut().find(|(k, _)| k == last) {
        None => {
            table.entries.push((
                last.clone(),
                Spanned {
                    value: TomlValue::TableArray(vec![TomlTable {
                        entries: Vec::new(),
                        line,
                    }]),
                    line,
                },
            ));
            Ok(())
        }
        Some((_, spanned)) => match &mut spanned.value {
            TomlValue::TableArray(tables) => {
                tables.push(TomlTable {
                    entries: Vec::new(),
                    line,
                });
                Ok(())
            }
            other => Err(ScenarioError::at(
                line,
                format!(
                    "`[[{}]]` conflicts with earlier {} of the same name",
                    path.join("."),
                    other.type_name()
                ),
            )),
        },
    }
}

/// Steps into the child table (or last table-array element) named `part`.
fn descend<'a>(
    table: &'a mut TomlTable,
    part: &str,
    line: usize,
) -> Result<&'a mut TomlTable, ScenarioError> {
    let spanned = table
        .entries
        .iter_mut()
        .find(|(k, _)| k == part)
        .map(|(_, v)| v)
        .expect("caller ensures presence");
    match &mut spanned.value {
        TomlValue::Table(t) => Ok(t),
        TomlValue::TableArray(ts) => Ok(ts.last_mut().expect("table arrays are never empty")),
        other => Err(ScenarioError::at(
            line,
            format!("`{part}` is a {}, not a table", other.type_name()),
        )),
    }
}

/// Resolves the table a `key = value` line belongs to.
fn resolve_mut<'a>(
    root: &'a mut TomlTable,
    path: &[String],
    line: usize,
) -> Result<&'a mut TomlTable, ScenarioError> {
    let mut table = root;
    for part in path {
        table = descend(table, part, line)?;
    }
    Ok(table)
}

/// Parses one value token (after `=` or inside an array).
fn parse_value(text: &str, line: usize) -> Result<TomlValue, ScenarioError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(ScenarioError::at(line, "missing value".to_string()));
    }
    if text.starts_with('"') {
        let (s, rest) = parse_string(text, line)?;
        if !rest.trim().is_empty() {
            return Err(ScenarioError::at(
                line,
                format!("trailing characters after string: `{}`", rest.trim()),
            ));
        }
        return Ok(TomlValue::Str(s));
    }
    if text.starts_with('[') {
        return parse_array(text, line);
    }
    if text == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if text == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if text.starts_with('{') {
        return Err(ScenarioError::at(
            line,
            "inline tables are not supported; use a `[section]` header".to_string(),
        ));
    }
    parse_number(text, line)
}

/// Parses a basic string starting at `text[0] == '"'`; returns the
/// decoded string and the remaining text after the closing quote.
fn parse_string(text: &str, line: usize) -> Result<(String, &str), ScenarioError> {
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    return Err(ScenarioError::at(
                        line,
                        format!("unsupported string escape `\\{other}`"),
                    ))
                }
                None => break,
            },
            _ => out.push(c),
        }
    }
    Err(ScenarioError::at(line, "unterminated string".to_string()))
}

/// Parses a single-line array. Nested arrays are supported; multiline
/// arrays are not (scenarios keep arrays short).
fn parse_array(text: &str, line: usize) -> Result<TomlValue, ScenarioError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| {
            ScenarioError::at(
                line,
                "unterminated array (arrays must close on the same line)".to_string(),
            )
        })?;
    let mut items = Vec::new();
    for part in split_top_level(inner, line)? {
        let part = part.trim();
        if part.is_empty() {
            continue; // tolerate a trailing comma
        }
        items.push(Spanned {
            value: parse_value(part, line)?,
            line,
        });
    }
    Ok(TomlValue::Array(items))
}

/// Splits an array body on top-level commas (outside strings/brackets).
fn split_top_level(text: &str, line: usize) -> Result<Vec<&str>, ScenarioError> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        if in_str {
            match c {
                '\\' if !escaped => {
                    escaped = true;
                    continue;
                }
                '"' if !escaped => in_str = false,
                _ => {}
            }
            escaped = false;
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' => depth += 1,
            ']' => {
                depth = depth.checked_sub(1).ok_or_else(|| {
                    ScenarioError::at(line, "unbalanced `]` in array".to_string())
                })?;
            }
            ',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    Ok(parts)
}

fn parse_number(text: &str, line: usize) -> Result<TomlValue, ScenarioError> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let looks_float = cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E');
    if looks_float {
        if let Ok(f) = cleaned.parse::<f64>() {
            if f.is_finite() {
                return Ok(TomlValue::Float(f));
            }
        }
    } else if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    Err(ScenarioError::at(
        line,
        format!("`{text}` is not a valid value (string, integer, float, bool or array)"),
    ))
}

/// Escapes a string for emission inside a basic TOML string.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = parse_toml(
            r#"
# comment
name = "demo # not a comment"
seed = 1_996
ratio = 0.5
on = true
dims = [4, 4, 2]

[topology]
kind = "flat"   # trailing comment
nodes = 16

[a.b]
x = -3
"#,
        )
        .expect("parses");
        assert_eq!(
            doc.get("name").unwrap().value,
            TomlValue::Str("demo # not a comment".into())
        );
        assert_eq!(doc.get("seed").unwrap().value, TomlValue::Int(1996));
        assert_eq!(doc.get("ratio").unwrap().value, TomlValue::Float(0.5));
        assert_eq!(doc.get("on").unwrap().value, TomlValue::Bool(true));
        match &doc.get("dims").unwrap().value {
            TomlValue::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
        let topo = match &doc.get("topology").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("expected table, got {other:?}"),
        };
        assert_eq!(topo.get("nodes").unwrap().value, TomlValue::Int(16));
        assert_eq!(topo.get("nodes").unwrap().line, 11);
        let a = match &doc.get("a").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("expected table, got {other:?}"),
        };
        let b = match &a.get("b").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("expected table, got {other:?}"),
        };
        assert_eq!(b.get("x").unwrap().value, TomlValue::Int(-3));
    }

    #[test]
    fn parses_table_arrays_in_order() {
        let doc = parse_toml(
            r#"
[[fault]]
at = 1

[[fault]]
at = 2
"#,
        )
        .expect("parses");
        match &doc.get("fault").unwrap().value {
            TomlValue::TableArray(ts) => {
                assert_eq!(ts.len(), 2);
                assert_eq!(ts[0].get("at").unwrap().value, TomlValue::Int(1));
                assert_eq!(ts[1].get("at").unwrap().value, TomlValue::Int(2));
            }
            other => panic!("expected table array, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse_toml("x = 1\ny 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_toml("x = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate key `x`"), "{err}");
        let err = parse_toml("s = \"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated string"), "{err}");
        let err = parse_toml("t = {a = 1}\n").unwrap_err();
        assert!(err.message.contains("inline tables"), "{err}");
        let err = parse_toml("[t]\nx = 1\n[t]\n").unwrap_err();
        assert!(err.message.contains("duplicate table header"), "{err}");
    }

    #[test]
    fn string_round_trips_escapes() {
        let doc = parse_toml("s = \"a\\\"b\\\\c\\nd\"\n").expect("parses");
        assert_eq!(
            doc.get("s").unwrap().value,
            TomlValue::Str("a\"b\\c\nd".into())
        );
        assert_eq!(escape_str("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
