//! Mode-equivalence: one scenario, one seed, byte-identical rows no
//! matter which scheduler or execution mode runs it. The engines promise
//! semantic equivalence across their modes; the scenario layer's canonical
//! row (wall-clock scrubbed) is where that promise becomes checkable as
//! plain byte equality.

use rmb_scenario::{parse_scenario, run_scenario, Exec, Scenario, Scheduler};
use std::path::Path;

const FLAT: &str = r#"
name = "det-flat"
seed = 20260808
[topology]
kind = "flat"
nodes = 12
buses = 3
[workload]
kind = "uniform"
messages = 80
spread = 200
flits = 6
"#;

const HIER: &str = r#"
name = "det-hier"
seed = 20260808
[topology]
kind = "hier"
rings = 4
nodes-per-ring = 6
buses = 2
[workload]
kind = "locality"
messages = 120
spread = 150
flits = 6
locality = 0.7
"#;

fn row(s: &Scenario) -> String {
    run_scenario(s, Path::new(".")).unwrap().row_json
}

#[test]
fn flat_rows_are_identical_across_scheduler_modes() {
    let event = parse_scenario(FLAT).unwrap();
    assert_eq!(event.engine.scheduler, Scheduler::Event);
    let mut dense = event.clone();
    dense.engine.scheduler = Scheduler::Dense;
    assert_eq!(row(&event), row(&dense));
}

#[test]
fn hier_rows_are_identical_across_scheduler_and_exec_modes() {
    let base = parse_scenario(HIER).unwrap();
    let reference = row(&base);

    let mut dense = base.clone();
    dense.engine.scheduler = Scheduler::Dense;
    assert_eq!(reference, row(&dense), "dense sweep diverged");

    let mut sharded = base.clone();
    sharded.engine.exec = Exec::Sharded(2);
    assert_eq!(reference, row(&sharded), "sharded execution diverged");

    let mut both = base;
    both.engine.scheduler = Scheduler::Dense;
    both.engine.exec = Exec::Sharded(2);
    assert_eq!(reference, row(&both), "dense + sharded diverged");
}

#[test]
fn repeated_runs_are_byte_identical() {
    let s = parse_scenario(FLAT).unwrap();
    assert_eq!(row(&s), row(&s));
}
