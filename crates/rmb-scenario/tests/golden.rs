//! Golden pinning for the checked-in scenario zoo.
//!
//! Every `scenarios/*.toml` must reproduce `scenarios/golden/<stem>.json`
//! byte for byte — the same envelope `experiments --scenario F --json`
//! prints. The trace pair additionally proves record → replay delivers
//! the identical message set.

use rmb_scenario::{parse_scenario, run_scenario, Scenario, ScenarioOutcome};
use std::fs;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn load(stem: &str) -> Scenario {
    let path = scenarios_dir().join(format!("{stem}.toml"));
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn run(s: &Scenario) -> ScenarioOutcome {
    run_scenario(s, &scenarios_dir()).unwrap_or_else(|e| panic!("scenario `{}`: {e}", s.name))
}

/// The envelope the `experiments` binary prints (trailing newline from
/// `println!` included).
fn envelope(out: &ScenarioOutcome) -> String {
    format!("{{\"experiment\": \"scenario\", \"rows\": [{}]}}\n", out.row_json)
}

#[test]
fn every_scenario_matches_its_golden_byte_for_byte() {
    let dir = scenarios_dir();
    let mut stems: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "toml"))
                .then(|| p.file_stem().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    stems.sort();
    assert!(
        stems.len() >= 6,
        "expected at least 6 checked-in scenarios, found {stems:?}"
    );
    for stem in &stems {
        let out = run(&load(stem));
        let golden_path = dir.join("golden").join(format!("{stem}.json"));
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
        assert_eq!(
            envelope(&out),
            golden,
            "golden drift for `{stem}` — if intentional, regenerate with \
             `experiments --scenario scenarios/{stem}.toml --json`"
        );
    }
}

#[test]
fn the_zoo_covers_the_required_modes() {
    // ISSUE acceptance: at least one golden each for flat batch, hier
    // sharded, open-loop serve, a fault plan, a collective workload and
    // trace record/replay.
    assert!(matches!(
        load("flat_batch").workload,
        rmb_scenario::Workload::Uniform { .. }
    ));
    let hier = load("hier_sharded");
    assert!(matches!(hier.engine.exec, rmb_scenario::Exec::Sharded(t) if t >= 2));
    assert!(load("serve_hotspot").serve.is_some());
    assert!(!load("fault_recovery").faults.is_empty());
    assert!(matches!(
        load("collective_alltoall").workload,
        rmb_scenario::Workload::AllToAll { .. }
    ));
    assert!(load("trace_record").record.is_some());
    assert!(matches!(
        load("trace_replay").workload,
        rmb_scenario::Workload::Trace { .. }
    ));
}

#[test]
fn recorded_trace_matches_the_checked_in_file() {
    let out = run(&load("trace_record"));
    let rec = out.recorded.expect("trace_record must record");
    assert_eq!(rec.path, "traces/smoke.trace.json");
    let on_disk = fs::read_to_string(scenarios_dir().join(&rec.path)).unwrap();
    assert_eq!(rec.content, on_disk, "checked-in trace drifted");
}

#[test]
fn replay_delivers_exactly_the_recorded_set() {
    let recorded = run(&load("trace_record"))
        .recorded
        .expect("trace_record must record")
        .content;

    // Re-record the replay run: its delivered log, canonically encoded,
    // must be byte-identical to the original recording — same multiset
    // of (source, destination, flits, inject_at), nothing lost, nothing
    // invented.
    let mut replay = load("trace_replay");
    replay.record = Some("unused-in-test".to_string());
    let replayed = run(&replay)
        .recorded
        .expect("re-recording the replay must produce a trace")
        .content;

    assert_eq!(recorded, replayed);
}
