//! Schema fidelity tests.
//!
//! The property half generates random *valid* scenarios — every topology,
//! engine combination, workload family, serve block, fault plan and
//! record block the schema admits — prints each with
//! [`Scenario::to_toml`] and proves the parser reconstructs it exactly.
//! The table half feeds known-bad files through [`parse_scenario`] and
//! asserts the error names the offending key *and* the line it sits on.

use proptest::prelude::*;
use proptest::{Strategy, TestRng};
use rmb_scenario::{
    parse_scenario, Admission, Engine, Exec, FaultKindSpec, FaultSpec, Feasibility, Hotspot,
    Retention, RingSel, Scenario, Scheduler, ServeOptions, Topology, Workload,
};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn below(rng: &mut TestRng, n: u64) -> u64 {
    (0u64..n.max(1)).generate(rng)
}

fn chance(rng: &mut TestRng, percent: u64) -> bool {
    below(rng, 100) < percent
}

/// Names exercise the string escaper: quotes, backslashes, hashes and
/// TOML punctuation must all survive the round trip.
fn gen_name(rng: &mut TestRng) -> String {
    let alphabet: Vec<char> = "abcXYZ019-_ \"\\#=[]".chars().collect();
    let len = 1 + below(rng, 12) as usize;
    (0..len)
        .map(|_| alphabet[below(rng, alphabet.len() as u64) as usize])
        .collect()
}

/// An exactly-representable fraction in `[0, 1]`.
fn gen_fraction(rng: &mut TestRng) -> f64 {
    below(rng, 101) as f64 / 100.0
}

fn gen_engine_flat(rng: &mut TestRng, serve: bool) -> Engine {
    let retention = match below(rng, 3) {
        0 => Retention::Full,
        1 => Retention::Window(1 + below(rng, 64) as u32),
        _ => Retention::CountersOnly,
    };
    Engine {
        scheduler: if chance(rng, 50) {
            Scheduler::Event
        } else {
            Scheduler::Dense
        },
        exec: Exec::Serial,
        feasibility: if chance(rng, 50) {
            Feasibility::Bitmap
        } else {
            Feasibility::SlabWalk
        },
        // Per-source admission needs completion records; the serve
        // generator defaults to per-source, so avoid the invalid pair
        // unless the caller opts into aggregate admission separately.
        retention: if serve && matches!(retention, Retention::CountersOnly) {
            Retention::Full
        } else {
            retention
        },
        max_retries: chance(rng, 30).then(|| below(rng, 64) as u32),
        checked: chance(rng, 20),
    }
}

fn gen_engine_hier(rng: &mut TestRng) -> Engine {
    Engine {
        scheduler: if chance(rng, 50) {
            Scheduler::Event
        } else {
            Scheduler::Dense
        },
        exec: if chance(rng, 50) {
            Exec::Serial
        } else {
            Exec::Sharded(2 + below(rng, 4) as u32)
        },
        feasibility: Feasibility::Bitmap,
        retention: Retention::Full,
        max_retries: chance(rng, 30).then(|| below(rng, 64) as u32),
        checked: chance(rng, 20),
    }
}

fn gen_flat_topology(rng: &mut TestRng) -> Topology {
    Topology::Flat {
        nodes: 2 + below(rng, 31) as u32,
        buses: 1 + below(rng, 8) as u16,
        head_timeout: chance(rng, 30).then(|| 1 + below(rng, 1_000)),
        retry_backoff: chance(rng, 30).then(|| 1 + below(rng, 100)),
    }
}

fn gen_hier_topology(rng: &mut TestRng) -> Topology {
    Topology::Hier {
        rings: 2 + below(rng, 7) as u32,
        nodes_per_ring: 3 + below(rng, 7) as u32,
        buses: 1 + below(rng, 4) as u16,
        global_buses: chance(rng, 40).then(|| 1 + below(rng, 4) as u16),
        bridge_queue_depth: chance(rng, 30).then(|| 1 + below(rng, 8) as u32),
        head_timeout: chance(rng, 30).then(|| 1 + below(rng, 1_000)),
        retry_backoff: chance(rng, 30).then(|| 1 + below(rng, 100)),
    }
}

fn gen_batch_workload(rng: &mut TestRng) -> Workload {
    let flits = 1 + below(rng, 32) as u32;
    match below(rng, 4) {
        0 => Workload::Uniform {
            messages: 1 + below(rng, 200) as u32,
            spread: 1 + below(rng, 500),
            flits,
        },
        1 => Workload::AllToAll {
            flits,
            stagger: below(rng, 100),
        },
        2 => Workload::NearestNeighbour {
            flits,
            rounds: 1 + below(rng, 5) as u32,
            stagger: below(rng, 100),
        },
        _ => Workload::Trace {
            path: format!("traces/{}.trace.json", gen_name(rng).replace(['"', '\\'], "q")),
        },
    }
}

fn gen_streaming_workload(rng: &mut TestRng, endpoints: u64) -> Workload {
    let flits = 1 + below(rng, 32) as u32;
    let rate = (1 + below(rng, 1_000)) as f64 / 1_000.0;
    let hotspot = chance(rng, 40).then(|| Hotspot {
        node: below(rng, endpoints) as u32,
        fraction: gen_fraction(rng),
    });
    match below(rng, 3) {
        0 => Workload::Poisson {
            rate,
            flits,
            hotspot,
        },
        1 => Workload::Bursty {
            rate,
            burst: 1 + below(rng, 10) as u32,
            flits,
            hotspot,
        },
        _ => Workload::Exchange {
            period: 1 + below(rng, 50),
            flits,
        },
    }
}

fn gen_serve(rng: &mut TestRng, counters_only: bool) -> ServeOptions {
    let depth = 1 + below(rng, 10) as u32;
    ServeOptions {
        warmup: below(rng, 5_000),
        duration: 1 + below(rng, 10_000),
        admission: if counters_only || chance(rng, 30) {
            Admission::Aggregate { depth }
        } else {
            Admission::PerSource { depth }
        },
    }
}

fn gen_fault(rng: &mut TestRng, n: u32, k: u16, ring: Option<RingSel>) -> FaultSpec {
    let at = below(rng, 1_000);
    FaultSpec {
        kind: match below(rng, 3) {
            0 => FaultKindSpec::SegmentStuck {
                hop: below(rng, u64::from(n)) as u32,
                bus: below(rng, u64::from(k)) as u16,
            },
            1 => FaultKindSpec::LinkCut {
                hop: below(rng, u64::from(n)) as u32,
            },
            _ => FaultKindSpec::IncDead {
                node: below(rng, u64::from(n)) as u32,
            },
        },
        at,
        repair_at: chance(rng, 50).then(|| at + 1 + below(rng, 500)),
        ring,
    }
}

fn gen_scenario(rng: &mut TestRng) -> Scenario {
    let mut s = Scenario {
        name: gen_name(rng),
        seed: below(rng, i64::MAX as u64),
        max_ticks: if chance(rng, 30) {
            1 + below(rng, 10_000_000)
        } else {
            8_000_000 // the schema default: exercises the omit-if-default path
        },
        topology: Topology::Flat {
            nodes: 2,
            buses: 1,
            head_timeout: None,
            retry_backoff: None,
        },
        engine: Engine::default(),
        workload: Workload::AllToAll {
            flits: 1,
            stagger: 0,
        },
        serve: None,
        faults: Vec::new(),
        record: None,
    };

    match below(rng, 8) {
        // Flat, batch.
        0 => {
            s.topology = gen_flat_topology(rng);
            s.engine = gen_engine_flat(rng, false);
            s.workload = gen_batch_workload(rng);
            let (n, k) = match s.topology {
                Topology::Flat { nodes, buses, .. } => (nodes, buses),
                _ => unreachable!(),
            };
            for _ in 0..below(rng, 3) {
                s.faults.push(gen_fault(rng, n, k, None));
            }
            if matches!(s.engine.retention, Retention::Full) && chance(rng, 30) {
                s.record = Some("traces/prop.trace.json".to_string());
            }
        }
        // Flat, serving.
        1 => {
            s.topology = gen_flat_topology(rng);
            s.engine = gen_engine_flat(rng, true);
            s.workload = gen_streaming_workload(rng, s.topology.endpoints());
            let counters = matches!(s.engine.retention, Retention::CountersOnly);
            s.serve = Some(gen_serve(rng, counters));
        }
        // Hier, batch.
        2 => {
            s.topology = gen_hier_topology(rng);
            s.engine = gen_engine_hier(rng);
            let (rings, npr, buses, global) = match s.topology {
                Topology::Hier {
                    rings,
                    nodes_per_ring,
                    buses,
                    global_buses,
                    ..
                } => (rings, nodes_per_ring, buses, global_buses),
                _ => unreachable!(),
            };
            s.workload = Workload::Locality {
                messages: 1 + below(rng, 200) as u32,
                spread: 1 + below(rng, 500),
                flits: 1 + below(rng, 32) as u32,
                locality: gen_fraction(rng),
            };
            for _ in 0..below(rng, 3) {
                if chance(rng, 70) {
                    let r = below(rng, u64::from(rings)) as u32;
                    s.faults.push(gen_fault(rng, npr, buses, Some(RingSel::Local(r))));
                } else {
                    let gk = global.unwrap_or(buses);
                    s.faults.push(gen_fault(rng, rings, gk, Some(RingSel::Global)));
                }
            }
        }
        // Hier, serving.
        3 => {
            s.topology = gen_hier_topology(rng);
            s.engine = gen_engine_hier(rng);
            s.workload = gen_streaming_workload(rng, s.topology.endpoints());
            s.serve = Some(gen_serve(rng, false));
        }
        // Grid, lattice and torus run with the default engine only.
        4 => {
            s.topology = Topology::Grid {
                rows: 2 + below(rng, 5) as u32,
                cols: 2 + below(rng, 5) as u32,
                buses: 1 + below(rng, 4) as u16,
            };
            s.workload = gen_batch_workload(rng);
        }
        5 => {
            let dims: Vec<u32> = (0..2 + below(rng, 2))
                .map(|_| 2 + below(rng, 4) as u32)
                .collect();
            s.topology = Topology::Lattice {
                dims,
                buses: 1 + below(rng, 4) as u16,
            };
            s.workload = gen_batch_workload(rng);
        }
        6 => {
            s.topology = Topology::Torus {
                radix: 3 + below(rng, 5) as u32,
                dims: 1 + below(rng, 3) as u32,
            };
            s.workload = gen_batch_workload(rng);
        }
        _ => {
            s.topology = Topology::Torus {
                radix: 3 + below(rng, 5) as u32,
                dims: 1 + below(rng, 3) as u32,
            };
            s.workload = gen_streaming_workload(rng, s.topology.endpoints());
            s.serve = Some(gen_serve(rng, false));
        }
    }
    s
}

#[derive(Clone, Copy)]
struct AnyScenario;

impl Strategy for AnyScenario {
    type Value = Scenario;
    fn generate(&self, rng: &mut TestRng) -> Scenario {
        gen_scenario(rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_valid_scenario_round_trips(s in AnyScenario) {
        let toml = s.to_toml();
        match parse_scenario(&toml) {
            Ok(back) => prop_assert_eq!(back, s),
            Err(e) => prop_assert!(false, "reparse failed: {e}\n--- emitted TOML ---\n{toml}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Rejection table
// ---------------------------------------------------------------------------

/// `(file, expected message fragment, expected 1-based line)`.
const REJECTIONS: &[(&str, &str, usize)] = &[
    // Unknown key, named with its section path.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         bogus = 3\n[workload]\nkind = \"uniform\"\nmessages = 4\nflits = 2\n",
        "unknown key `topology.bogus`",
        7,
    ),
    // Wrong type.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = \"eight\"\nbuses = 2\n\
         [workload]\nkind = \"uniform\"\nmessages = 4\nflits = 2\n",
        "key `topology.nodes`: expected integer, got string",
        5,
    ),
    // Out of range.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [workload]\nkind = \"poisson\"\nrate = 1.5\nflits = 2\n",
        "key `workload.rate`: must lie in (0.0, 1.0]",
        9,
    ),
    // Streaming workload without a [serve] section.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [workload]\nkind = \"poisson\"\nrate = 0.1\nflits = 2\n",
        "streaming workload `poisson` needs a [serve] section",
        8,
    ),
    // threads without sharded execution.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [engine]\nthreads = 4\n[workload]\nkind = \"uniform\"\nmessages = 4\nflits = 2\n",
        "key `engine.threads`: only meaningful with `exec = \"sharded\"`",
        8,
    ),
    // Fault ring selector is hier-only.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [workload]\nkind = \"uniform\"\nmessages = 4\nflits = 2\n\
         [[fault]]\nkind = \"link-cut\"\nhop = 3\nat = 5\nring = 0\n",
        "key `fault.ring`: only meaningful for the hier topology",
        15,
    ),
    // Repair must follow the fault.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [workload]\nkind = \"uniform\"\nmessages = 4\nflits = 2\n\
         [[fault]]\nkind = \"link-cut\"\nhop = 3\nat = 50\nrepair-at = 50\n",
        "key `fault.repair-at`: must be strictly after",
        15,
    ),
    // Hot-spot node outside the endpoint range.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [workload]\nkind = \"poisson\"\nrate = 0.1\nflits = 2\n\
         hotspot-node = 8\nhotspot-fraction = 0.5\n[serve]\nduration = 100\n",
        "key `workload.hotspot-node`: node 8 is outside the 8 serving endpoints",
        8,
    ),
    // Sharded execution on the wrong topology.
    (
        "name = \"x\"\nseed = 1\n[topology]\nkind = \"flat\"\nnodes = 8\nbuses = 2\n\
         [engine]\nexec = \"sharded\"\nthreads = 2\n[workload]\nkind = \"uniform\"\n\
         messages = 4\nflits = 2\n",
        "key `engine.exec`: sharded execution requires the hier topology",
        8,
    ),
];

#[test]
fn rejections_name_the_key_and_line() {
    for (i, (toml, needle, line)) in REJECTIONS.iter().enumerate() {
        let err = parse_scenario(toml)
            .expect_err(&format!("rejection case {i} unexpectedly parsed:\n{toml}"));
        assert!(
            err.message.contains(needle),
            "case {i}: error `{}` does not mention `{needle}`",
            err.message
        );
        assert_eq!(
            err.line, *line,
            "case {i}: error `{}` points at line {} (wanted {line})",
            err.message, err.line
        );
        // The rendered form carries the line too.
        assert!(err.to_string().contains(&format!("(line {line})")));
    }
}
